//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements — with identical signatures but *not* identical streams —
//! the pieces the simulator and Nexmark generator rely on: [`SeedableRng`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`Rng::gen_ratio`], and [`rngs::SmallRng`] (backed by xoshiro256++).
//!
//! Determinism is the only contract the workspace depends on: the same seed
//! always produces the same stream on every platform.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = sample_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = sample_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample from `[0, span)` (`span >= 1`) by widening multiply.
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    // Widening-multiply technique: maps a uniform u64 onto [0, span) with
    // negligible bias for the span sizes used in this workspace.
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + (high - low) * unit;
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator, "gen_ratio");
        u32::sample_half_open(self, 0, denominator) < numerator
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for SmallRng.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..32).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..3.0);
            assert!((0.25..3.0).contains(&f));
            let i = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&i));
            let neg = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn ratio_and_bool_rough_frequency() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "gen_bool(0.25): {hits}");
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((1_800..3_200).contains(&hits), "gen_ratio(1,4): {hits}");
    }
}
