//! Offline shim for the `crossbeam` subset this workspace uses:
//!
//! * [`channel`] — multi-producer multi-consumer bounded/unbounded channels
//!   with cloneable senders *and* receivers, `try_recv`, `recv`, and
//!   `recv_timeout`;
//! * [`thread`] — scoped thread spawning (`crossbeam::thread::scope`),
//!   letting worker threads borrow from the caller's stack.
//!
//! Built on `std::sync::{Mutex, Condvar}` and `std::thread::scope`;
//! performance is adequate for the runtime crate's batch-granularity
//! channels (hundreds of messages per second per channel, not millions) and
//! for the scenario matrix's coarse-grained work distribution (one message
//! per multi-millisecond simulation run).

#![forbid(unsafe_code)]

/// Scoped threads: spawn workers that may borrow non-`'static` data.
///
/// Mirrors the `crossbeam::thread::scope` API shape on top of
/// `std::thread::scope`. Unlike the real crossbeam, the spawn closure takes
/// no `&Scope` argument (nested spawning goes through the scope handle the
/// caller already holds), which is the only pattern this workspace uses.
pub mod thread {
    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; it is joined automatically (if not joined
        /// explicitly) when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all unjoined threads are joined before `scope` returns.
    ///
    /// Returns `Ok` with the closure's result. (The real crossbeam returns
    /// `Err` when a child thread panicked; `std::thread::scope` propagates
    /// the panic instead, so the `Err` arm is never constructed here — the
    /// `Result` wrapper only keeps call sites source-compatible.)
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move || x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn scope_joins_unjoined_threads() {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 8);
        }
    }
}

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        send_ready: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.map(|c| st.queue.len() >= c).unwrap_or(false);
                if !full {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                st = self.shared.send_ready.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.recv_ready.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of buffered messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// `true` when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_fanout() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let t1 = thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let t2 = thread::spawn(move || {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(t1.join().unwrap() + t2.join().unwrap(), 100);
        }
    }
}
