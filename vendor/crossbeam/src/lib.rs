//! Offline shim for the `crossbeam::channel` subset this workspace uses:
//! multi-producer multi-consumer bounded/unbounded channels with cloneable
//! senders *and* receivers, `try_recv`, `recv`, and `recv_timeout`.
//!
//! Built on `std::sync::{Mutex, Condvar}`; performance is adequate for the
//! runtime crate's batch-granularity channels (hundreds of messages per
//! second per channel, not millions).

#![forbid(unsafe_code)]

/// MPMC channels (the only crossbeam module this workspace uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        send_ready: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.map(|c| st.queue.len() >= c).unwrap_or(false);
                if !full {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                st = self.shared.send_ready.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.recv_ready.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of buffered messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// `true` when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_blocks_until_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_fanout() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let t1 = thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let t2 = thread::spawn(move || {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(t1.join().unwrap() + t2.join().unwrap(), 100);
        }
    }
}
