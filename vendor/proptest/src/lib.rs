//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Implements the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`Just`], the
//! `proptest!` macro (with `#![proptest_config(..)]`), and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for this environment:
//!
//! * **No shrinking** — a failing case reports its seed and full `Debug`
//!   value instead of a minimized one.
//! * **Deterministic by construction** — the RNG seed is derived from the
//!   test name (overridable with `PROPTEST_SEED`), so two consecutive runs
//!   explore identical cases. This is what makes the repo's fixed-seed
//!   matrix tests reproducible.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Error raised by a single test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The generated input did not satisfy a `prop_assume!` precondition.
    Reject,
}

/// Result of a single test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed strategy.
pub struct BoxedStrategy<V>(Box<dyn StrategyObject<Value = V>>);

trait StrategyObject {
    type Value: Debug;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_obj(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Debug> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty size range");
            Self { min, max }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test-case runner invoked by the [`proptest!`] macro.
pub mod test_runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};

    /// FNV-1a, for a stable per-test seed.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` generated inputs. Panics on the
    /// first failing case, reporting the seed and the generated input.
    pub fn run<S: Strategy>(
        name: &str,
        config: &ProptestConfig,
        strategy: S,
        test: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(name));
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = (config.cases as u64) * 16 + 1_024;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            let rendered = format!("{:?}", value);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes; seed {seed})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed after {passed} passing case(s)\n\
                         {msg}\n\
                         input: {rendered}\n\
                         reproduce with PROPTEST_SEED={seed}"
                    );
                }
            }
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`", l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                stringify!($name),
                &config,
                strategy,
                |($($arg,)+)| { $body Ok(()) },
            );
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let strat = crate::collection::vec((0u64..100, 0.0f64..1.0), 1..=5);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::seed_from_u64(3);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::seed_from_u64(3);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 10u32..20, y in 0.5f64..1.5, n in 1usize..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(1u32..10, 2..6)
                .prop_flat_map(|v| (Just(v), 0usize..2))
                .prop_map(|(v, extra)| (v.len() + extra, v, extra)),
        ) {
            let (len, v, extra) = v;
            prop_assert_eq!(len, v.len() + extra);
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }
    }
}
