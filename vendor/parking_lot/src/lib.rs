//! Offline shim for the `parking_lot` subset this workspace uses: `Mutex`
//! and `RwLock` with the poison-free `lock()` / `read()` / `write()` API,
//! backed by their `std::sync` counterparts.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
