//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Provides [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros, with a simple time-budgeted measurement loop
//! instead of criterion's full statistical pipeline.
//!
//! Results are printed per benchmark; when the `DS2_BENCH_JSON` environment
//! variable names a file, a JSON array of
//! `{"name", "iterations", "mean_ns", "median_ns", "p95_ns"}` records is
//! written there so CI and future PRs can track a perf trajectory.
//!
//! Environment knobs: `DS2_BENCH_WARMUP_MS` (default 100) and
//! `DS2_BENCH_MEASURE_MS` (default 400) bound per-benchmark runtime.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function` or `group/parameter`).
    pub name: String,
    /// Total timed iterations.
    pub iterations: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median of per-sample means, nanoseconds.
    pub median_ns: f64,
    /// 95th percentile of per-sample means, nanoseconds.
    pub p95_ns: f64,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    results: Vec<BenchResult>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_ms)
        };
        Self {
            results: Vec::new(),
            warmup: Duration::from_millis(ms("DS2_BENCH_WARMUP_MS", 100)),
            measure: Duration::from_millis(ms("DS2_BENCH_MEASURE_MS", 400)),
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_one(name, self.warmup, self.measure, |b| f(b));
        report(&result);
        self.results.push(result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes results to `DS2_BENCH_JSON` if set. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("DS2_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"iterations\": {}, \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"p95_ns\": {:.1}}}{}\n",
                r.name.replace('"', "'"),
                r.iterations,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: failed to write {path}: {e}");
        } else {
            eprintln!(
                "criterion shim: wrote {} results to {path}",
                self.results.len()
            );
        }
    }
}

/// A benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input` under the group-qualified id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        let (warmup, measure) = (self.criterion.warmup, self.criterion.measure);
        let result = run_one(&name, warmup, measure, |b| f(b, input));
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks `f` under the group-qualified id.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.0);
        let (warmup, measure) = (self.criterion.warmup, self.criterion.measure);
        let result = run_one(&name, warmup, measure, |b| f(b));
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

/// Drives the measured routine, mirroring `criterion::Bencher`.
pub struct Bencher {
    phase: Phase,
    samples: Vec<(u64, Duration)>,
}

enum Phase {
    Warmup(Duration),
    Measure { budget: Duration, batch: u64 },
}

impl Bencher {
    /// Times `routine`, running it repeatedly within the phase budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.phase {
            Phase::Warmup(budget) => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < budget {
                    black_box(routine());
                    iters += 1;
                }
                // Size measurement batches to ~1ms from the warm-up rate.
                let per_iter = start.elapsed().as_nanos() as u64 / iters.max(1);
                let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
                self.phase = Phase::Measure {
                    budget: Duration::ZERO,
                    batch,
                };
            }
            Phase::Measure { budget, batch } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.samples.push((batch, t.elapsed()));
                }
            }
        }
    }
}

fn run_one<F>(name: &str, warmup: Duration, measure: Duration, mut f: F) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass: also calibrates the measurement batch size.
    let mut b = Bencher {
        phase: Phase::Warmup(warmup),
        samples: Vec::new(),
    };
    f(&mut b);
    let batch = match b.phase {
        Phase::Measure { batch, .. } => batch,
        Phase::Warmup(_) => 1,
    };
    // Measurement pass.
    let mut b = Bencher {
        phase: Phase::Measure {
            budget: measure,
            batch,
        },
        samples: Vec::new(),
    };
    f(&mut b);

    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(n, d)| d.as_nanos() as f64 / *n as f64)
        .collect();
    if per_iter.is_empty() {
        per_iter.push(0.0);
    }
    per_iter.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let iterations: u64 = b.samples.iter().map(|(n, _)| n).sum();
    let total_ns: f64 = b.samples.iter().map(|(_, d)| d.as_nanos() as f64).sum();
    let idx = |q: f64| ((per_iter.len() - 1) as f64 * q).round() as usize;
    BenchResult {
        name: name.to_string(),
        iterations,
        mean_ns: total_ns / iterations.max(1) as f64,
        median_ns: per_iter[idx(0.5)],
        p95_ns: per_iter[idx(0.95)],
    }
}

fn report(r: &BenchResult) {
    println!(
        "bench: {:<50} {:>12.1} ns/iter (median {:>12.1}, p95 {:>12.1}, {} iters)",
        r.name, r.mean_ns, r.median_ns, r.p95_ns, r.iterations
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::remove_var("DS2_BENCH_JSON");
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            ..Default::default()
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let r = &c.results()[0];
        assert!(r.iterations > 0);
        assert!(r.mean_ns >= 0.0);
    }

    #[test]
    fn group_ids_are_qualified() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            ..Default::default()
        };
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter("p1"), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.results()[0].name, "grp/p1");
    }
}
