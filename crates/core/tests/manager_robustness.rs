//! Property-based tests of the hardened Scaling Manager's fault paths.
//!
//! The robustness contract, stated as properties over randomly generated
//! jobs and fault patterns:
//!
//! 1. **Bounded retries, no oscillation.** Under a *persistent* actuation
//!    failure (rescales are issued but never land and never acknowledge),
//!    the manager issues at most `1 + max_rescale_retries` scaling
//!    commands, every one of them for the *same* plan, and after giving up
//!    it goes quiet — it never cycles between plans or re-opens the
//!    abandoned one while the ban holds.
//! 2. **Convergence once faults clear.** A job whose telemetry is degraded
//!    for an arbitrary prefix of windows must not be acted on blindly; once
//!    clean snapshots resume and deploys acknowledge normally, the manager
//!    converges to a deployment that sustains the offered rate, in the
//!    paper's handful of steps.
//!
//! These mirror, at the unit level, what the faulted scenario matrix
//! (`tests/scenario_matrix.rs` in the workspace root) measures end to end.

use ds2_core::prelude::*;
use proptest::prelude::*;

/// A random two-stage job: `src -> flat_map -> count`, with per-instance
/// capacities and an offered rate chosen so the optimum stays small.
#[derive(Debug, Clone)]
struct Job {
    offered: f64,
    cap_f: f64,
    cap_c: f64,
}

impl Job {
    /// Parallelism that sustains the offered rate (selectivity 1).
    fn needed(&self, cap: f64) -> usize {
        (self.offered / cap).ceil().max(1.0) as usize
    }
}

fn job_strategy() -> impl Strategy<Value = Job> {
    (100.0f64..5_000.0, 50.0f64..1_000.0, 50.0f64..1_000.0).prop_map(|(offered, cap_f, cap_c)| {
        Job {
            offered,
            cap_f,
            cap_c,
        }
    })
}

fn wordcount() -> (LogicalGraph, OperatorId, OperatorId, OperatorId) {
    let mut b = GraphBuilder::new();
    let s = b.operator("source");
    let f = b.operator("flat_map");
    let c = b.operator("count");
    b.connect(s, f);
    b.connect(f, c);
    (b.build().unwrap(), s, f, c)
}

fn inst(capacity: f64, util: f64) -> InstanceMetrics {
    let window_ns = 1_000_000_000u64;
    let useful_ns = ((window_ns as f64 * util) as u64).max(1);
    InstanceMetrics {
        records_in: (capacity * util).max(1.0) as u64,
        records_out: (capacity * util).max(1.0) as u64,
        useful_ns,
        window_ns,
        ..Default::default()
    }
}

/// Snapshot of `job` running at `current`: the achieved fraction is the
/// linear-scaling prediction (capacity x parallelism vs. offered rate),
/// and every instance reports its true capacity — the same canonical
/// instrumentation the policy property tests use.
fn snapshot(
    job: &Job,
    ops: (OperatorId, OperatorId, OperatorId),
    current: &Deployment,
) -> MetricsSnapshot {
    let (s, f, c) = ops;
    let pf = current.parallelism(f) as f64;
    let pc = current.parallelism(c) as f64;
    let achieved = (pf * job.cap_f / job.offered)
        .min(pc * job.cap_c / job.offered)
        .min(1.0);
    let mut snap = MetricsSnapshot::new();
    snap.set_source_rate(s, job.offered);
    let out_per_inst = job.offered * achieved / current.parallelism(s) as f64;
    snap.insert_instances(
        s,
        vec![inst(out_per_inst * 2.0, 0.5); current.parallelism(s)],
    );
    let f_util = (job.offered * achieved / pf / job.cap_f).min(1.0);
    snap.insert_instances(f, vec![inst(job.cap_f, f_util); pf as usize]);
    let c_util = (job.offered * achieved / pc / job.cap_c).min(1.0);
    snap.insert_instances(c, vec![inst(job.cap_c, c_util); pc as usize]);
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property 1: persistent actuation failure. The acknowledgement never
    /// arrives and the live deployment never changes; across any horizon
    /// the manager issues at most `1 + cap` commands, all identical, stays
    /// within the retry cap, and is silent after giving up.
    #[test]
    fn persistent_actuation_failure_is_bounded_and_stable(
        job in job_strategy(),
        timeout in 1u32..=3,
        cap in 0u32..=4,
    ) {
        let (g, s, f, c) = wordcount();
        prop_assume!(job.needed(job.cap_f).max(job.needed(job.cap_c)) > 3);
        let mut mgr = ScalingManager::new(
            g.clone(),
            ManagerConfig {
                rescale_timeout_intervals: timeout,
                max_rescale_retries: cap,
                // A ban far longer than the horizon: "never oscillate"
                // must hold for the whole post-give-up quiet period.
                rollback_ban_intervals: 10_000,
                ..Default::default()
            },
        );
        // Permanently under-provisioned at p=1 and the rescale never lands.
        let current = Deployment::uniform(&g, 1);
        let snap = snapshot(&job, (s, f, c), &current);

        let mut issued: Vec<Deployment> = Vec::new();
        let mut gave_up_at: Option<usize> = None;
        for t in 0..120u64 {
            if let Some(plan) = mgr.on_metrics(t, &snap, &current).rescale() {
                issued.push(plan.clone());
                if gave_up_at.is_some() {
                    prop_assert!(false, "rescale issued after giving up at {t}");
                }
            }
            if gave_up_at.is_none()
                && mgr.fault_stats().abandoned_rescales > 0
            {
                gave_up_at = Some(t as usize);
            }
        }
        prop_assert!(!issued.is_empty(), "an under-provisioned job must be acted on");
        prop_assert!(
            issued.len() as u32 <= 1 + cap,
            "{} commands issued, cap allows {}", issued.len(), 1 + cap
        );
        prop_assert!(
            issued.iter().all(|p| p == &issued[0]),
            "retries must re-issue the identical plan"
        );
        prop_assert!(mgr.fault_stats().retries <= cap);
        prop_assert_eq!(mgr.fault_stats().abandoned_rescales, 1);
    }

    /// Property 2: convergence once faults clear. An arbitrary prefix of
    /// majority-degraded windows (flat_map and count telemetry gone) is
    /// never acted on; once telemetry heals and deploys acknowledge, the
    /// manager reaches a sustaining deployment within the paper's step
    /// budget and then stays put.
    #[test]
    fn converges_after_telemetry_faults_clear(
        job in job_strategy(),
        faulty_windows in 1usize..=20,
    ) {
        let (g, s, f, c) = wordcount();
        // Meaningful only when p=1 is genuinely under-provisioned (beyond
        // the default min_change suppression).
        prop_assume!(job.needed(job.cap_f).max(job.needed(job.cap_c)) > 3);
        let mut mgr = ScalingManager::new(
            g.clone(),
            ManagerConfig {
                validate_snapshots: true,
                outlier_rejection: true,
                rescale_timeout_intervals: 1,
                max_rescale_retries: 3,
                ..Default::default()
            },
        );
        let mut current = Deployment::uniform(&g, 1);
        let mut t = 0u64;

        // Fault phase: both non-source operators vanish from telemetry
        // (2 of 3 invalid — a majority) with no last-good to repair from.
        for _ in 0..faulty_windows {
            let mut broken = snapshot(&job, (s, f, c), &current);
            broken.remove_operator(f);
            broken.remove_operator(c);
            let v = mgr.on_metrics(t, &broken, &current);
            prop_assert!(!v.is_rescale(), "acted on majority-degraded telemetry");
            t += 1;
        }
        prop_assert_eq!(mgr.fault_stats().vetoed_windows as usize, faulty_windows);

        // Clean phase: healthy snapshots, acknowledged deploys.
        let mut rescales = 0usize;
        for _ in 0..40 {
            let snap = snapshot(&job, (s, f, c), &current);
            if let Some(plan) = mgr.on_metrics(t, &snap, &current).rescale() {
                current = plan.clone();
                t += 1;
                mgr.on_deployed(t, &current);
                rescales += 1;
            }
            t += 1;
        }
        prop_assert!(
            (1..=3).contains(&rescales),
            "expected 1-3 steps to converge, took {rescales}"
        );
        // The final deployment sustains the offered rate under the linear
        // model used to build the snapshots.
        let pf = current.parallelism(f) as f64;
        let pc = current.parallelism(c) as f64;
        prop_assert!(
            pf * job.cap_f >= job.offered * 0.999 && pc * job.cap_c >= job.offered * 0.999,
            "converged deployment ({pf}, {pc}) does not sustain {} at ({}, {})",
            job.offered, job.cap_f, job.cap_c
        );
        // And it is a fixed point: further healthy windows change nothing.
        let snap = snapshot(&job, (s, f, c), &current);
        for _ in 0..5 {
            prop_assert!(!mgr.on_metrics(t, &snap, &current).is_rescale());
            t += 1;
        }
        prop_assert!(mgr.is_converged());
    }
}
