//! Model test: [`OpMap`] must behave exactly like `BTreeMap<OperatorId, T>`
//! under arbitrary interleavings of insert / remove / clear — including the
//! epoch-stamped `clear`, whose recycled slots must never resurrect stale
//! values.

use std::collections::BTreeMap;

use ds2_core::graph::OperatorId;
use ds2_core::opmap::{OpMap, OpSet};
use proptest::prelude::*;

/// One scripted operation against both the map under test and the model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(usize, u64),
    Remove(usize),
    Clear,
    SlotOrDefault(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0usize..24, 0u64..1000).prop_map(|(kind, idx, val)| match kind {
        0 => Op::Insert(idx, val),
        1 => Op::Remove(idx),
        2 => Op::Clear,
        _ => Op::SlotOrDefault(idx, val),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every observable behaviour of `OpMap` — insert's returned previous
    /// value, remove's returned value, presence, iteration order, length —
    /// matches the `BTreeMap` model across arbitrary operation sequences.
    #[test]
    fn opmap_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut dense: OpMap<u64> = OpMap::new();
        let mut model: BTreeMap<OperatorId, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(i, v) => {
                    let id = OperatorId(i);
                    prop_assert_eq!(dense.insert(id, v), model.insert(id, v), "insert {}", i);
                }
                Op::Remove(i) => {
                    let id = OperatorId(i);
                    prop_assert_eq!(dense.remove(id), model.remove(&id), "remove {}", i);
                }
                Op::Clear => {
                    dense.clear();
                    model.clear();
                }
                Op::SlotOrDefault(i, v) => {
                    let id = OperatorId(i);
                    // The recycling entry point: stale contents may linger in
                    // the slot, so the caller resets them — after which both
                    // maps must agree that the entry is present with `v`.
                    let slot = dense.slot_or_default(id);
                    *slot = v;
                    model.insert(id, v);
                }
            }
            // Presence and value agree on every id after each step.
            for i in 0..24 {
                let id = OperatorId(i);
                prop_assert_eq!(dense.get(id), model.get(&id), "get {} after {:?}", i, op);
                prop_assert_eq!(dense.contains_key(id), model.contains_key(&id));
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
            // Iteration yields identical ordered pairs.
            let a: Vec<(OperatorId, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
            let b: Vec<(OperatorId, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// `OpSet` matches a `BTreeSet` model the same way.
    #[test]
    fn opset_matches_btreeset_model(ops in proptest::collection::vec((0u8..3, 0usize..24), 0..120)) {
        let mut dense = OpSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (kind, i) in ops {
            let id = OperatorId(i);
            match kind {
                0 => { prop_assert_eq!(dense.insert(id), model.insert(id)); }
                1 => { prop_assert_eq!(dense.remove(id), model.remove(&id)); }
                _ => { dense.clear(); model.clear(); }
            }
            for j in 0..24 {
                let id = OperatorId(j);
                prop_assert_eq!(dense.contains(id), model.contains(&id));
            }
            prop_assert_eq!(dense.len(), model.len());
            let a: Vec<OperatorId> = dense.iter().collect();
            let b: Vec<OperatorId> = model.iter().copied().collect();
            prop_assert_eq!(a, b);
        }
    }
}
