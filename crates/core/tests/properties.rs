//! Property-based tests of the DS2 policy (paper §3.4, Properties 1–2).
//!
//! Under the model's "perfect scaling" assumption (true rates change
//! linearly with the number of instances), the policy must prescribe, for
//! every operator, the *minimum* parallelism that sustains the target rate:
//! no overshoot when scaling up, no undershoot when scaling down, and a
//! fixed point (no oscillation) when re-evaluated at the prescribed
//! configuration.
//!
//! Synthetic instrumentation is *canonical*: every instance of an operator
//! reports the same integer counters regardless of deployment, so the
//! capacity the policy measures is bit-for-bit identical across snapshots
//! and the properties are checked against exactly what the policy saw.

use ds2_core::prelude::*;
use proptest::prelude::*;

/// A randomly generated layered dataflow with per-operator capacity and
/// selectivity, plus an initial uniform parallelism.
#[derive(Debug, Clone)]
struct Scenario {
    /// Number of operators per layer; layer 0 is the single source layer.
    layers: Vec<usize>,
    /// Per-operator per-instance true processing capacity (records/s).
    capacities: Vec<f64>,
    /// Per-operator selectivity (output records per input record).
    selectivities: Vec<f64>,
    /// Offered source rate (records/s).
    source_rate: f64,
    /// Initial parallelism for every operator.
    initial_parallelism: usize,
}

impl Scenario {
    /// Canonical per-instance counters for operator `idx`: `records_in` over
    /// exactly one second of useful time, so the measured true processing
    /// rate is the integer `records_in` and the measured selectivity is the
    /// exact ratio `records_out / records_in`.
    fn canonical_counters(&self, idx: usize) -> (u64, u64) {
        let rin = self.capacities[idx].round().max(1.0) as u64;
        let rout = (rin as f64 * self.selectivities[idx]).round() as u64;
        (rin, rout)
    }

    /// The capacity and selectivity the policy will measure for `idx`.
    fn measured(&self, idx: usize) -> (f64, f64) {
        let (rin, rout) = self.canonical_counters(idx);
        (rin as f64, rout as f64 / rin as f64)
    }
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    proptest::collection::vec(1usize..=3, 1..=3)
        .prop_flat_map(|hidden_layers| {
            let mut layers = vec![1usize];
            layers.extend(hidden_layers);
            let n_ops = layers.iter().sum::<usize>();
            (
                Just(layers),
                proptest::collection::vec(10.0f64..10_000.0, n_ops),
                proptest::collection::vec(0.05f64..5.0, n_ops),
                100.0f64..100_000.0,
                1usize..=6,
            )
        })
        .prop_map(
            |(layers, capacities, selectivities, source_rate, initial_parallelism)| Scenario {
                layers,
                capacities,
                selectivities,
                source_rate,
                initial_parallelism,
            },
        )
}

/// Builds the layered graph: every operator connects to every operator of
/// the next layer (paper semantics: each downstream receives the full
/// upstream output, `weight = 1`).
fn build_graph(sc: &Scenario) -> (LogicalGraph, Vec<OperatorId>) {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for (l, &n) in sc.layers.iter().enumerate() {
        for i in 0..n {
            ids.push(b.operator(format!("l{l}_{i}")));
        }
    }
    let mut offset = 0usize;
    for w in sc.layers.windows(2) {
        let (a, bn) = (w[0], w[1]);
        for i in 0..a {
            for j in 0..bn {
                b.connect(ids[offset + i], ids[offset + a + j]);
            }
        }
        offset += a;
    }
    (b.build().unwrap(), ids)
}

/// Ideal-linear-scaling targets, replicating Eq. 7/8 arithmetic from the
/// *measured* capacities and selectivities: an independent expectation of
/// each operator's input rate under optimal upstream provisioning.
fn ground_truth_targets(sc: &Scenario, graph: &LogicalGraph, ids: &[OperatorId]) -> Vec<f64> {
    let mut out_rate = vec![0.0f64; ids.len()];
    let mut targets = vec![0.0f64; ids.len()];
    for (idx, &op) in ids.iter().enumerate() {
        if graph.is_source(op) {
            out_rate[idx] = sc.source_rate;
            targets[idx] = sc.source_rate;
        } else {
            let rt: f64 = graph
                .upstream_edges(op)
                .map(|e| out_rate[e.from.index()])
                .sum();
            let (_, sel) = sc.measured(idx);
            targets[idx] = rt;
            out_rate[idx] = rt * sel;
        }
    }
    targets
}

/// Builds a snapshot in which every instance of every operator reports its
/// canonical counters: measured rates are deployment-independent, which is
/// precisely the paper's linear-scaling assumption.
fn build_snapshot(
    sc: &Scenario,
    graph: &LogicalGraph,
    ids: &[OperatorId],
    deployment: &Deployment,
) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    for (idx, &op) in ids.iter().enumerate() {
        let p = deployment.parallelism(op);
        if graph.is_source(op) {
            snap.set_source_rate(op, sc.source_rate);
            let inst = InstanceMetrics {
                records_in: 0,
                records_out: (sc.source_rate / p as f64).round() as u64,
                useful_ns: 500_000_000,
                window_ns: 1_000_000_000,
                ..Default::default()
            };
            snap.insert_instances(op, vec![inst; p]);
            continue;
        }
        let (rin, rout) = sc.canonical_counters(idx);
        let inst = InstanceMetrics {
            records_in: rin,
            records_out: rout,
            useful_ns: 1_000_000_000,
            window_ns: 2_000_000_000,
            ..Default::default()
        };
        snap.insert_instances(op, vec![inst; p]);
    }
    snap
}

const TOL: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Properties 1 & 2: the prescribed parallelism sustains the target rate
    /// and is minimal — `π·c >= rt` and `(π-1)·c < rt` (unless clamped at 1).
    #[test]
    fn plan_is_minimal_and_sufficient(sc in scenario_strategy()) {
        let (graph, ids) = build_graph(&sc);
        let deployment = Deployment::uniform(&graph, sc.initial_parallelism);
        let snap = build_snapshot(&sc, &graph, &ids, &deployment);
        let out = Ds2Policy::new().evaluate(&graph, &snap, &deployment).unwrap();
        let targets = ground_truth_targets(&sc, &graph, &ids);

        for (idx, &op) in ids.iter().enumerate() {
            if graph.is_source(op) { continue; }
            let pi = out.plan.parallelism(op) as f64;
            let (c, _) = sc.measured(idx);
            let rt = targets[idx];
            if rt <= TOL {
                prop_assert_eq!(out.plan.parallelism(op), 1);
                continue;
            }
            // No undershoot: the plan sustains the target.
            prop_assert!(
                pi * c >= rt * (1.0 - TOL),
                "op {}: {} instances x {} < target {}", idx, pi, c, rt
            );
            // No overshoot: one fewer instance would miss the target.
            if out.plan.parallelism(op) > 1 {
                prop_assert!(
                    (pi - 1.0) * c < rt * (1.0 + TOL),
                    "op {}: {} instances overshoot target {} at capacity {}", idx, pi, rt, c
                );
            }
        }
    }

    /// Stability: with perfect linear scaling, re-measuring at the
    /// prescribed configuration reproduces the same plan (a fixed point,
    /// hence no oscillation — §3.4).
    #[test]
    fn plan_is_fixed_point(sc in scenario_strategy()) {
        let (graph, ids) = build_graph(&sc);
        let deployment = Deployment::uniform(&graph, sc.initial_parallelism);
        let snap = build_snapshot(&sc, &graph, &ids, &deployment);
        let first = Ds2Policy::new().evaluate(&graph, &snap, &deployment).unwrap();

        let snap2 = build_snapshot(&sc, &graph, &ids, &first.plan);
        let second = Ds2Policy::new().evaluate(&graph, &snap2, &first.plan).unwrap();

        for &op in &ids {
            if graph.is_source(op) { continue; }
            prop_assert_eq!(
                first.plan.parallelism(op),
                second.plan.parallelism(op),
                "oscillation on {}", op
            );
        }
    }

    /// Accuracy is independent of the starting point: severely under- and
    /// over-provisioned starts both land on the same plan in one step,
    /// because true rates expose per-instance capacity either way (§5.5).
    #[test]
    fn start_point_does_not_matter(sc in scenario_strategy()) {
        let (graph, ids) = build_graph(&sc);
        let d1 = Deployment::uniform(&graph, 1);
        let snap1 = build_snapshot(&sc, &graph, &ids, &d1);
        let from_below = Ds2Policy::new().evaluate(&graph, &snap1, &d1).unwrap();

        let d_big = Deployment::uniform(&graph, 64);
        let snap_big = build_snapshot(&sc, &graph, &ids, &d_big);
        let from_above = Ds2Policy::new().evaluate(&graph, &snap_big, &d_big).unwrap();

        for &op in &ids {
            if graph.is_source(op) { continue; }
            prop_assert_eq!(
                from_below.plan.parallelism(op),
                from_above.plan.parallelism(op),
                "under- and over-provisioned starts disagree on {}", op
            );
        }
    }

    /// Rate arithmetic invariant: observed rates never exceed true rates,
    /// for arbitrary counter values with `Wu <= W`.
    #[test]
    fn observed_bounded_by_true(
        records_in in 0u64..1_000_000,
        records_out in 0u64..1_000_000,
        useful in 1u64..1_000_000_000,
        slack in 0u64..1_000_000_000,
    ) {
        let m = InstanceMetrics {
            records_in,
            records_out,
            useful_ns: useful,
            window_ns: useful + slack,
            ..Default::default()
        };
        let tp = m.true_processing_rate().unwrap();
        let op_ = m.observed_processing_rate().unwrap();
        let to = m.true_output_rate().unwrap();
        let oo = m.observed_output_rate().unwrap();
        prop_assert!(op_ <= tp * (1.0 + 1e-12));
        prop_assert!(oo <= to * (1.0 + 1e-12));
        prop_assert!(m.validate().is_ok());
    }

    /// Merging windows preserves totals and keeps rates between the merged
    /// windows' rates.
    #[test]
    fn merge_preserves_rate_bounds(
        a_in in 1u64..100_000, a_useful in 1u64..1_000_000_000,
        b_in in 1u64..100_000, b_useful in 1u64..1_000_000_000,
    ) {
        let a = InstanceMetrics {
            records_in: a_in, useful_ns: a_useful, window_ns: 1_000_000_000,
            ..Default::default()
        };
        let b = InstanceMetrics {
            records_in: b_in, useful_ns: b_useful, window_ns: 1_000_000_000,
            ..Default::default()
        };
        let mut m = a;
        m.merge(&b);
        let ra = a.true_processing_rate().unwrap();
        let rb = b.true_processing_rate().unwrap();
        let rm = m.true_processing_rate().unwrap();
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        prop_assert!(rm >= lo * (1.0 - 1e-12) && rm <= hi * (1.0 + 1e-12),
            "merged rate {} outside [{}, {}]", rm, lo, hi);
    }

    /// Idempotence: a deployment the policy itself prescribed is a fixed
    /// point — evaluated *at* the prescribed configuration (with metrics
    /// re-measured there), the policy prescribes exactly that
    /// configuration again. This is the §3.4 no-oscillation guarantee
    /// stated directly on the converged deployment.
    #[test]
    fn converged_deployment_prescribes_itself(sc in scenario_strategy()) {
        let (graph, ids) = build_graph(&sc);
        let start = Deployment::uniform(&graph, sc.initial_parallelism);
        let snap = build_snapshot(&sc, &graph, &ids, &start);
        let converged = Ds2Policy::new().evaluate(&graph, &snap, &start).unwrap().plan;

        let snap_at = build_snapshot(&sc, &graph, &ids, &converged);
        let again = Ds2Policy::new()
            .evaluate(&graph, &snap_at, &converged)
            .unwrap()
            .plan;
        for &op in &ids {
            if graph.is_source(op) { continue; }
            prop_assert_eq!(
                again.parallelism(op),
                converged.parallelism(op),
                "policy is not idempotent on {}", op
            );
        }
    }

    /// Monotonicity: raising the offered source rate never prescribes
    /// *fewer* instances for any operator (Property 1's practical
    /// consequence — more load can only need more capacity).
    #[test]
    fn higher_rate_never_prescribes_fewer_instances(
        sc in scenario_strategy(),
        factor in 1.01f64..16.0,
    ) {
        let (graph, ids) = build_graph(&sc);
        let deployment = Deployment::uniform(&graph, sc.initial_parallelism);
        let snap = build_snapshot(&sc, &graph, &ids, &deployment);
        let base = Ds2Policy::new().evaluate(&graph, &snap, &deployment).unwrap();

        let mut boosted_sc = sc.clone();
        boosted_sc.source_rate *= factor;
        let snap_hi = build_snapshot(&boosted_sc, &graph, &ids, &deployment);
        let boosted = Ds2Policy::new().evaluate(&graph, &snap_hi, &deployment).unwrap();

        for &op in &ids {
            if graph.is_source(op) { continue; }
            prop_assert!(
                boosted.plan.parallelism(op) >= base.plan.parallelism(op),
                "rate x{} shrank {} from {} to {}",
                factor, op,
                base.plan.parallelism(op),
                boosted.plan.parallelism(op)
            );
        }
    }

    /// Scaling the source rate by an integer factor scales every target
    /// rate by the same factor (linearity of Eq. 8).
    #[test]
    fn targets_scale_linearly_with_source_rate(sc in scenario_strategy(), k in 2u32..=8) {
        let (graph, ids) = build_graph(&sc);
        let deployment = Deployment::uniform(&graph, sc.initial_parallelism);
        let snap = build_snapshot(&sc, &graph, &ids, &deployment);
        let base = Ds2Policy::new().evaluate(&graph, &snap, &deployment).unwrap();

        let mut scaled = sc.clone();
        scaled.source_rate *= k as f64;
        let snap_k = build_snapshot(&scaled, &graph, &ids, &deployment);
        let boosted = Ds2Policy::new().evaluate(&graph, &snap_k, &deployment).unwrap();

        for &op in &ids {
            if graph.is_source(op) { continue; }
            let a = base.estimates[&op].target_rate;
            let b = boosted.estimates[&op].target_rate;
            prop_assert!((b - a * k as f64).abs() <= (a * k as f64).abs() * 1e-9 + 1e-9,
                "target for {} not linear: {} vs {}x{}", op, b, a, k);
        }
    }
}
