//! # ds2-core — the DS2 scaling model and controller
//!
//! This crate implements the core contribution of *"Three steps is all you
//! need: fast, accurate, automatic scaling decisions for distributed
//! streaming dataflows"* (Kalavri et al., OSDI 2018):
//!
//! * the **performance model** of §3.2 — *useful time*, *true* vs *observed*
//!   processing/output rates of operator instances ([`rates`]);
//! * the **scaling policy** of Eq. 7–8 — optimal parallelism for *every*
//!   operator of a dataflow in a single topological traversal ([`policy`]);
//! * the **Scaling Manager** of §4.2 — policy interval, warm-up, activation
//!   time, target-rate ratio, minor-change suppression, rollback and
//!   decision limiting ([`manager`]);
//! * the engine-agnostic **controller interface** shared with the baseline
//!   controllers ([`controller`]).
//!
//! The model is mechanism-agnostic: anything able to report, per operator
//! instance and time window, the records pulled/pushed and the useful time
//! (deserialization + processing + serialization) can be controlled by DS2.
//!
//! ## Quick start
//!
//! ```
//! use ds2_core::prelude::*;
//!
//! // Logical dataflow: source -> flat_map -> count.
//! let mut b = GraphBuilder::new();
//! let src = b.operator("source");
//! let fm = b.operator("flat_map");
//! let cnt = b.operator("count");
//! b.connect(src, fm);
//! b.connect(fm, cnt);
//! let graph = b.build().unwrap();
//!
//! // One window of instrumentation: the source offers 1000 rec/s; each
//! // flat_map instance can truly process 100 rec/s, emitting 2 records per
//! // input; each count instance can truly process 150 rec/s.
//! let mut snap = MetricsSnapshot::new();
//! snap.set_source_rate(src, 1000.0);
//! snap.insert_instances(src, vec![InstanceMetrics {
//!     records_out: 250, useful_ns: 250_000_000, window_ns: 1_000_000_000,
//!     ..Default::default()
//! }]);
//! snap.insert_instances(fm, vec![InstanceMetrics {
//!     records_in: 100, records_out: 200,
//!     useful_ns: 1_000_000_000, window_ns: 1_000_000_000,
//!     ..Default::default()
//! }]);
//! snap.insert_instances(cnt, vec![InstanceMetrics {
//!     records_in: 150, records_out: 150,
//!     useful_ns: 1_000_000_000, window_ns: 1_000_000_000,
//!     ..Default::default()
//! }]);
//!
//! let current = Deployment::uniform(&graph, 1);
//! let out = Ds2Policy::new().evaluate(&graph, &snap, &current).unwrap();
//! assert_eq!(out.plan.parallelism(fm), 10); // 1000 / 100
//! assert_eq!(out.plan.parallelism(cnt), 14); // 2000 / 150, ceiled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod deployment;
pub mod error;
pub mod graph;
pub mod manager;
pub mod opmap;
pub mod policy;
pub mod rates;
pub mod snapshot;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::controller::{ControllerFaultStats, ControllerVerdict, ScalingController};
    pub use crate::deployment::{Deployment, ResourceAlloc};
    pub use crate::error::Ds2Error;
    pub use crate::graph::{Edge, GraphBuilder, LogicalGraph, OperatorId};
    pub use crate::manager::{ActivationCombine, ManagerConfig, ScalingManager};
    pub use crate::opmap::{OpMap, OpSet};
    pub use crate::policy::{
        Ds2Policy, OperatorEstimate, PolicyConfig, PolicyOutput, PolicyWorkspace, SplitHint,
    };
    pub use crate::rates::{InstanceMetrics, OperatorMetrics};
    pub use crate::snapshot::MetricsSnapshot;
}

pub use prelude::*;
