//! Dense, allocation-free per-operator storage.
//!
//! [`OperatorId`]s are dense indices assigned by the graph builder, so a
//! per-operator map is most naturally a `Vec` indexed by
//! [`OperatorId::index`]. [`OpMap`] and [`OpSet`] exploit that: lookups are
//! one bounds check and one pointer offset instead of a `BTreeMap`'s
//! `O(log n)` pointer chase, and — crucially for the hot data plane —
//! clearing is **epoch-stamped**: [`OpMap::clear`] bumps a generation
//! counter in `O(1)` without dropping or reallocating the slots, so a map
//! that is filled and cleared once per metrics window or simulation tick
//! settles into a steady state with zero heap traffic.
//!
//! Values written in an earlier epoch stay allocated in their slot and are
//! recycled by [`OpMap::slot_or_default`], which lets values with heap
//! capacity of their own (e.g. a `Vec` of instance metrics) keep that
//! capacity across windows.

use std::fmt;
use std::ops::Index;

use crate::graph::OperatorId;

/// A dense map from [`OperatorId`] to `T`, backed by a `Vec` indexed by
/// [`OperatorId::index`].
///
/// Semantically a drop-in replacement for `BTreeMap<OperatorId, T>` over
/// dense operator ids: `insert`/`get`/`remove`/`iter` (id order) behave
/// identically. `clear` is `O(1)` (an epoch bump) and `insert` only
/// allocates when an id beyond the current capacity appears, so a map pinned
/// to a graph's operator count via [`OpMap::with_len`] is allocation-free in
/// steady state.
#[derive(Clone)]
pub struct OpMap<T> {
    /// Slot storage; `Some` once a value was ever written to the slot.
    values: Vec<Option<T>>,
    /// Epoch in which each slot was last written; a slot is *present* iff
    /// its stamp equals the map's current epoch.
    stamps: Vec<u64>,
    /// Current generation; bumped by [`OpMap::clear`]. Starts at 1 so fresh
    /// (zeroed) stamps read as absent.
    epoch: u64,
}

impl<T> Default for OpMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OpMap<T> {
    /// Creates an empty map with no slots.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            stamps: Vec::new(),
            epoch: 1,
        }
    }

    /// Creates an empty map with `n` slots, pinned to a graph's operator
    /// count so inserts never reallocate.
    pub fn with_len(n: usize) -> Self {
        let mut m = Self::new();
        m.grow(n);
        m
    }

    /// Ensures at least `n` slots exist (never shrinks).
    pub fn grow(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize_with(n, || None);
            self.stamps.resize(n, 0);
        }
    }

    /// Number of slots (the operator-count bound, not the entry count).
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.stamps.iter().filter(|&&s| s == self.epoch).count()
    }

    /// `true` when no entry is present.
    pub fn is_empty(&self) -> bool {
        !self.stamps.contains(&self.epoch)
    }

    /// Removes every entry in `O(1)` by bumping the epoch. Slot values stay
    /// allocated and are recycled by later inserts.
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// Inserts `value` for `op`, returning the previous value if one was
    /// present *this epoch* (mirroring `BTreeMap::insert`).
    pub fn insert(&mut self, op: OperatorId, value: T) -> Option<T> {
        let i = op.index();
        self.grow(i + 1);
        let was_present = self.stamps[i] == self.epoch;
        self.stamps[i] = self.epoch;
        let old = self.values[i].replace(value);
        if was_present {
            old
        } else {
            None
        }
    }

    /// The value for `op`, if present.
    pub fn get(&self, op: OperatorId) -> Option<&T> {
        let i = op.index();
        if i < self.values.len() && self.stamps[i] == self.epoch {
            self.values[i].as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the value for `op`, if present.
    pub fn get_mut(&mut self, op: OperatorId) -> Option<&mut T> {
        let i = op.index();
        if i < self.values.len() && self.stamps[i] == self.epoch {
            self.values[i].as_mut()
        } else {
            None
        }
    }

    /// Removes and returns the value for `op`, if present.
    pub fn remove(&mut self, op: OperatorId) -> Option<T> {
        let i = op.index();
        if i < self.values.len() && self.stamps[i] == self.epoch {
            self.stamps[i] = self.epoch - 1;
            self.values[i].take()
        } else {
            None
        }
    }

    /// `true` when `op` has a value.
    pub fn contains_key(&self, op: OperatorId) -> bool {
        self.get(op).is_some()
    }

    /// Present entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OperatorId, &T)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.stamps[i] == self.epoch)
            .map(|(i, v)| (OperatorId(i), v.as_ref().expect("stamped")))
    }

    /// Present entries in id order, values mutable.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (OperatorId, &mut T)> + '_ {
        let epoch = self.epoch;
        self.values
            .iter_mut()
            .zip(self.stamps.iter())
            .enumerate()
            .filter_map(move |(i, (v, &s))| {
                (s == epoch).then(|| (OperatorId(i), v.as_mut().expect("stamped")))
            })
    }

    /// Present values in id order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Present keys in id order.
    pub fn keys(&self) -> impl Iterator<Item = OperatorId> + '_ {
        self.iter().map(|(op, _)| op)
    }
}

impl<T: Default> OpMap<T> {
    /// Marks `op` present and returns a mutable reference to its slot,
    /// recycling whatever value occupied the slot in an *earlier* epoch
    /// (its heap capacity included). The caller is responsible for
    /// resetting the recycled value's contents.
    pub fn slot_or_default(&mut self, op: OperatorId) -> &mut T {
        let i = op.index();
        self.grow(i + 1);
        self.stamps[i] = self.epoch;
        self.values[i].get_or_insert_with(T::default)
    }
}

impl<T> Index<OperatorId> for OpMap<T> {
    type Output = T;
    fn index(&self, op: OperatorId) -> &T {
        self.get(op).expect("no entry for operator")
    }
}

impl<T> Index<&OperatorId> for OpMap<T> {
    type Output = T;
    fn index(&self, op: &OperatorId) -> &T {
        self.get(*op).expect("no entry for operator")
    }
}

impl<T: fmt::Debug> fmt::Debug for OpMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for OpMap<T> {
    fn eq(&self, other: &Self) -> bool {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl<T: PartialEq> Eq for OpMap<T> where T: Eq {}

impl<T> FromIterator<(OperatorId, T)> for OpMap<T> {
    fn from_iter<I: IntoIterator<Item = (OperatorId, T)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (op, v) in iter {
            m.insert(op, v);
        }
        m
    }
}

/// A dense set of [`OperatorId`]s with `O(1)` epoch-stamped clearing.
#[derive(Clone, Default)]
pub struct OpSet {
    stamps: Vec<u64>,
    epoch: u64,
}

impl OpSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            stamps: Vec::new(),
            epoch: 1,
        }
    }

    /// Creates an empty set with `n` slots.
    pub fn with_len(n: usize) -> Self {
        Self {
            stamps: vec![0; n],
            epoch: 1,
        }
    }

    /// Inserts `op`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, op: OperatorId) -> bool {
        let i = op.index();
        if i >= self.stamps.len() {
            self.stamps.resize(i + 1, 0);
        }
        let fresh = self.stamps[i] != self.epoch;
        self.stamps[i] = self.epoch;
        fresh
    }

    /// `true` when `op` is in the set.
    pub fn contains(&self, op: OperatorId) -> bool {
        op.index() < self.stamps.len() && self.stamps[op.index()] == self.epoch
    }

    /// Removes `op`; returns `true` if it was present.
    pub fn remove(&mut self, op: OperatorId) -> bool {
        let present = self.contains(op);
        if present {
            self.stamps[op.index()] = self.epoch - 1;
        }
        present
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.stamps.iter().filter(|&&s| s == self.epoch).count()
    }

    /// `true` when the set has no members.
    pub fn is_empty(&self) -> bool {
        !self.stamps.contains(&self.epoch)
    }

    /// Removes every member in `O(1)`.
    pub fn clear(&mut self) {
        self.epoch += 1;
    }

    /// Members in id order.
    pub fn iter(&self) -> impl Iterator<Item = OperatorId> + '_ {
        self.stamps
            .iter()
            .enumerate()
            .filter_map(move |(i, &s)| (s == self.epoch).then_some(OperatorId(i)))
    }
}

impl fmt::Debug for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = OpMap::new();
        assert_eq!(m.insert(OperatorId(3), "a"), None);
        assert_eq!(m.insert(OperatorId(3), "b"), Some("a"));
        assert_eq!(m.get(OperatorId(3)), Some(&"b"));
        assert_eq!(m.get(OperatorId(0)), None);
        assert_eq!(m.remove(OperatorId(3)), Some("b"));
        assert_eq!(m.remove(OperatorId(3)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn clear_is_epoch_bump_and_slots_recycle() {
        let mut m: OpMap<Vec<u32>> = OpMap::with_len(4);
        m.insert(OperatorId(1), vec![1, 2, 3]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(OperatorId(1)), None);
        // The old Vec (and its capacity) is recycled, contents intact —
        // callers reset it.
        let slot = m.slot_or_default(OperatorId(1));
        assert_eq!(slot, &vec![1, 2, 3]);
        slot.clear();
        slot.push(9);
        assert_eq!(m.get(OperatorId(1)), Some(&vec![9]));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut m = OpMap::new();
        m.insert(OperatorId(5), 50);
        m.insert(OperatorId(1), 10);
        m.insert(OperatorId(3), 30);
        let pairs: Vec<(OperatorId, i32)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(
            pairs,
            vec![
                (OperatorId(1), 10),
                (OperatorId(3), 30),
                (OperatorId(5), 50)
            ]
        );
        assert_eq!(m.values().sum::<i32>(), 90);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn insert_after_remove_does_not_resurrect() {
        let mut m = OpMap::new();
        m.insert(OperatorId(2), 1);
        m.remove(OperatorId(2));
        assert_eq!(m.insert(OperatorId(2), 2), None);
        assert_eq!(m.get(OperatorId(2)), Some(&2));
    }

    #[test]
    fn equality_ignores_capacity_and_epoch_history() {
        let mut a = OpMap::with_len(16);
        a.insert(OperatorId(0), 1);
        a.insert(OperatorId(9), 2);
        a.clear();
        a.insert(OperatorId(0), 1);
        let mut b = OpMap::new();
        b.insert(OperatorId(0), 1);
        assert_eq!(a, b);
        b.insert(OperatorId(1), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn index_ops() {
        let mut m = OpMap::new();
        m.insert(OperatorId(1), 7);
        assert_eq!(m[OperatorId(1)], 7);
        assert_eq!(m[&OperatorId(1)], 7);
    }

    #[test]
    fn opset_basics() {
        let mut s = OpSet::with_len(4);
        assert!(s.insert(OperatorId(2)));
        assert!(!s.insert(OperatorId(2)));
        assert!(s.contains(OperatorId(2)));
        assert!(!s.contains(OperatorId(0)));
        assert_eq!(s.len(), 1);
        assert!(s.insert(OperatorId(7)));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![OperatorId(2), OperatorId(7)]
        );
        assert!(s.remove(OperatorId(2)));
        assert!(!s.remove(OperatorId(2)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(OperatorId(7)));
    }
}
