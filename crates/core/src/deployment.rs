//! Physical deployments: the resources assigned to each logical operator.
//!
//! Historically a deployment was a bare parallelism per operator. The
//! multi-dimensional resource model generalizes it to a
//! [`ResourceAlloc`] — `(parallelism, key_classes, state_budget)` — while
//! keeping the parallelism axis primary: every existing call site that only
//! reads [`Deployment::parallelism`] sees exactly the view it always did,
//! and the extra axes default to "off" (`key_classes = 1`,
//! `state_budget = ∞`), in which case nothing anywhere behaves differently.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};

/// The full resource allocation of one operator: the multi-dimensional
/// generalization of a bare parallelism.
///
/// * `parallelism` — instance count, the DS2 §3 axis.
/// * `key_classes` — how many instances the operator's hottest key class is
///   spread over. `1` (the default) is classic hash partitioning: the
///   hottest key lands on a single instance. Splitting the hot class over
///   `s > 1` instances caps any instance's input share at `hot/s`, which is
///   the only remedy when no parallelism can absorb the hot share.
/// * `state_budget` — per-instance state budget in bytes
///   ([`f64::INFINITY`] = unbudgeted). Operators whose per-instance state
///   exceeds it spill, multiplying their per-record cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceAlloc {
    /// Number of parallel instances.
    pub parallelism: usize,
    /// Instances the hottest key class is split across (≥ 1).
    pub key_classes: usize,
    /// Per-instance state budget in bytes (∞ = unbudgeted).
    pub state_budget: f64,
}

impl ResourceAlloc {
    /// The single-dimension allocation: `p` instances, no class split, no
    /// state budget — behaviorally identical to the pre-refactor model.
    pub fn parallelism_only(p: usize) -> Self {
        Self {
            parallelism: p,
            key_classes: 1,
            state_budget: f64::INFINITY,
        }
    }

    /// Whether the allocation uses any axis beyond parallelism.
    pub fn is_multi_dim(&self) -> bool {
        self.key_classes > 1 || self.state_budget.is_finite()
    }
}

/// A physical execution plan: the [`ResourceAlloc`] of every logical
/// operator.
///
/// This is the quantity DS2 controls. A deployment is valid for a graph when
/// it assigns at least one instance to every operator.
///
/// Storage is dense `Vec`s indexed by [`OperatorId::index`] — a
/// parallelism of `0` means "unassigned" (operators never legally run zero
/// instances), so lookups on the policy/simulator hot paths are plain index
/// arithmetic instead of `BTreeMap` pointer chasing. The `key_classes` and
/// `state_budget` vectors stay empty until someone sets a non-default
/// value, so parallelism-only plans cost exactly what they used to.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    parallelism: Vec<usize>,
    /// Key-class split per operator; `0` or missing means the default (1).
    key_classes: Vec<u32>,
    /// Per-instance state budget per operator; missing means ∞.
    state_budget: Vec<f64>,
}

impl Deployment {
    /// Creates a deployment assigning `p` instances to every operator.
    pub fn uniform(graph: &LogicalGraph, p: usize) -> Self {
        Self {
            parallelism: vec![p.max(1); graph.len()],
            key_classes: Vec::new(),
            state_budget: Vec::new(),
        }
    }

    /// Creates an empty deployment with `n` zeroed (unassigned) slots.
    pub fn with_len(n: usize) -> Self {
        Self {
            parallelism: vec![0; n],
            key_classes: Vec::new(),
            state_budget: Vec::new(),
        }
    }

    /// Creates a deployment from explicit per-operator parallelism.
    pub fn from_map(parallelism: BTreeMap<OperatorId, usize>) -> Self {
        let n = parallelism.keys().last().map_or(0, |op| op.index() + 1);
        let mut d = Self::with_len(n);
        for (op, p) in parallelism {
            d.set(op, p);
        }
        d
    }

    /// Validates that every operator of `graph` has at least one instance.
    pub fn validate(&self, graph: &LogicalGraph) -> Result<(), Ds2Error> {
        for op in graph.operators() {
            if self.parallelism(op) == 0 {
                return Err(Ds2Error::InvalidDeployment(format!(
                    "{op} ({}) has no instances assigned",
                    graph.name(op)
                )));
            }
        }
        Ok(())
    }

    /// Parallelism of one operator (0 if the operator is unknown).
    #[inline]
    pub fn parallelism(&self, op: OperatorId) -> usize {
        self.parallelism.get(op.index()).copied().unwrap_or(0)
    }

    /// Sets the parallelism of one operator.
    pub fn set(&mut self, op: OperatorId, p: usize) {
        let i = op.index();
        if i >= self.parallelism.len() {
            self.parallelism.resize(i + 1, 0);
        }
        self.parallelism[i] = p;
    }

    /// Key-class split of one operator (always ≥ 1; defaults to 1 — the
    /// hottest key class lands on a single instance).
    #[inline]
    pub fn key_classes(&self, op: OperatorId) -> usize {
        match self.key_classes.get(op.index()) {
            Some(&s) if s > 1 => s as usize,
            _ => 1,
        }
    }

    /// Sets the key-class split of one operator. Values ≤ 1 restore the
    /// default.
    pub fn set_key_classes(&mut self, op: OperatorId, s: usize) {
        let i = op.index();
        if s <= 1 && i >= self.key_classes.len() {
            return; // already the default
        }
        if i >= self.key_classes.len() {
            self.key_classes.resize(i + 1, 0);
        }
        self.key_classes[i] = if s <= 1 {
            0
        } else {
            s.min(u32::MAX as usize) as u32
        };
    }

    /// Per-instance state budget of one operator in bytes (∞ when
    /// unbudgeted).
    #[inline]
    pub fn state_budget(&self, op: OperatorId) -> f64 {
        match self.state_budget.get(op.index()) {
            Some(&b) if b.is_finite() && b > 0.0 => b,
            _ => f64::INFINITY,
        }
    }

    /// Sets the per-instance state budget of one operator. Non-finite or
    /// non-positive values restore the default (unbudgeted).
    pub fn set_state_budget(&mut self, op: OperatorId, bytes: f64) {
        let i = op.index();
        let default = !bytes.is_finite() || bytes <= 0.0;
        if default && i >= self.state_budget.len() {
            return;
        }
        if i >= self.state_budget.len() {
            self.state_budget.resize(i + 1, f64::INFINITY);
        }
        self.state_budget[i] = if default { f64::INFINITY } else { bytes };
    }

    /// The full resource allocation of one operator.
    pub fn alloc(&self, op: OperatorId) -> ResourceAlloc {
        ResourceAlloc {
            parallelism: self.parallelism(op),
            key_classes: self.key_classes(op),
            state_budget: self.state_budget(op),
        }
    }

    /// Sets the full resource allocation of one operator.
    pub fn set_alloc(&mut self, op: OperatorId, alloc: ResourceAlloc) {
        self.set(op, alloc.parallelism);
        self.set_key_classes(op, alloc.key_classes);
        self.set_state_budget(op, alloc.state_budget);
    }

    /// Whether the two plans differ on the key-class axis anywhere — the
    /// significance signal for class-split rescales, which may leave every
    /// parallelism unchanged.
    pub fn classes_differ(&self, other: &Deployment) -> bool {
        let n = self.key_classes.len().max(other.key_classes.len());
        (0..n).any(|i| {
            let op = OperatorId(i);
            self.key_classes(op) != other.key_classes(op)
        })
    }

    /// Whether any operator uses an axis beyond parallelism.
    pub fn is_multi_dim(&self) -> bool {
        self.key_classes.iter().any(|&s| s > 1)
            || self.state_budget.iter().any(|b| b.is_finite() && *b > 0.0)
    }

    /// Resets every assignment to "unassigned" and pins the slot count to
    /// `n`, reusing the existing allocation — the [`PolicyWorkspace`]
    /// clearing path.
    ///
    /// [`PolicyWorkspace`]: crate::policy::PolicyWorkspace
    pub fn reset(&mut self, n: usize) {
        self.parallelism.clear();
        self.parallelism.resize(n, 0);
        self.key_classes.clear();
        self.state_budget.clear();
    }

    /// Iterates over assigned `(operator, parallelism)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OperatorId, usize)> + '_ {
        self.parallelism
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0)
            .map(|(i, &p)| (OperatorId(i), p))
    }

    /// Total number of instances across all operators.
    pub fn total_instances(&self) -> usize {
        self.parallelism.iter().sum()
    }

    /// The per-operator parallelism as an ordered map (assigned operators
    /// only). Allocates; intended for reporting, not hot paths.
    pub fn to_map(&self) -> BTreeMap<OperatorId, usize> {
        self.iter().collect()
    }

    /// Largest absolute per-operator parallelism change between two plans.
    pub fn max_delta(&self, other: &Deployment) -> usize {
        let n = self.parallelism.len().max(other.parallelism.len());
        let mut delta = 0usize;
        for i in 0..n {
            let p = self.parallelism.get(i).copied().unwrap_or(0);
            let q = other.parallelism.get(i).copied().unwrap_or(0);
            delta = delta.max(p.abs_diff(q));
        }
        delta
    }
}

/// Two deployments are equal when they assign the same resource allocation
/// to the same operators — trailing/missing default slots are ignored, so
/// plans built for the same graph through different code paths compare
/// equal, and a plan that only changes an operator's key-class split or
/// state budget compares *unequal* (it is a real rescale).
impl PartialEq for Deployment {
    fn eq(&self, other: &Self) -> bool {
        let n = self
            .parallelism
            .len()
            .max(other.parallelism.len())
            .max(self.key_classes.len().max(other.key_classes.len()))
            .max(self.state_budget.len().max(other.state_budget.len()));
        (0..n).all(|i| {
            let op = OperatorId(i);
            self.parallelism(op) == other.parallelism(op)
                && self.key_classes(op) == other.key_classes(op)
                && self.state_budget(op).to_bits() == other.state_budget(op).to_bits()
        })
    }
}

impl Eq for Deployment {}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (op, p)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}:{p}")?;
            let s = self.key_classes(op);
            if s > 1 {
                write!(f, "×{s}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph() -> LogicalGraph {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        b.build().unwrap()
    }

    #[test]
    fn uniform_assigns_everyone() {
        let g = graph();
        let d = Deployment::uniform(&g, 4);
        assert_eq!(d.parallelism(OperatorId(0)), 4);
        assert_eq!(d.parallelism(OperatorId(1)), 4);
        assert_eq!(d.total_instances(), 8);
        assert!(d.validate(&g).is_ok());
    }

    #[test]
    fn uniform_clamps_zero_to_one() {
        let g = graph();
        let d = Deployment::uniform(&g, 0);
        assert_eq!(d.parallelism(OperatorId(0)), 1);
    }

    #[test]
    fn validate_rejects_missing_and_zero() {
        let g = graph();
        let d = Deployment::from_map([(OperatorId(0), 1)].into());
        assert!(d.validate(&g).is_err());
        let d = Deployment::from_map([(OperatorId(0), 1), (OperatorId(1), 0)].into());
        assert!(d.validate(&g).is_err());
    }

    #[test]
    fn max_delta_is_symmetric() {
        let a = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 10)].into());
        let b = Deployment::from_map([(OperatorId(0), 5), (OperatorId(1), 7)].into());
        assert_eq!(a.max_delta(&b), 3);
        assert_eq!(b.max_delta(&a), 3);
    }

    #[test]
    fn max_delta_counts_unassigned_as_zero() {
        let a = Deployment::from_map([(OperatorId(0), 2)].into());
        let b = Deployment::from_map([(OperatorId(0), 2), (OperatorId(2), 6)].into());
        assert_eq!(a.max_delta(&b), 6);
        assert_eq!(b.max_delta(&a), 6);
    }

    #[test]
    fn equality_ignores_trailing_unassigned_slots() {
        let mut a = Deployment::with_len(8);
        a.set(OperatorId(0), 2);
        let b = Deployment::from_map([(OperatorId(0), 2)].into());
        assert_eq!(a, b);
        a.set(OperatorId(5), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_clears_and_pins_len() {
        let mut d = Deployment::from_map([(OperatorId(0), 2), (OperatorId(3), 4)].into());
        d.reset(2);
        assert_eq!(d.parallelism(OperatorId(0)), 0);
        assert_eq!(d.parallelism(OperatorId(3)), 0);
        assert_eq!(d.total_instances(), 0);
        d.set(OperatorId(1), 3);
        assert_eq!(d.to_map(), [(OperatorId(1), 3)].into());
    }

    #[test]
    fn display_lists_assignments() {
        let d = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 3)].into());
        assert_eq!(d.to_string(), "{op0:2, op1:3}");
    }

    #[test]
    fn default_alloc_is_parallelism_only() {
        let d = Deployment::from_map([(OperatorId(0), 3)].into());
        let a = d.alloc(OperatorId(0));
        assert_eq!(a, ResourceAlloc::parallelism_only(3));
        assert!(!a.is_multi_dim());
        assert!(!d.is_multi_dim());
        assert_eq!(d.key_classes(OperatorId(0)), 1);
        assert_eq!(d.state_budget(OperatorId(0)), f64::INFINITY);
    }

    #[test]
    fn class_only_changes_are_unequal_but_parallelism_view_is_lossless() {
        let base = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 4)].into());
        let mut split = base.clone();
        split.set_key_classes(OperatorId(1), 2);
        // The parallelism view is unchanged...
        assert_eq!(split.parallelism(OperatorId(1)), 4);
        assert_eq!(split.max_delta(&base), 0);
        // ...but the plans are distinguishable (a split is a real rescale).
        assert_ne!(base, split);
        assert!(split.classes_differ(&base));
        assert!(split.is_multi_dim());
        assert_eq!(split.alloc(OperatorId(1)).key_classes, 2);
        assert_eq!(split.to_string(), "{op0:2, op1:4×2}");
    }

    #[test]
    fn default_axes_compare_equal_across_representations() {
        let plain = Deployment::from_map([(OperatorId(0), 2)].into());
        let mut explicit = plain.clone();
        // Setting defaults explicitly must not make the plans unequal.
        explicit.set_key_classes(OperatorId(0), 1);
        explicit.set_state_budget(OperatorId(0), f64::INFINITY);
        assert_eq!(plain, explicit);
        assert!(!plain.classes_differ(&explicit));
        // A split set and then reverted is the default again.
        explicit.set_key_classes(OperatorId(0), 3);
        assert_ne!(plain, explicit);
        explicit.set_key_classes(OperatorId(0), 1);
        assert_eq!(plain, explicit);
    }

    #[test]
    fn state_budget_round_trips_and_resets() {
        let mut d = Deployment::from_map([(OperatorId(0), 2)].into());
        d.set_state_budget(OperatorId(0), 1e9);
        assert_eq!(d.state_budget(OperatorId(0)), 1e9);
        assert!(d.is_multi_dim());
        let other = Deployment::from_map([(OperatorId(0), 2)].into());
        assert_ne!(d, other);
        d.reset(1);
        assert_eq!(d.state_budget(OperatorId(0)), f64::INFINITY);
        assert!(!d.is_multi_dim());
    }

    #[test]
    fn set_alloc_round_trips() {
        let mut d = Deployment::with_len(2);
        let alloc = ResourceAlloc {
            parallelism: 6,
            key_classes: 3,
            state_budget: 5e8,
        };
        d.set_alloc(OperatorId(1), alloc);
        assert_eq!(d.alloc(OperatorId(1)), alloc);
        assert_eq!(d.parallelism(OperatorId(1)), 6);
    }
}
