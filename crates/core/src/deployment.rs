//! Physical deployments: the parallelism assigned to each logical operator.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};

/// A physical execution plan: number of instances per logical operator.
///
/// This is the quantity DS2 controls. A deployment is valid for a graph when
/// it assigns at least one instance to every operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    parallelism: BTreeMap<OperatorId, usize>,
}

impl Deployment {
    /// Creates a deployment assigning `p` instances to every operator.
    pub fn uniform(graph: &LogicalGraph, p: usize) -> Self {
        Self {
            parallelism: graph.operators().map(|op| (op, p.max(1))).collect(),
        }
    }

    /// Creates a deployment from explicit per-operator parallelism.
    pub fn from_map(parallelism: BTreeMap<OperatorId, usize>) -> Self {
        Self { parallelism }
    }

    /// Validates that every operator of `graph` has at least one instance.
    pub fn validate(&self, graph: &LogicalGraph) -> Result<(), Ds2Error> {
        for op in graph.operators() {
            match self.parallelism.get(&op) {
                None => {
                    return Err(Ds2Error::InvalidDeployment(format!(
                        "no parallelism assigned to {op} ({})",
                        graph.name(op)
                    )))
                }
                Some(0) => {
                    return Err(Ds2Error::InvalidDeployment(format!(
                        "{op} ({}) assigned zero instances",
                        graph.name(op)
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Parallelism of one operator (0 if the operator is unknown).
    pub fn parallelism(&self, op: OperatorId) -> usize {
        self.parallelism.get(&op).copied().unwrap_or(0)
    }

    /// Sets the parallelism of one operator.
    pub fn set(&mut self, op: OperatorId, p: usize) {
        self.parallelism.insert(op, p);
    }

    /// Iterates over `(operator, parallelism)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OperatorId, usize)> + '_ {
        self.parallelism.iter().map(|(&op, &p)| (op, p))
    }

    /// Total number of instances across all operators.
    pub fn total_instances(&self) -> usize {
        self.parallelism.values().sum()
    }

    /// The underlying map.
    pub fn as_map(&self) -> &BTreeMap<OperatorId, usize> {
        &self.parallelism
    }

    /// Largest absolute per-operator parallelism change between two plans.
    pub fn max_delta(&self, other: &Deployment) -> usize {
        let mut delta = 0usize;
        for (&op, &p) in &self.parallelism {
            let q = other.parallelism(op);
            delta = delta.max(p.abs_diff(q));
        }
        for (&op, &q) in &other.parallelism {
            if !self.parallelism.contains_key(&op) {
                delta = delta.max(q);
            }
        }
        delta
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (op, p)) in self.parallelism.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}:{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph() -> LogicalGraph {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        b.build().unwrap()
    }

    #[test]
    fn uniform_assigns_everyone() {
        let g = graph();
        let d = Deployment::uniform(&g, 4);
        assert_eq!(d.parallelism(OperatorId(0)), 4);
        assert_eq!(d.parallelism(OperatorId(1)), 4);
        assert_eq!(d.total_instances(), 8);
        assert!(d.validate(&g).is_ok());
    }

    #[test]
    fn uniform_clamps_zero_to_one() {
        let g = graph();
        let d = Deployment::uniform(&g, 0);
        assert_eq!(d.parallelism(OperatorId(0)), 1);
    }

    #[test]
    fn validate_rejects_missing_and_zero() {
        let g = graph();
        let d = Deployment::from_map([(OperatorId(0), 1)].into());
        assert!(d.validate(&g).is_err());
        let d = Deployment::from_map([(OperatorId(0), 1), (OperatorId(1), 0)].into());
        assert!(d.validate(&g).is_err());
    }

    #[test]
    fn max_delta_is_symmetric() {
        let a = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 10)].into());
        let b = Deployment::from_map([(OperatorId(0), 5), (OperatorId(1), 7)].into());
        assert_eq!(a.max_delta(&b), 3);
        assert_eq!(b.max_delta(&a), 3);
    }

    #[test]
    fn display_lists_assignments() {
        let d = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 3)].into());
        assert_eq!(d.to_string(), "{op0:2, op1:3}");
    }
}
