//! Physical deployments: the parallelism assigned to each logical operator.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};

/// A physical execution plan: number of instances per logical operator.
///
/// This is the quantity DS2 controls. A deployment is valid for a graph when
/// it assigns at least one instance to every operator.
///
/// Storage is a dense `Vec<usize>` indexed by [`OperatorId::index`] — a
/// parallelism of `0` means "unassigned" (operators never legally run zero
/// instances), so lookups on the policy/simulator hot paths are plain index
/// arithmetic instead of `BTreeMap` pointer chasing.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    parallelism: Vec<usize>,
}

impl Deployment {
    /// Creates a deployment assigning `p` instances to every operator.
    pub fn uniform(graph: &LogicalGraph, p: usize) -> Self {
        Self {
            parallelism: vec![p.max(1); graph.len()],
        }
    }

    /// Creates an empty deployment with `n` zeroed (unassigned) slots.
    pub fn with_len(n: usize) -> Self {
        Self {
            parallelism: vec![0; n],
        }
    }

    /// Creates a deployment from explicit per-operator parallelism.
    pub fn from_map(parallelism: BTreeMap<OperatorId, usize>) -> Self {
        let n = parallelism.keys().last().map_or(0, |op| op.index() + 1);
        let mut d = Self::with_len(n);
        for (op, p) in parallelism {
            d.set(op, p);
        }
        d
    }

    /// Validates that every operator of `graph` has at least one instance.
    pub fn validate(&self, graph: &LogicalGraph) -> Result<(), Ds2Error> {
        for op in graph.operators() {
            if self.parallelism(op) == 0 {
                return Err(Ds2Error::InvalidDeployment(format!(
                    "{op} ({}) has no instances assigned",
                    graph.name(op)
                )));
            }
        }
        Ok(())
    }

    /// Parallelism of one operator (0 if the operator is unknown).
    #[inline]
    pub fn parallelism(&self, op: OperatorId) -> usize {
        self.parallelism.get(op.index()).copied().unwrap_or(0)
    }

    /// Sets the parallelism of one operator.
    pub fn set(&mut self, op: OperatorId, p: usize) {
        let i = op.index();
        if i >= self.parallelism.len() {
            self.parallelism.resize(i + 1, 0);
        }
        self.parallelism[i] = p;
    }

    /// Resets every assignment to "unassigned" and pins the slot count to
    /// `n`, reusing the existing allocation — the [`PolicyWorkspace`]
    /// clearing path.
    ///
    /// [`PolicyWorkspace`]: crate::policy::PolicyWorkspace
    pub fn reset(&mut self, n: usize) {
        self.parallelism.clear();
        self.parallelism.resize(n, 0);
    }

    /// Iterates over assigned `(operator, parallelism)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OperatorId, usize)> + '_ {
        self.parallelism
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0)
            .map(|(i, &p)| (OperatorId(i), p))
    }

    /// Total number of instances across all operators.
    pub fn total_instances(&self) -> usize {
        self.parallelism.iter().sum()
    }

    /// The per-operator parallelism as an ordered map (assigned operators
    /// only). Allocates; intended for reporting, not hot paths.
    pub fn to_map(&self) -> BTreeMap<OperatorId, usize> {
        self.iter().collect()
    }

    /// Largest absolute per-operator parallelism change between two plans.
    pub fn max_delta(&self, other: &Deployment) -> usize {
        let n = self.parallelism.len().max(other.parallelism.len());
        let mut delta = 0usize;
        for i in 0..n {
            let p = self.parallelism.get(i).copied().unwrap_or(0);
            let q = other.parallelism.get(i).copied().unwrap_or(0);
            delta = delta.max(p.abs_diff(q));
        }
        delta
    }
}

/// Two deployments are equal when they assign the same parallelism to the
/// same operators — trailing unassigned slots are ignored, so plans built
/// for the same graph through different code paths compare equal.
impl PartialEq for Deployment {
    fn eq(&self, other: &Self) -> bool {
        let n = self.parallelism.len().max(other.parallelism.len());
        (0..n).all(|i| {
            self.parallelism.get(i).copied().unwrap_or(0)
                == other.parallelism.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Deployment {}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (op, p)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}:{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph() -> LogicalGraph {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        b.build().unwrap()
    }

    #[test]
    fn uniform_assigns_everyone() {
        let g = graph();
        let d = Deployment::uniform(&g, 4);
        assert_eq!(d.parallelism(OperatorId(0)), 4);
        assert_eq!(d.parallelism(OperatorId(1)), 4);
        assert_eq!(d.total_instances(), 8);
        assert!(d.validate(&g).is_ok());
    }

    #[test]
    fn uniform_clamps_zero_to_one() {
        let g = graph();
        let d = Deployment::uniform(&g, 0);
        assert_eq!(d.parallelism(OperatorId(0)), 1);
    }

    #[test]
    fn validate_rejects_missing_and_zero() {
        let g = graph();
        let d = Deployment::from_map([(OperatorId(0), 1)].into());
        assert!(d.validate(&g).is_err());
        let d = Deployment::from_map([(OperatorId(0), 1), (OperatorId(1), 0)].into());
        assert!(d.validate(&g).is_err());
    }

    #[test]
    fn max_delta_is_symmetric() {
        let a = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 10)].into());
        let b = Deployment::from_map([(OperatorId(0), 5), (OperatorId(1), 7)].into());
        assert_eq!(a.max_delta(&b), 3);
        assert_eq!(b.max_delta(&a), 3);
    }

    #[test]
    fn max_delta_counts_unassigned_as_zero() {
        let a = Deployment::from_map([(OperatorId(0), 2)].into());
        let b = Deployment::from_map([(OperatorId(0), 2), (OperatorId(2), 6)].into());
        assert_eq!(a.max_delta(&b), 6);
        assert_eq!(b.max_delta(&a), 6);
    }

    #[test]
    fn equality_ignores_trailing_unassigned_slots() {
        let mut a = Deployment::with_len(8);
        a.set(OperatorId(0), 2);
        let b = Deployment::from_map([(OperatorId(0), 2)].into());
        assert_eq!(a, b);
        a.set(OperatorId(5), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_clears_and_pins_len() {
        let mut d = Deployment::from_map([(OperatorId(0), 2), (OperatorId(3), 4)].into());
        d.reset(2);
        assert_eq!(d.parallelism(OperatorId(0)), 0);
        assert_eq!(d.parallelism(OperatorId(3)), 0);
        assert_eq!(d.total_instances(), 0);
        d.set(OperatorId(1), 3);
        assert_eq!(d.to_map(), [(OperatorId(1), 3)].into());
    }

    #[test]
    fn display_lists_assignments() {
        let d = Deployment::from_map([(OperatorId(0), 2), (OperatorId(1), 3)].into());
        assert_eq!(d.to_string(), "{op0:2, op1:3}");
    }
}
