//! The Scaling Manager (paper §4.2): wraps the DS2 policy with the
//! operational machinery real deployments need.
//!
//! The manager implements the four §4.2.1 knobs — policy interval, warm-up
//! time, activation time, and target-rate ratio — plus the §4.2.2
//! practicalities: suppression of minor changes, rollback on post-deploy
//! degradation, and a decision limit that guarantees convergence under data
//! skew (§4.2.3).
//!
//! The per-window path is allocation-conscious: the manager owns one
//! [`Ds2Policy`] and one [`PolicyWorkspace`] for its whole lifetime, passes
//! the learned requirement boost as an *argument* to
//! [`Ds2Policy::evaluate_boosted_into`] (no per-decision config cloning),
//! and keeps its offered-rate and activation-combining scratch in dense
//! reusable buffers.

use crate::controller::{ControllerFaultStats, ControllerVerdict, ScalingController};
use crate::deployment::Deployment;
use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};
use crate::opmap::OpMap;
use crate::policy::{Ds2Policy, PolicyConfig, PolicyWorkspace};
use crate::snapshot::MetricsSnapshot;

/// How several consecutive policy decisions are combined before acting
/// (§4.2.1 "Activation time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationCombine {
    /// Per-operator maximum across the pending decisions: robust for
    /// operators with bursty processing rates such as tumbling windows.
    Max,
    /// Per-operator median across the pending decisions: robust to outlier
    /// intervals.
    Median,
}

/// Configuration of the [`ScalingManager`].
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Policy evaluation cadence in nanoseconds. The manager itself is
    /// driven externally; this value documents the cadence and is used to
    /// derive defaults elsewhere (harness, metrics windows).
    pub policy_interval_ns: u64,
    /// Number of consecutive policy intervals ignored after a scaling action
    /// (and at startup), while rate measurements stabilise.
    pub warmup_intervals: u32,
    /// Number of consecutive policy decisions combined before a scaling
    /// command is issued. `1` applies each decision immediately.
    pub activation_intervals: u32,
    /// How pending decisions are combined when `activation_intervals > 1`.
    pub activation_combine: ActivationCombine,
    /// Maximum allowed shortfall of achieved vs. target source rate, as a
    /// fraction in `(0, 1]`. With `1.0` the achieved rate must match the
    /// target exactly (up to `ratio_tolerance`); when it does not and the
    /// policy sees no further scaling need, the manager boosts requirements
    /// by `target/achieved` — compensating for uncaptured overheads.
    pub target_rate_ratio: f64,
    /// Slack applied to `target_rate_ratio` comparisons (default 2%), absorbing
    /// measurement noise.
    pub ratio_tolerance: f64,
    /// Per-operator parallelism changes up to this magnitude are ignored
    /// *while the job keeps up with its target rate* (noise suppression,
    /// §4.2.2). Changes are never suppressed when the target is missed.
    pub min_change: usize,
    /// Hard cap on the number of scaling actions; `None` for unlimited.
    /// §4.2.3 relies on this to guarantee convergence under skew.
    pub max_decisions: Option<u32>,
    /// Roll back to the previous configuration if the achieved source-rate
    /// ratio degrades by more than `degradation_tolerance` after a deploy.
    pub rollback_on_degradation: bool,
    /// Fractional degradation of the achieved ratio that triggers rollback.
    pub degradation_tolerance: f64,
    /// Intervals the rolled-back-from plan stays suppressed after a
    /// rollback. The ban must expire: when a rollback was actually caused
    /// by an exogenous load change (a spike arriving mid-deploy), the
    /// banned plan is the *correct* one and suppressing it forever would
    /// pin the job under-provisioned. Consecutive rollbacks escalate the
    /// ban linearly (2x, 3x, …) so a plan that degrades performance under
    /// *stable* load is retried ever more rarely instead of cycling
    /// redeploy/degrade/rollback at a fixed cadence.
    pub rollback_ban_intervals: u32,
    /// Fractional change of the measured offered rate beyond which the
    /// pre/post-deploy ratio comparison is considered meaningless and the
    /// rollback check is skipped (the degradation is explained by the load,
    /// not the deploy).
    pub rollback_load_shift_tolerance: f64,
    /// Per-instance state budget in bytes, the state axis of the resource
    /// model. When finite, operators whose reported state exceeds the
    /// budget get a parallelism *floor* of `ceil(total_state / budget)` —
    /// enough instances that each holds at most a budget's worth of state —
    /// layered on top of the rate-driven Eq. 7 prescription. `∞` (default)
    /// disables the axis entirely.
    pub state_budget_per_instance: f64,
    /// Hardening: validate each snapshot against the graph and current
    /// deployment, repairing operators with missing or implausible slots
    /// from the last fully-valid snapshot. `false` (default) trusts the
    /// snapshot as-is, which is the paper's clean-instrumentation setting.
    pub validate_snapshots: bool,
    /// Maximum age, in policy intervals, of the last-good snapshot used for
    /// repairs when `validate_snapshots` is on. Beyond this window a broken
    /// operator stays broken and the policy defers on it instead.
    pub max_stale_windows: u32,
    /// Hardening: replace per-instance samples whose true processing rate is
    /// further than `outlier_factor`× from the operator median with the
    /// median instance's sample (stragglers, noisy counters).
    pub outlier_rejection: bool,
    /// Multiplicative distance from the per-operator median rate beyond
    /// which an instance sample counts as an outlier.
    pub outlier_factor: f64,
    /// Hardening: policy intervals to wait for a deploy acknowledgement
    /// before verifying the live deployment and re-issuing the rescale.
    /// `0` (default) waits forever — the vanilla manager's behaviour, which
    /// wedges permanently when an acknowledgement is lost.
    pub rescale_timeout_intervals: u32,
    /// Retry cap for re-issued rescales. Once exhausted the manager
    /// abandons the plan, holds the current deployment, and bans the
    /// abandoned plan with an escalating cool-off.
    pub max_rescale_retries: u32,
    /// Underlying policy knobs (min/max parallelism, source scaling).
    pub policy: PolicyConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            policy_interval_ns: 10_000_000_000, // 10 s, the Flink setting in §5.3
            warmup_intervals: 0,
            activation_intervals: 1,
            activation_combine: ActivationCombine::Median,
            target_rate_ratio: 1.0,
            ratio_tolerance: 0.02,
            min_change: 2,
            max_decisions: None,
            rollback_on_degradation: true,
            degradation_tolerance: 0.1,
            rollback_ban_intervals: 3,
            rollback_load_shift_tolerance: 0.1,
            state_budget_per_instance: f64::INFINITY,
            validate_snapshots: false,
            max_stale_windows: 3,
            outlier_rejection: false,
            outlier_factor: 3.0,
            rescale_timeout_intervals: 0,
            max_rescale_retries: 3,
            policy: PolicyConfig::default(),
        }
    }
}

/// One entry of the manager's decision log, for observability and tests.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// Time of the evaluation in nanoseconds.
    pub at_ns: u64,
    /// The plan the policy produced (before activation combining), if it
    /// produced one.
    pub plan: Option<Deployment>,
    /// Achieved/offered source-rate ratio at evaluation time.
    pub achieved_ratio: Option<f64>,
    /// Requirement boost in effect for this evaluation.
    pub boost: f64,
    /// Whether a scaling command was issued this interval.
    pub acted: bool,
    /// Typed reason when the interval deferred, vetoed, retried, or gave
    /// up instead of evaluating cleanly.
    pub error: Option<Ds2Error>,
}

/// The DS2 Scaling Manager: a [`ScalingController`] combining the policy of
/// §3.2 with the deployment pragmatics of §4.2.
#[derive(Debug)]
pub struct ScalingManager {
    graph: LogicalGraph,
    config: ManagerConfig,
    /// The policy, built once from `config.policy`; the learned boost is
    /// passed per evaluation instead of cloning a tweaked config.
    policy: Ds2Policy,
    /// Dense evaluation scratch, reused every window (and reusable across
    /// manager instances via [`ScalingManager::with_workspace`]).
    workspace: PolicyWorkspace,
    warmup_remaining: u32,
    pending: Vec<Deployment>,
    decisions_made: u32,
    awaiting_deploy: bool,
    /// Deployment active before the most recent rescale, for rollback.
    previous_deployment: Option<Deployment>,
    /// Achieved ratio observed before the most recent rescale.
    pre_deploy_ratio: Option<f64>,
    /// Per-source offered rates observed before the most recent rescale;
    /// rollback only makes sense while the load is still comparable
    /// (compared per source — opposite shifts must not cancel).
    pre_deploy_offered: Option<OpMap<f64>>,
    /// This window's per-source offered rates (dense scratch).
    offered_scratch: OpMap<f64>,
    /// Per-operator sorting scratch for activation combining.
    combine_values: Vec<usize>,
    /// Set after a rollback so the manager does not immediately re-propose
    /// the configuration it just rolled back from.
    rolled_back_from: Option<Deployment>,
    /// Intervals left before the `rolled_back_from` ban expires.
    rollback_ban_remaining: u32,
    /// Rollbacks since the last deploy that survived, scaling the ban.
    consecutive_rollbacks: u32,
    /// Requirement boost learned from past target-rate-ratio corrections
    /// (§4.2.1). Uncaptured overheads do not disappear once compensated:
    /// without persistence, the next healthy evaluation — still blind to
    /// them — would undo the correction and the deployment would flap
    /// between the raw and the corrected plan.
    sticky_boost: f64,
    history: Vec<DecisionRecord>,
    consecutive_stable: u32,
    /// Last snapshot that validated cleanly, for hardened repairs.
    last_good: MetricsSnapshot,
    /// Policy intervals since `last_good` was captured; `u32::MAX` until a
    /// first valid snapshot is seen.
    last_good_age: u32,
    /// Sanitized copy of the incoming snapshot (hardened path scratch).
    sanitize_buf: MetricsSnapshot,
    /// `(rate, instance index)` sorting scratch for outlier rejection.
    rate_scratch: Vec<(f64, usize)>,
    /// The plan whose deploy acknowledgement is outstanding (hardened).
    requested_plan: Option<Deployment>,
    /// Intervals spent waiting for the outstanding acknowledgement.
    awaiting_intervals: u32,
    /// Retries already spent on the outstanding plan.
    retries_used: u32,
    /// Intervals left before the next retry may fire (exponential backoff).
    backoff_remaining: u32,
    /// Consecutive abandoned rescales, scaling the post-give-up ban.
    failed_deploy_streak: u32,
    fault_stats: ControllerFaultStats,
}

impl ScalingManager {
    /// Creates a manager for `graph` with the given configuration.
    pub fn new(graph: LogicalGraph, config: ManagerConfig) -> Self {
        Self::with_workspace(graph, config, PolicyWorkspace::new())
    }

    /// Creates a manager that evaluates into a caller-provided (typically
    /// recycled) [`PolicyWorkspace`]; recover it with
    /// [`ScalingManager::take_workspace`] when the manager retires.
    pub fn with_workspace(
        graph: LogicalGraph,
        config: ManagerConfig,
        workspace: PolicyWorkspace,
    ) -> Self {
        let warmup = config.warmup_intervals;
        let policy = Ds2Policy::with_config(config.policy);
        Self {
            graph,
            config,
            policy,
            workspace,
            warmup_remaining: warmup,
            pending: Vec::new(),
            decisions_made: 0,
            awaiting_deploy: false,
            previous_deployment: None,
            pre_deploy_ratio: None,
            pre_deploy_offered: None,
            offered_scratch: OpMap::new(),
            combine_values: Vec::new(),
            rolled_back_from: None,
            rollback_ban_remaining: 0,
            consecutive_rollbacks: 0,
            sticky_boost: 1.0,
            history: Vec::new(),
            consecutive_stable: 0,
            last_good: MetricsSnapshot::new(),
            last_good_age: u32::MAX,
            sanitize_buf: MetricsSnapshot::new(),
            rate_scratch: Vec::new(),
            requested_plan: None,
            awaiting_intervals: 0,
            retries_used: 0,
            backoff_remaining: 0,
            failed_deploy_streak: 0,
            fault_stats: ControllerFaultStats::default(),
        }
    }

    /// Creates a manager with default configuration.
    pub fn with_defaults(graph: LogicalGraph) -> Self {
        Self::new(graph, ManagerConfig::default())
    }

    /// Extracts the evaluation workspace (leaving a fresh one behind), so a
    /// pooled workspace can outlive this manager.
    pub fn take_workspace(&mut self) -> PolicyWorkspace {
        std::mem::take(&mut self.workspace)
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Decision log (one entry per `on_metrics` call that got past warm-up).
    pub fn history(&self) -> &[DecisionRecord] {
        &self.history
    }

    /// Number of scaling commands issued so far.
    pub fn decisions_made(&self) -> u32 {
        self.decisions_made
    }

    /// `true` once the policy has proposed the current deployment (or a
    /// change within `min_change`) for `activation_intervals` consecutive
    /// evaluations — the convergence criterion of §5.4.
    pub fn is_converged(&self) -> bool {
        self.consecutive_stable >= self.config.activation_intervals.max(1)
    }

    /// Minimum achieved/offered ratio across sources, from instrumentation.
    ///
    /// Clamped to 1.0: a window can measure above the offered rate when the
    /// source drains a durable backlog or spans a rate change, and treating
    /// that as "200% achieved" would poison degradation detection.
    fn achieved_ratio(&self, snapshot: &MetricsSnapshot) -> Option<f64> {
        let mut min_ratio: Option<f64> = None;
        for &src in self.graph.sources() {
            let offered = snapshot.source_rate(src)?;
            if offered <= 0.0 {
                continue;
            }
            let achieved = snapshot.observed_source_rate(src)?;
            let r = (achieved / offered).min(1.0);
            min_ratio = Some(min_ratio.map_or(r, |m: f64| m.min(r)));
        }
        min_ratio
    }

    /// Fills the dense offered-rate scratch from instrumentation; returns
    /// `false` when no source reported.
    fn fill_offered_scratch(&mut self, snapshot: &MetricsSnapshot) -> bool {
        self.offered_scratch.clear();
        let mut any = false;
        for &src in self.graph.sources() {
            if let Some(offered) = snapshot.source_rate(src) {
                self.offered_scratch.insert(src, offered);
                any = true;
            }
        }
        any
    }

    /// Combines pending decisions per `activation_combine`.
    ///
    /// # Errors
    ///
    /// Returns [`Ds2Error::InvalidMetrics`] if there are no pending
    /// decisions to combine — a malformed-input condition that must defer
    /// the interval, never panic the controller.
    fn combine_pending(&mut self) -> Result<Deployment, Ds2Error> {
        let mut combined = Deployment::with_len(self.graph.len());
        let mut values = std::mem::take(&mut self.combine_values);
        let mut error = None;
        for op in self.graph.operators() {
            values.clear();
            values.extend(self.pending.iter().map(|d| d.parallelism(op)));
            values.sort_unstable();
            let v = match (self.config.activation_combine, values.last()) {
                (ActivationCombine::Max, Some(&max)) => max,
                // Upper median: for an even count prefer the larger value,
                // erring towards keeping up rather than under-provisioning.
                (ActivationCombine::Median, Some(_)) => values[values.len() / 2],
                (_, None) => {
                    error = Some(Ds2Error::InvalidMetrics(format!(
                        "no pending decisions to combine for {op}"
                    )));
                    break;
                }
            };
            combined.set(op, v);
        }
        self.combine_values = values;
        match error {
            Some(e) => Err(e),
            None => Ok(combined),
        }
    }

    /// Returns whether one operator's reported slots are plausible: present,
    /// matching the deployed parallelism, individually valid, and (for
    /// sources) accompanied by a finite offered rate.
    fn slot_ok(snap: &MetricsSnapshot, graph: &LogicalGraph, op: OperatorId, p: usize) -> bool {
        let Some(m) = snap.operator(op) else {
            return false;
        };
        if m.instances.len() != p || m.instances.iter().any(|i| i.validate().is_err()) {
            return false;
        }
        if graph.is_source(op) {
            return matches!(snap.source_rate(op), Some(r) if r.is_finite() && r >= 0.0);
        }
        true
    }

    /// Copies `snapshot` into `buf`, repairing implausible operators from
    /// the last-good snapshot (bounded staleness) and rejecting per-instance
    /// rate outliers.
    ///
    /// # Errors
    ///
    /// Returns [`Ds2Error::DegradedTelemetry`] when a majority of operators
    /// is invalid before repair — such a window must be held, not acted on.
    fn sanitize_snapshot(
        &mut self,
        buf: &mut MetricsSnapshot,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> Result<(), Ds2Error> {
        buf.clone_from(snapshot);
        if self.config.validate_snapshots {
            let mut invalid = 0usize;
            let mut repaired_any = false;
            let total = self.graph.len();
            let fresh_enough = self.last_good_age != u32::MAX
                && self.last_good_age <= self.config.max_stale_windows;
            for op in self.graph.operators() {
                let p = current.parallelism(op);
                if Self::slot_ok(buf, &self.graph, op, p) {
                    continue;
                }
                invalid += 1;
                if !fresh_enough {
                    continue;
                }
                // Fall back to the operator's last-good slots, but only when
                // they still describe the deployed parallelism.
                if let Some(good) = self.last_good.operator(op) {
                    if good.instances.len() == p
                        && good.instances.iter().all(|i| i.validate().is_ok())
                    {
                        buf.insert_instances(op, good.instances.clone());
                        if self.graph.is_source(op) {
                            if let Some(r) = self.last_good.source_rate(op) {
                                if r.is_finite() && r >= 0.0 {
                                    buf.set_source_rate(op, r);
                                }
                            }
                        }
                        repaired_any = true;
                    }
                }
            }
            if invalid == 0 {
                self.last_good.clone_from(snapshot);
                self.last_good_age = 0;
            } else if self.last_good_age != u32::MAX {
                self.last_good_age = self.last_good_age.saturating_add(1);
            }
            if repaired_any {
                self.fault_stats.repaired_windows += 1;
            }
            if invalid * 2 > total {
                return Err(Ds2Error::DegradedTelemetry { invalid, total });
            }
        }
        if self.config.outlier_rejection {
            self.reject_outliers(buf);
        }
        Ok(())
    }

    /// Replaces instance samples whose true processing rate is further than
    /// `outlier_factor`× from the operator median with the median instance's
    /// sample. This extends the §4.2.1 median idea from the activation axis
    /// to the instance axis: one straggler with inflated useful time (or a
    /// noisy counter) otherwise drags the whole aggregate capacity estimate.
    fn reject_outliers(&mut self, buf: &mut MetricsSnapshot) {
        let factor = self.config.outlier_factor.max(1.0);
        let mut scratch = std::mem::take(&mut self.rate_scratch);
        for op in self.graph.operators() {
            let Some(m) = buf.operator_mut(op) else {
                continue;
            };
            if m.instances.len() < 3 {
                continue;
            }
            scratch.clear();
            for (k, i) in m.instances.iter().enumerate() {
                if let Some(r) = i.true_processing_rate() {
                    if r.is_finite() && r > 0.0 {
                        scratch.push((r, k));
                    }
                }
            }
            if scratch.len() < 3 {
                scratch.clear();
                continue;
            }
            scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let (median_rate, median_idx) = scratch[scratch.len() / 2];
            let median_sample = m.instances[median_idx];
            for &(r, k) in scratch.iter() {
                if r > median_rate * factor || r * factor < median_rate {
                    m.instances[k] = median_sample;
                    self.fault_stats.outliers_rejected += 1;
                }
            }
            scratch.clear();
        }
        self.rate_scratch = scratch;
    }

    /// Handles an interval that arrives while a deploy acknowledgement is
    /// outstanding. Vanilla behaviour (timeout disabled) is to wait forever;
    /// hardened behaviour verifies the live deployment after the timeout and
    /// re-issues the plan with exponential backoff, up to the retry cap.
    fn handle_awaiting(&mut self, now_ns: u64, current: &Deployment) -> ControllerVerdict {
        let timeout = self.config.rescale_timeout_intervals;
        if timeout == 0 {
            return ControllerVerdict::NoAction;
        }
        self.awaiting_intervals = self.awaiting_intervals.saturating_add(1);
        if self.awaiting_intervals < timeout {
            return ControllerVerdict::NoAction;
        }
        let Some(requested) = self.requested_plan.clone() else {
            // Nothing tracked for this wait (cannot normally happen):
            // release the latch rather than wedge.
            self.awaiting_deploy = false;
            self.awaiting_intervals = 0;
            return ControllerVerdict::NoAction;
        };
        if *current == requested {
            // The rescale landed but its acknowledgement was lost: verify
            // succeeded, acknowledge it ourselves.
            self.on_deployed(now_ns, &requested);
            return ControllerVerdict::NoAction;
        }
        if self.backoff_remaining > 0 {
            self.backoff_remaining -= 1;
            return ControllerVerdict::NoAction;
        }
        if self.retries_used < self.config.max_rescale_retries {
            self.retries_used += 1;
            self.fault_stats.retries += 1;
            // 1, 2, 4, ... intervals between successive retries.
            self.backoff_remaining = 1u32 << (self.retries_used - 1).min(16);
            self.history.push(DecisionRecord {
                at_ns: now_ns,
                plan: Some(requested.clone()),
                achieved_ratio: None,
                boost: 1.0,
                acted: true,
                error: Some(Ds2Error::RescaleTimedOut(format!(
                    "deploy unacknowledged after {} intervals (retry {} of {})",
                    self.awaiting_intervals, self.retries_used, self.config.max_rescale_retries
                ))),
            });
            return ControllerVerdict::Rescale(requested);
        }
        // Retry cap exhausted: abandon the plan, hold the deployment that is
        // actually running, and ban the abandoned plan with an escalating
        // cool-off so the next evaluation does not restart the cycle
        // immediately.
        let retries = self.retries_used;
        self.fault_stats.abandoned_rescales += 1;
        self.failed_deploy_streak = self.failed_deploy_streak.saturating_add(1);
        self.rollback_ban_remaining = self
            .config
            .rollback_ban_intervals
            .max(1)
            .saturating_mul(self.failed_deploy_streak);
        self.rolled_back_from = Some(requested);
        self.requested_plan = None;
        self.awaiting_deploy = false;
        self.awaiting_intervals = 0;
        self.retries_used = 0;
        self.backoff_remaining = 0;
        self.previous_deployment = None;
        self.pre_deploy_ratio = None;
        self.pre_deploy_offered = None;
        self.history.push(DecisionRecord {
            at_ns: now_ns,
            plan: None,
            achieved_ratio: None,
            boost: 1.0,
            acted: false,
            error: Some(Ds2Error::RescaleRetriesExhausted { retries }),
        });
        ControllerVerdict::NoAction
    }

    /// Folds the non-parallelism axes into a freshly combined plan.
    ///
    /// [`ScalingManager::combine_pending`] only writes the parallelism
    /// vector, so first carry the current class splits and budgets forward
    /// (a rescale must not silently merge a hot class back together). Then
    /// turn this window's [`SplitHint`]s into class-split deployments —
    /// multiplying the operator's current split, capped at its parallelism
    /// and at 64 classes — and raise any stateful operator's parallelism to
    /// the floor its reported state demands under the configured budget.
    ///
    /// With split detection off and no budget configured this reduces to
    /// copying defaults onto defaults: the combined plan is bitwise what the
    /// parallelism-only manager produced.
    ///
    /// Returns whether the state floor pushed some operator above its
    /// *current* parallelism — a budget violation in the running deployment,
    /// which must never be suppressed as a minor change.
    ///
    /// [`SplitHint`]: crate::policy::SplitHint
    fn apply_multi_dim(
        &self,
        combined: &mut Deployment,
        current: &Deployment,
        snapshot: &MetricsSnapshot,
    ) -> bool {
        for op in self.graph.operators() {
            let mut alloc = current.alloc(op);
            alloc.parallelism = combined.parallelism(op);
            combined.set_alloc(op, alloc);
        }
        for hint in &self.workspace.output().splits {
            let p = combined.parallelism(hint.op).max(1);
            let cur = current.key_classes(hint.op);
            let new = cur.saturating_mul(hint.classes).min(p).min(64);
            if new > cur {
                combined.set_key_classes(hint.op, new);
            }
        }
        let mut floor_binding = false;
        let budget = self.config.state_budget_per_instance;
        if budget.is_finite() && budget > 0.0 {
            for op in self.graph.operators() {
                if self.graph.is_source(op) {
                    continue;
                }
                if let Some(per_instance) = snapshot.state_bytes(op) {
                    let total = per_instance * current.parallelism(op).max(1) as f64;
                    let floor = ((total / budget) - 1e-9).ceil().max(1.0) as usize;
                    let floor = match self.config.policy.max_parallelism {
                        Some(max) => floor.min(max),
                        None => floor,
                    };
                    if floor > combined.parallelism(op) {
                        combined.set(op, floor);
                    }
                    if floor > current.parallelism(op) {
                        floor_binding = true;
                    }
                    combined.set_state_budget(op, budget);
                }
            }
        }
        floor_binding
    }
}

impl ScalingController for ScalingManager {
    fn name(&self) -> &str {
        "ds2"
    }

    fn on_metrics(
        &mut self,
        now_ns: u64,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> ControllerVerdict {
        if self.awaiting_deploy {
            return self.handle_awaiting(now_ns, current);
        }
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            return ControllerVerdict::NoAction;
        }
        // Hardened telemetry path: sanitize into the scratch snapshot and
        // decide on that; vanilla decides on the raw snapshot directly.
        let verdict = if self.config.validate_snapshots || self.config.outlier_rejection {
            let mut buf = std::mem::take(&mut self.sanitize_buf);
            let verdict = match self.sanitize_snapshot(&mut buf, snapshot, current) {
                Ok(()) => self.decide(now_ns, &buf, current),
                Err(e) => {
                    // Majority-invalid telemetry: hold the last-good
                    // deployment, never act on this window.
                    self.fault_stats.vetoed_windows += 1;
                    self.history.push(DecisionRecord {
                        at_ns: now_ns,
                        plan: None,
                        achieved_ratio: None,
                        boost: 1.0,
                        acted: false,
                        error: Some(e),
                    });
                    ControllerVerdict::NoAction
                }
            };
            self.sanitize_buf = buf;
            verdict
        } else {
            self.decide(now_ns, snapshot, current)
        };
        if self.config.rescale_timeout_intervals > 0 {
            if let ControllerVerdict::Rescale(plan) = &verdict {
                self.requested_plan = Some(plan.clone());
                self.awaiting_intervals = 0;
                self.retries_used = 0;
                self.backoff_remaining = 0;
            }
        }
        verdict
    }

    fn on_deployed(&mut self, _now_ns: u64, deployment: &Deployment) {
        if self.config.rescale_timeout_intervals > 0 {
            if let Some(requested) = &self.requested_plan {
                if deployment != requested {
                    // Partial landing: something deployed, but not the plan
                    // that was asked for. Keep waiting; the timeout path
                    // verifies the live deployment and re-issues the plan.
                    self.awaiting_intervals = self
                        .awaiting_intervals
                        .max(self.config.rescale_timeout_intervals);
                    return;
                }
            }
            self.requested_plan = None;
            self.awaiting_intervals = 0;
            self.retries_used = 0;
            self.backoff_remaining = 0;
            self.failed_deploy_streak = 0;
        }
        self.awaiting_deploy = false;
        self.warmup_remaining = self.config.warmup_intervals;
        self.decisions_made += 1;
        self.pending.clear();
    }

    fn fault_stats(&self) -> ControllerFaultStats {
        self.fault_stats
    }
}

impl ScalingManager {
    /// One policy-interval decision on an (already sanitized) snapshot:
    /// rollback check, policy evaluation, target-rate-ratio boost,
    /// activation combining, and the significance gates of §4.2.2.
    fn decide(
        &mut self,
        now_ns: u64,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> ControllerVerdict {
        let achieved_ratio = self.achieved_ratio(snapshot);
        let have_offered = self.fill_offered_scratch(snapshot);

        // Expire the post-rollback suppression: the banned plan may be
        // exactly what a changed workload needs (see
        // `ManagerConfig::rollback_ban_intervals`).
        if self.rolled_back_from.is_some() {
            if self.rollback_ban_remaining == 0 {
                self.rolled_back_from = None;
            } else {
                self.rollback_ban_remaining -= 1;
            }
        }

        // Rollback check (§4.2.2): performance degraded after the last
        // deploy — return to the previous configuration. Only meaningful
        // while the offered load is comparable to the pre-deploy
        // measurement: a rate change between the two windows explains the
        // degradation exogenously, and rolling back would punish a correct
        // plan.
        if self.config.rollback_on_degradation {
            let load_shifted = match &self.pre_deploy_offered {
                Some(before) if have_offered => self.graph.sources().iter().any(|&src| {
                    match (before.get(src), self.offered_scratch.get(src)) {
                        (Some(&b), Some(&n)) => {
                            (n - b).abs() > self.config.rollback_load_shift_tolerance * b.max(1e-9)
                        }
                        // A source appearing or vanishing from the metrics
                        // is itself a load shift.
                        (b, n) => b.is_some() != n.is_some(),
                    }
                }),
                _ => false,
            };
            if load_shifted {
                self.previous_deployment = None;
                self.pre_deploy_ratio = None;
                self.pre_deploy_offered = None;
            } else if let (Some(prev), Some(pre), Some(post)) = (
                self.previous_deployment.clone(),
                self.pre_deploy_ratio,
                achieved_ratio,
            ) {
                if post < pre * (1.0 - self.config.degradation_tolerance) && prev != *current {
                    self.history.push(DecisionRecord {
                        at_ns: now_ns,
                        plan: Some(prev.clone()),
                        achieved_ratio,
                        boost: 1.0,
                        acted: true,
                        error: None,
                    });
                    self.rolled_back_from = Some(current.clone());
                    self.consecutive_rollbacks = self.consecutive_rollbacks.saturating_add(1);
                    self.rollback_ban_remaining = self
                        .config
                        .rollback_ban_intervals
                        .saturating_mul(self.consecutive_rollbacks);
                    // The rolled-back plan may have been a boost artefact;
                    // drop the learned correction and re-learn from scratch.
                    self.sticky_boost = 1.0;
                    self.previous_deployment = None;
                    self.pre_deploy_ratio = None;
                    self.pre_deploy_offered = None;
                    self.pending.clear();
                    self.awaiting_deploy = true;
                    return ControllerVerdict::Rescale(prev);
                }
            }
        }
        // A deploy that did not degrade performance clears rollback state
        // and forgives past rollbacks.
        if self.previous_deployment.take().is_some() {
            self.consecutive_rollbacks = 0;
        }

        // Evaluate the policy with the boost learned so far (1.0 until a
        // correction fires), passed as an argument — the config is never
        // cloned on this path.
        if let Err(e) = self.policy.evaluate_boosted_into(
            &self.graph,
            snapshot,
            current,
            self.sticky_boost,
            &mut self.workspace,
        ) {
            // Rates undefined this interval (e.g. an operator saw no
            // input yet): defer, as warm-up would, recording why.
            self.history.push(DecisionRecord {
                at_ns: now_ns,
                plan: None,
                achieved_ratio,
                boost: 1.0,
                acted: false,
                error: Some(e),
            });
            return ControllerVerdict::NoAction;
        }
        let mut boost = self.sticky_boost;

        // Target-rate-ratio correction (§4.2.1): the policy sees no need to
        // add capacity anywhere, yet the achieved source rate falls short of
        // the target — overheads invisible to instrumentation are consuming
        // capacity. Estimate the extra resources from the achieved/target
        // ratio, on top of what previous corrections already learned.
        if let Some(ratio) = achieved_ratio {
            let threshold = self.config.target_rate_ratio - self.config.ratio_tolerance;
            let no_increase = {
                let plan = &self.workspace.output().plan;
                self.graph
                    .operators()
                    .all(|op| plan.parallelism(op) <= current.parallelism(op))
            };
            if no_increase && ratio < threshold && ratio > 0.0 {
                boost = (self.sticky_boost * self.config.target_rate_ratio / ratio).min(4.0);
                // Cannot fail: the same inputs evaluated cleanly above and
                // the boost is finite and positive by construction. Restore
                // the unboosted output defensively if it ever does.
                if self
                    .policy
                    .evaluate_boosted_into(
                        &self.graph,
                        snapshot,
                        current,
                        boost,
                        &mut self.workspace,
                    )
                    .is_err()
                {
                    let _ = self.policy.evaluate_boosted_into(
                        &self.graph,
                        snapshot,
                        current,
                        self.sticky_boost,
                        &mut self.workspace,
                    );
                }
            }
        }

        let plan = self.workspace.output().plan.clone();
        self.pending.push(plan.clone());
        if self.pending.len() > self.config.activation_intervals.max(1) as usize {
            self.pending.remove(0);
        }

        let keeping_up = achieved_ratio
            .is_some_and(|r| r >= self.config.target_rate_ratio - self.config.ratio_tolerance);

        let mut acted = false;
        let mut verdict = ControllerVerdict::NoAction;
        if self.pending.len() == self.config.activation_intervals.max(1) as usize {
            let mut combined = match self.combine_pending() {
                Ok(combined) => combined,
                Err(e) => {
                    self.history.push(DecisionRecord {
                        at_ns: now_ns,
                        plan: Some(plan),
                        achieved_ratio,
                        boost,
                        acted: false,
                        error: Some(e),
                    });
                    return ControllerVerdict::NoAction;
                }
            };
            let floor_binding = self.apply_multi_dim(&mut combined, current, snapshot);
            let delta = combined.max_delta(current);
            // A plan that only removes instances cannot fix a rate
            // shortfall: while the job is behind target such a plan is
            // built on measurements the shortfall itself contradicts, so
            // never act on it (the boost path handles the shortfall).
            let pure_scale_down = delta > 0
                && self
                    .graph
                    .operators()
                    .all(|op| combined.parallelism(op) <= current.parallelism(op));
            // A class split may leave every parallelism unchanged; it is
            // still a real deployment change (the hot class stops pinning
            // one instance), so it counts as significant on its own — as
            // does a binding state floor, which marks a budget violation in
            // the deployment that is running right now.
            let significant = (delta > self.config.min_change
                || (!keeping_up && delta > 0)
                || combined.classes_differ(current)
                || floor_binding)
                && (keeping_up || !pure_scale_down);
            let budget_ok = self
                .config
                .max_decisions
                .is_none_or(|max| self.decisions_made < max);
            let not_rolled_back = self.rolled_back_from.as_ref() != Some(&combined);
            if significant && budget_ok && not_rolled_back {
                self.previous_deployment = Some(current.clone());
                self.pre_deploy_ratio = achieved_ratio;
                self.pre_deploy_offered = have_offered.then(|| self.offered_scratch.clone());
                self.awaiting_deploy = true;
                self.pending.clear();
                self.consecutive_stable = 0;
                self.sticky_boost = boost;
                acted = true;
                verdict = ControllerVerdict::Rescale(combined);
            } else if !significant && (keeping_up || !pure_scale_down) {
                // No meaningful change wanted: genuinely stable. A decision
                // budget exhausted by `max_decisions` also counts — §4.2.3
                // uses the cap precisely to declare convergence under skew.
                self.consecutive_stable += 1;
            } else if significant && !budget_ok {
                self.consecutive_stable += 1;
            } else {
                // A wanted change was suppressed (while-behind gate or
                // rollback ban): the policy still wants something the
                // manager rejected — that is not convergence.
                self.consecutive_stable = 0;
            }
        }

        self.history.push(DecisionRecord {
            at_ns: now_ns,
            plan: Some(plan),
            achieved_ratio,
            boost,
            acted,
            error: None,
        });
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, OperatorId};
    use crate::rates::InstanceMetrics;

    fn inst(capacity: f64, selectivity: f64, util: f64) -> InstanceMetrics {
        let window_ns = 1_000_000_000u64;
        let useful_ns = (window_ns as f64 * util) as u64;
        InstanceMetrics {
            records_in: (capacity * util) as u64,
            records_out: (capacity * selectivity * util) as u64,
            useful_ns,
            window_ns,
            ..Default::default()
        }
    }

    fn wordcount() -> (LogicalGraph, OperatorId, OperatorId, OperatorId) {
        let mut b = GraphBuilder::new();
        let s = b.operator("source");
        let f = b.operator("flat_map");
        let c = b.operator("count");
        b.connect(s, f);
        b.connect(f, c);
        (b.build().unwrap(), s, f, c)
    }

    /// Snapshot where flat_map (cap 100/s/inst, sel 2) and count (cap
    /// 100/s/inst) face a 400/s source; the job keeps up iff parallelism
    /// suffices.
    fn snapshot(
        graph_ops: (OperatorId, OperatorId, OperatorId),
        current: &Deployment,
        achieved_frac: f64,
    ) -> MetricsSnapshot {
        let (s, f, c) = graph_ops;
        let offered = 400.0;
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, offered);
        // The source must *observe* `offered * achieved_frac` output over the
        // window: with utilization 0.5 its true capacity is twice that.
        let out_per_inst = offered * achieved_frac / current.parallelism(s) as f64;
        snap.insert_instances(
            s,
            vec![inst(out_per_inst * 2.0, 1.0, 0.5); current.parallelism(s)],
        );
        let fp = current.parallelism(f);
        let f_in = offered * achieved_frac / fp as f64;
        snap.insert_instances(f, vec![inst(100.0, 2.0, (f_in / 100.0).min(1.0)); fp]);
        let cp = current.parallelism(c);
        let c_in = 2.0 * offered * achieved_frac / cp as f64;
        snap.insert_instances(c, vec![inst(100.0, 1.0, (c_in / 100.0).min(1.0)); cp]);
        snap
    }

    #[test]
    fn scales_up_underprovisioned_job_in_one_decision() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(g, ManagerConfig::default());
        let current = Deployment::uniform(&mgr.graph, 1);
        // Under-provisioned: only 25% of the offered rate achieved.
        let snap = snapshot((s, f, c), &current, 0.25);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("must rescale");
        assert_eq!(plan.parallelism(f), 4); // 400 / 100
        assert_eq!(plan.parallelism(c), 8); // 800 / 100
    }

    #[test]
    fn warmup_defers_decisions() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                warmup_intervals: 2,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.25);
        assert!(!mgr.on_metrics(0, &snap, &current).is_rescale());
        assert!(!mgr.on_metrics(1, &snap, &current).is_rescale());
        assert!(mgr.on_metrics(2, &snap, &current).is_rescale());
    }

    #[test]
    fn activation_combines_median() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                activation_intervals: 3,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.25);
        assert!(!mgr.on_metrics(0, &snap, &current).is_rescale());
        assert!(!mgr.on_metrics(1, &snap, &current).is_rescale());
        let v = mgr.on_metrics(2, &snap, &current);
        assert!(v.is_rescale(), "third interval completes activation");
    }

    #[test]
    fn suppresses_minor_change_when_keeping_up() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                min_change: 2,
                ..Default::default()
            },
        );
        // Current deployment: 5 flat_map (optimal 4), achieving full rate.
        let mut current = Deployment::uniform(&mgr.graph, 1);
        current.set(f, 5);
        current.set(c, 8);
        let snap = snapshot((s, f, c), &current, 1.0);
        let v = mgr.on_metrics(0, &snap, &current);
        assert!(
            !v.is_rescale(),
            "a -1 change while keeping up must be suppressed"
        );
    }

    #[test]
    fn applies_minor_change_when_missing_target() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                min_change: 2,
                ..Default::default()
            },
        );
        // 3 flat_map instances (need 4), 7 count (need 8): deltas of 1.
        let mut current = Deployment::uniform(&mgr.graph, 1);
        current.set(f, 3);
        current.set(c, 7);
        let snap = snapshot((s, f, c), &current, 0.75);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("must act when target is missed");
        assert_eq!(plan.parallelism(f), 4);
    }

    #[test]
    fn boost_kicks_in_when_stuck_below_target() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(g, ManagerConfig::default());
        // The policy's unboosted answer equals the current deployment, but
        // only 80% of the target is achieved (uncaptured overheads).
        let mut current = Deployment::uniform(&mgr.graph, 1);
        current.set(f, 4);
        current.set(c, 8);
        // Craft a snapshot where capacity*parallelism exactly matches target
        // (so unboosted plan == current) but achieved is 0.8.
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, 400.0);
        // Observed source output must be 320/s (=0.8 of 400): capacity 640
        // at 50% utilization.
        snap.insert_instances(s, vec![inst(640.0, 1.0, 0.5)]);
        snap.insert_instances(f, vec![inst(100.0, 2.0, 0.8); 4]);
        snap.insert_instances(c, vec![inst(100.0, 1.0, 0.8); 8]);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("boost must trigger a rescale");
        // Boost = 1/0.8 = 1.25: flat_map 400*1.25/100 = 5, count 10.
        assert_eq!(plan.parallelism(f), 5);
        assert_eq!(plan.parallelism(c), 10);
        let last = mgr.history().last().unwrap();
        assert!(last.boost > 1.2 && last.boost < 1.3);
    }

    /// The boost-as-argument path must behave exactly like the historical
    /// clone-the-config-and-tweak-`requirement_boost` path.
    #[test]
    fn boost_path_matches_cloned_config_evaluation() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(g.clone(), ManagerConfig::default());
        let mut current = Deployment::uniform(&g, 1);
        current.set(f, 4);
        current.set(c, 8);
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, 400.0);
        snap.insert_instances(s, vec![inst(640.0, 1.0, 0.5)]);
        snap.insert_instances(f, vec![inst(100.0, 2.0, 0.8); 4]);
        snap.insert_instances(c, vec![inst(100.0, 1.0, 0.8); 8]);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("boost must trigger a rescale").clone();

        // Reference: the old behaviour, a full config clone with the boost
        // folded into `requirement_boost`.
        let boost = mgr.history().last().unwrap().boost;
        let reference = Ds2Policy::with_config(PolicyConfig {
            requirement_boost: boost,
            ..ManagerConfig::default().policy
        })
        .evaluate(&g, &snap, &current)
        .unwrap();
        assert_eq!(plan, reference.plan, "decision output changed");
    }

    #[test]
    fn max_decisions_limits_actions() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                max_decisions: Some(1),
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.25);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().unwrap().clone();
        mgr.on_deployed(1, &plan);
        // Still under-provisioned per the (stale) snapshot, but the budget
        // is exhausted: no further action.
        let v = mgr.on_metrics(2, &snap, &current);
        assert!(!v.is_rescale());
    }

    #[test]
    fn rollback_on_degradation() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                rollback_on_degradation: true,
                degradation_tolerance: 0.1,
                min_change: 0,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.5);
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().unwrap().clone();
        mgr.on_deployed(1, &plan);
        // After the deploy, achieved collapses to 20%: roll back.
        let snap2 = snapshot((s, f, c), &plan, 0.2);
        let v2 = mgr.on_metrics(2, &snap2, &plan);
        assert_eq!(v2.rescale(), Some(&current));
    }

    #[test]
    fn convergence_counter() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                activation_intervals: 2,
                ..Default::default()
            },
        );
        let mut current = Deployment::uniform(&mgr.graph, 1);
        current.set(f, 4);
        current.set(c, 8);
        let snap = snapshot((s, f, c), &current, 1.0);
        assert!(!mgr.is_converged());
        mgr.on_metrics(0, &snap, &current);
        mgr.on_metrics(1, &snap, &current);
        mgr.on_metrics(2, &snap, &current);
        assert!(mgr.is_converged());
    }

    #[test]
    fn undefined_rates_defer() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(g, ManagerConfig::default());
        let current = Deployment::uniform(&mgr.graph, 1);
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, 400.0);
        snap.insert_instances(s, vec![inst(400.0, 1.0, 0.5)]);
        // flat_map and count have windows but no useful time yet.
        snap.insert_instances(
            f,
            vec![InstanceMetrics {
                window_ns: 1_000_000_000,
                ..Default::default()
            }],
        );
        snap.insert_instances(
            c,
            vec![InstanceMetrics {
                window_ns: 1_000_000_000,
                ..Default::default()
            }],
        );
        let v = mgr.on_metrics(0, &snap, &current);
        assert!(!v.is_rescale());
        assert!(mgr.history().last().unwrap().plan.is_none());
    }

    /// src(1000/s) -> op at p=4, each op instance fully utilized at
    /// 250/s capacity, with one instance pulling 70% of the input: the
    /// Eq. 7 plan is unchanged (delta 0) but the hot class pins an
    /// instance, so the split hint must drive a class-split rescale.
    fn skewed_op_setup() -> (
        LogicalGraph,
        OperatorId,
        OperatorId,
        Deployment,
        MetricsSnapshot,
    ) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        let g = b.build().unwrap();
        let mut current = Deployment::uniform(&g, 1);
        current.set(o, 4);
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, 1000.0);
        snap.insert_instances(s, vec![inst(2000.0, 1.0, 0.5)]);
        let mk = |records_in: u64| InstanceMetrics {
            records_in,
            records_out: records_in,
            useful_ns: 1_000_000_000,
            window_ns: 1_000_000_000,
            ..Default::default()
        };
        snap.insert_instances(o, vec![mk(700), mk(100), mk(100), mk(100)]);
        (g, s, o, current, snap)
    }

    #[test]
    fn split_hint_drives_class_split_rescale() {
        let (g, _s, o, current, snap) = skewed_op_setup();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                policy: PolicyConfig {
                    detect_splits: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("class split must be significant");
        // Parallelism untouched; the hot class spreads over ceil(700/250)=3.
        assert_eq!(plan.parallelism(o), 4);
        assert_eq!(plan.key_classes(o), 3);
        assert!(plan.classes_differ(&current));
    }

    #[test]
    fn split_detection_off_leaves_skewed_plan_alone() {
        let (g, _s, _o, current, snap) = skewed_op_setup();
        let mut mgr = ScalingManager::new(g, ManagerConfig::default());
        let v = mgr.on_metrics(0, &snap, &current);
        assert!(!v.is_rescale(), "parallelism-only manager sees delta 0");
    }

    #[test]
    fn rollback_restores_class_splits() {
        let (g, s, o, mut current, snap) = skewed_op_setup();
        // The running deployment already carries a split; a later rescale
        // that degrades performance must roll back to it, split included.
        current.set_key_classes(o, 2);
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                min_change: 0,
                ..Default::default()
            },
        );
        // Push the offered rate up so the policy wants more instances.
        let mut snap2 = snap.clone();
        snap2.set_source_rate(s, 2000.0);
        let v = mgr.on_metrics(0, &snap2, &current);
        let plan = v.rescale().expect("must scale up").clone();
        assert_eq!(plan.key_classes(o), 2, "split carried into new plan");
        mgr.on_deployed(1, &plan);
        // Achieved collapses post-deploy at unchanged offered load: rollback.
        let mut degraded = snap2.clone();
        degraded.insert_instances(s, vec![inst(800.0, 1.0, 0.5)]);
        let v2 = mgr.on_metrics(2, &degraded, &plan);
        let back = v2.rescale().expect("must roll back");
        assert_eq!(back, &current, "rollback restores the full allocation");
        assert_eq!(back.key_classes(o), 2);
    }

    #[test]
    fn state_floor_raises_parallelism_and_records_budget() {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        let g = b.build().unwrap();
        let mut current = Deployment::uniform(&g, 1);
        current.set(o, 2);
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s, 400.0);
        snap.insert_instances(s, vec![inst(800.0, 1.0, 0.5)]);
        // Rate-wise 2 instances suffice (200/s capacity each)…
        snap.insert_instances(o, vec![inst(200.0, 1.0, 1.0); 2]);
        // …but 6e8 bytes of state per instance breaks a 4e8 budget:
        // total 1.2e9 / 4e8 -> floor of 3 instances.
        snap.set_state_bytes(o, 6e8);
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                state_budget_per_instance: 4e8,
                ..Default::default()
            },
        );
        let v = mgr.on_metrics(0, &snap, &current);
        let plan = v.rescale().expect("binding state floor must act");
        assert_eq!(plan.parallelism(o), 3);
        assert_eq!(plan.state_budget(o), 4e8);
    }

    #[test]
    fn hardened_repairs_broken_operator_from_last_good() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                validate_snapshots: true,
                ..Default::default()
            },
        );
        let mut current = Deployment::uniform(&mgr.graph, 1);
        current.set(f, 4);
        current.set(c, 8);
        // A healthy window captures the last-good snapshot.
        let snap_ok = snapshot((s, f, c), &current, 1.0);
        assert!(!mgr.on_metrics(0, &snap_ok, &current).is_rescale());
        // flat_map's slots vanish: the vanilla path would defer, the
        // hardened path repairs from last-good and evaluates cleanly.
        let mut broken = snap_ok.clone();
        broken.remove_operator(f);
        assert!(!mgr.on_metrics(1, &broken, &current).is_rescale());
        let last = mgr.history().last().unwrap();
        assert!(last.plan.is_some(), "repaired window must evaluate");
        assert!(last.error.is_none());
        assert_eq!(mgr.fault_stats().repaired_windows, 1);
    }

    #[test]
    fn hardened_vetoes_majority_invalid_snapshot() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                validate_snapshots: true,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let mut snap = snapshot((s, f, c), &current, 0.25);
        snap.remove_operator(f);
        snap.remove_operator(c);
        // No last-good yet and 2 of 3 operators invalid: veto, hold.
        assert!(!mgr.on_metrics(0, &snap, &current).is_rescale());
        assert_eq!(mgr.fault_stats().vetoed_windows, 1);
        assert!(matches!(
            mgr.history().last().unwrap().error,
            Some(Ds2Error::DegradedTelemetry {
                invalid: 2,
                total: 3
            })
        ));
    }

    #[test]
    fn hardened_retries_unacknowledged_rescale_and_gives_up_at_cap() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                rescale_timeout_intervals: 1,
                max_rescale_retries: 2,
                rollback_ban_intervals: 100,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.25);
        let plan = mgr
            .on_metrics(0, &snap, &current)
            .rescale()
            .expect("must act")
            .clone();
        // The acknowledgement never arrives and the deployment never
        // changes: the manager may retry up to the cap, always with the
        // same plan, then must give up and go quiet (the abandoned plan
        // stays banned).
        let mut issued = 0;
        for t in 1..40 {
            if let Some(p) = mgr.on_metrics(t, &snap, &current).rescale() {
                assert_eq!(p, &plan, "retries must re-issue the same plan");
                issued += 1;
            }
        }
        assert_eq!(issued, 2, "retry cap bounds re-issues");
        assert_eq!(mgr.fault_stats().retries, 2);
        assert_eq!(mgr.fault_stats().abandoned_rescales, 1);
        assert!(matches!(
            mgr.history()
                .iter()
                .filter_map(|r| r.error.as_ref())
                .next_back(),
            Some(Ds2Error::RescaleRetriesExhausted { retries: 2 })
        ));
    }

    #[test]
    fn hardened_self_acknowledges_landed_rescale() {
        let (g, s, f, c) = wordcount();
        let mut mgr = ScalingManager::new(
            g,
            ManagerConfig {
                rescale_timeout_intervals: 2,
                ..Default::default()
            },
        );
        let current = Deployment::uniform(&mgr.graph, 1);
        let snap = snapshot((s, f, c), &current, 0.25);
        let plan = mgr
            .on_metrics(0, &snap, &current)
            .rescale()
            .expect("must act")
            .clone();
        // The rescale landed (the live deployment equals the plan) but the
        // acknowledgement was lost: the verify step must self-acknowledge
        // instead of re-issuing.
        let snap2 = snapshot((s, f, c), &plan, 1.0);
        assert!(!mgr.on_metrics(1, &snap2, &plan).is_rescale());
        assert!(!mgr.on_metrics(2, &snap2, &plan).is_rescale());
        assert_eq!(mgr.decisions_made(), 1);
        assert_eq!(mgr.fault_stats().retries, 0);
    }

    #[test]
    fn outlier_rejection_ignores_straggler_instance() {
        let (g, s, f, c) = wordcount();
        let mut current = Deployment::uniform(&g, 1);
        current.set(f, 4);
        current.set(c, 8);
        // Keeping up, but one flat_map instance's counters claim a true
        // rate 20x below its siblings (a straggler / broken counter).
        let mut snap = snapshot((s, f, c), &current, 1.0);
        snap.operator_mut(f).unwrap().instances[0].records_in = 5;
        let mut vanilla = ScalingManager::new(
            g.clone(),
            ManagerConfig {
                min_change: 0,
                ..Default::default()
            },
        );
        let mut hardened = ScalingManager::new(
            g,
            ManagerConfig {
                min_change: 0,
                outlier_rejection: true,
                ..Default::default()
            },
        );
        assert!(
            vanilla.on_metrics(0, &snap, &current).is_rescale(),
            "the straggler drags vanilla's capacity estimate into churn"
        );
        assert!(
            !hardened.on_metrics(0, &snap, &current).is_rescale(),
            "median rejection must neutralize the straggler"
        );
        assert!(hardened.fault_stats().outliers_rejected >= 1);
    }

    #[test]
    fn unbudgeted_state_report_changes_nothing() {
        let (g, _s, _o, current, snap) = skewed_op_setup();
        let mut with_state = snap.clone();
        with_state.set_state_bytes(OperatorId(1), 1e12);
        let mut a = ScalingManager::new(g.clone(), ManagerConfig::default());
        let mut b = ScalingManager::new(g, ManagerConfig::default());
        let va = a.on_metrics(0, &snap, &current);
        let vb = b.on_metrics(0, &with_state, &current);
        assert!(!va.is_rescale() && !vb.is_rescale());
    }
}
