//! Error types for the DS2 core crate.

use std::fmt;

use crate::graph::OperatorId;

/// Errors produced by graph construction, policy evaluation, or the manager.
#[derive(Debug, Clone, PartialEq)]
pub enum Ds2Error {
    /// The logical graph failed validation (cycle, bad edge, empty, ...).
    InvalidGraph(String),
    /// A metrics snapshot is missing data for an operator the policy needs.
    MissingMetrics(OperatorId),
    /// An operator reported no useful time in the window, so its true rates
    /// (Eq. 1–2) are undefined and the policy cannot estimate it.
    UndefinedRates(OperatorId),
    /// A snapshot value was not finite or otherwise out of domain.
    InvalidMetrics(String),
    /// Deployment/parallelism information is inconsistent with the graph.
    InvalidDeployment(String),
    /// A rescale did not complete within its deadline (e.g. a wedged worker
    /// in the threaded runtime, or a deploy acknowledgement that never came).
    RescaleTimedOut(String),
    /// A failed rescale was retried up to the configured cap without landing;
    /// the manager gives up and holds the last-good deployment.
    RescaleRetriesExhausted {
        /// Retries spent before giving up.
        retries: u32,
    },
    /// Telemetry is too degraded to act on: a majority of operators reported
    /// missing or implausible metrics that could not be repaired from the
    /// last-good snapshot within the staleness window.
    DegradedTelemetry {
        /// Operators whose metrics were invalid before repair.
        invalid: usize,
        /// Total operators in the graph.
        total: usize,
    },
    /// A supervised worker thread panicked inside operator logic. The
    /// supervisor restarts the instance (restoring salvaged or checkpointed
    /// state) instead of letting the panic wedge the job.
    WorkerPanicked {
        /// Operator whose instance panicked.
        op: OperatorId,
        /// Index of the panicked instance.
        instance: usize,
    },
    /// A supervised worker stopped answering control commands (stuck in user
    /// code); it was abandoned and replaced from the latest checkpoint.
    WorkerWedged {
        /// Operator whose instance wedged.
        op: OperatorId,
        /// Index of the wedged instance.
        instance: usize,
    },
    /// Self-healing gave up: the bounded restart/redeploy budget was spent
    /// without the job becoming healthy again.
    RecoveryExhausted {
        /// Recovery attempts spent before giving up.
        attempts: u32,
    },
}

impl fmt::Display for Ds2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ds2Error::InvalidGraph(msg) => write!(f, "invalid logical graph: {msg}"),
            Ds2Error::MissingMetrics(op) => write!(f, "no metrics reported for {op}"),
            Ds2Error::UndefinedRates(op) => {
                write!(
                    f,
                    "true rates undefined for {op} (zero useful time in window)"
                )
            }
            Ds2Error::InvalidMetrics(msg) => write!(f, "invalid metrics: {msg}"),
            Ds2Error::InvalidDeployment(msg) => write!(f, "invalid deployment: {msg}"),
            Ds2Error::RescaleTimedOut(msg) => write!(f, "rescale timed out: {msg}"),
            Ds2Error::RescaleRetriesExhausted { retries } => {
                write!(f, "rescale abandoned after {retries} retries")
            }
            Ds2Error::DegradedTelemetry { invalid, total } => {
                write!(
                    f,
                    "telemetry degraded: {invalid}/{total} operators invalid beyond repair"
                )
            }
            Ds2Error::WorkerPanicked { op, instance } => {
                write!(f, "worker {op}[{instance}] panicked in operator logic")
            }
            Ds2Error::WorkerWedged { op, instance } => {
                write!(
                    f,
                    "worker {op}[{instance}] wedged (unresponsive to control commands)"
                )
            }
            Ds2Error::RecoveryExhausted { attempts } => {
                write!(f, "self-healing gave up after {attempts} recovery attempts")
            }
        }
    }
}

impl std::error::Error for Ds2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Ds2Error::UndefinedRates(OperatorId(3));
        let s = e.to_string();
        assert!(s.contains("op3"));
        assert!(s.contains("useful time"));
        let e = Ds2Error::InvalidGraph("cycle".into());
        assert!(e.to_string().contains("cycle"));
    }
}
