//! The controller abstraction shared by DS2 and every baseline.
//!
//! The experiment harness drives any [`ScalingController`] against any engine
//! in a closed loop: once per policy interval it hands the controller a
//! [`MetricsSnapshot`] and the current [`Deployment`], and applies whatever
//! rescaling the controller requests (after the engine's redeployment
//! latency). This is how the paper's Figure 1 (Dhalion) and Figure 6 (DS2 vs
//! Dhalion) runs share all code except the controller.

use crate::deployment::Deployment;
use crate::snapshot::MetricsSnapshot;

/// A scaling action requested by a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerVerdict {
    /// Keep the current deployment.
    NoAction,
    /// Redeploy the dataflow with the given parallelism plan.
    Rescale(Deployment),
}

impl ControllerVerdict {
    /// Returns the requested deployment, if any.
    pub fn rescale(&self) -> Option<&Deployment> {
        match self {
            ControllerVerdict::NoAction => None,
            ControllerVerdict::Rescale(d) => Some(d),
        }
    }

    /// Returns `true` if the verdict requests a rescale.
    pub fn is_rescale(&self) -> bool {
        matches!(self, ControllerVerdict::Rescale(_))
    }
}

/// Counters a hardened controller exposes about degraded-input handling.
///
/// All counters stay zero for controllers without hardening, so harnesses can
/// harvest this unconditionally via [`ScalingController::fault_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerFaultStats {
    /// Metric windows where at least one operator's slots were repaired from
    /// the last-good snapshot.
    pub repaired_windows: u32,
    /// Per-instance samples replaced by the operator median as rate outliers.
    pub outliers_rejected: u32,
    /// Metric windows vetoed outright (majority-invalid telemetry): the
    /// controller held the last-good deployment instead of acting.
    pub vetoed_windows: u32,
    /// Rescale requests re-issued after a deploy acknowledgement timed out.
    pub retries: u32,
    /// Rescales abandoned after the retry cap was exhausted.
    pub abandoned_rescales: u32,
}

/// A scaling controller in the sense of the paper's §1: a component that
/// decides *whether* and *how much* to scale each operator.
pub trait ScalingController {
    /// Short name used in experiment output (e.g. `"ds2"`, `"dhalion"`).
    fn name(&self) -> &str;

    /// Considers the metrics of one policy interval and possibly requests a
    /// rescale. `now_ns` is the current (virtual or wall-clock) time.
    fn on_metrics(
        &mut self,
        now_ns: u64,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> ControllerVerdict;

    /// Notifies the controller that a requested rescale finished deploying.
    fn on_deployed(&mut self, _now_ns: u64, _deployment: &Deployment) {}

    /// Degraded-input handling counters; all-zero unless the controller is
    /// hardened against telemetry/actuation faults.
    fn fault_stats(&self) -> ControllerFaultStats {
        ControllerFaultStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OperatorId;

    #[test]
    fn verdict_accessors() {
        let v = ControllerVerdict::NoAction;
        assert!(!v.is_rescale());
        assert!(v.rescale().is_none());
        let d = Deployment::from_map([(OperatorId(0), 2)].into());
        let v = ControllerVerdict::Rescale(d.clone());
        assert!(v.is_rescale());
        assert_eq!(v.rescale(), Some(&d));
    }
}
