//! True and observed rates of operator instances (paper §3.2, Eq. 1–6).
//!
//! The model distinguishes *useful time* — the time an instance spends
//! deserializing, processing and serializing records — from waiting on input
//! or output. True rates divide record counts by useful time and therefore
//! estimate the *capacity* of an instance; observed rates divide by the full
//! window and are depressed by backpressure and idling.

use crate::error::Ds2Error;

/// Nanoseconds per second, used to express all rates in records/second.
pub const NS_PER_SEC: f64 = 1_000_000_000.0;

/// Raw instrumentation counters for one operator instance over one window.
///
/// This is the exact counter set §4.1 requires the stream processor to
/// report: records pulled (`records_in` = `Rprc`), records pushed
/// (`records_out` = `Rpsd`), useful time (`useful_ns` = `Wu`, the sum of
/// deserialization + processing + serialization durations) and the window of
/// observed time (`window_ns` = `W`). Wait components are kept for
/// diagnostics and invariant checking; they are not needed by the policy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstanceMetrics {
    /// Records pulled from the input during the window (`Rprc`).
    pub records_in: u64,
    /// Records pushed to the output during the window (`Rpsd`).
    pub records_out: u64,
    /// Useful time in nanoseconds (`Wu`): deserialization + processing +
    /// serialization, excluding any waiting.
    pub useful_ns: u64,
    /// Observed window length in nanoseconds (`W`).
    pub window_ns: u64,
    /// Time spent blocked or spinning on an empty input, in nanoseconds.
    pub wait_input_ns: u64,
    /// Time spent blocked on a full output, in nanoseconds.
    pub wait_output_ns: u64,
}

impl InstanceMetrics {
    /// Validates the defining inequality of the model: `0 <= Wu <= W`.
    pub fn validate(&self) -> Result<(), Ds2Error> {
        if self.useful_ns > self.window_ns {
            return Err(Ds2Error::InvalidMetrics(format!(
                "useful time {}ns exceeds window {}ns",
                self.useful_ns, self.window_ns
            )));
        }
        if self.wait_input_ns.saturating_add(self.wait_output_ns)
            > self.window_ns.saturating_sub(self.useful_ns)
        {
            return Err(Ds2Error::InvalidMetrics(format!(
                "wait time {}ns exceeds non-useful window time {}ns",
                self.wait_input_ns + self.wait_output_ns,
                self.window_ns - self.useful_ns
            )));
        }
        Ok(())
    }

    /// True processing rate `λp = Rprc / Wu` in records/second (Eq. 1).
    ///
    /// Returns `None` when the instance recorded no useful time, in which
    /// case the rate is undefined per the model.
    pub fn true_processing_rate(&self) -> Option<f64> {
        rate(self.records_in, self.useful_ns)
    }

    /// True output rate `λo = Rpsd / Wu` in records/second (Eq. 2).
    pub fn true_output_rate(&self) -> Option<f64> {
        rate(self.records_out, self.useful_ns)
    }

    /// Observed processing rate `λ̂p = Rprc / W` in records/second (Eq. 3).
    pub fn observed_processing_rate(&self) -> Option<f64> {
        rate(self.records_in, self.window_ns)
    }

    /// Observed output rate `λ̂o = Rpsd / W` in records/second (Eq. 4).
    pub fn observed_output_rate(&self) -> Option<f64> {
        rate(self.records_out, self.window_ns)
    }

    /// Fraction of the window spent doing useful work, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.useful_ns as f64 / self.window_ns as f64
        }
    }

    /// Fraction of the window not accounted for by useful time or measured
    /// waits, in `[0, 1]`.
    ///
    /// In a perfectly instrumented instance this is 0; a persistent gap
    /// reveals per-record overheads outside the instrumented sections
    /// (network stack, channel selection) — the §4.2.1 situation the
    /// target-rate-ratio correction exists for.
    pub fn unaccounted_fraction(&self) -> f64 {
        if self.window_ns == 0 {
            return 0.0;
        }
        let accounted = self
            .useful_ns
            .saturating_add(self.wait_input_ns)
            .saturating_add(self.wait_output_ns);
        self.window_ns.saturating_sub(accounted) as f64 / self.window_ns as f64
    }

    /// Per-instance selectivity `Rpsd / Rprc`, or `None` if nothing was read.
    pub fn selectivity(&self) -> Option<f64> {
        if self.records_in == 0 {
            None
        } else {
            Some(self.records_out as f64 / self.records_in as f64)
        }
    }

    /// Merges another window's counters into this one (component-wise sum).
    ///
    /// Useful when aggregating several reporting intervals into one policy
    /// window, as the Scaling Manager does for long policy intervals.
    pub fn merge(&mut self, other: &InstanceMetrics) {
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.useful_ns += other.useful_ns;
        self.window_ns += other.window_ns;
        self.wait_input_ns += other.wait_input_ns;
        self.wait_output_ns += other.wait_output_ns;
    }
}

fn rate(records: u64, duration_ns: u64) -> Option<f64> {
    if duration_ns == 0 {
        None
    } else {
        Some(records as f64 * NS_PER_SEC / duration_ns as f64)
    }
}

/// Aggregated metrics for all instances of one logical operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorMetrics {
    /// One entry per running instance of the operator.
    pub instances: Vec<InstanceMetrics>,
}

impl OperatorMetrics {
    /// Creates operator metrics from per-instance counters.
    pub fn new(instances: Vec<InstanceMetrics>) -> Self {
        Self { instances }
    }

    /// Current parallelism `p` (the number of reporting instances).
    pub fn parallelism(&self) -> usize {
        self.instances.len()
    }

    /// Aggregated true processing rate `o[λp] = Σ λp^k` (Eq. 5).
    ///
    /// Instances with undefined rates (zero useful time) contribute zero
    /// capacity, which is the conservative reading: an instance that did no
    /// useful work in the window demonstrated no capacity. Returns `None`
    /// only when *no* instance has a defined rate.
    pub fn aggregate_true_processing_rate(&self) -> Option<f64> {
        aggregate(self.instances.iter().map(|i| i.true_processing_rate()))
    }

    /// Aggregated true output rate `o[λo] = Σ λo^k` (Eq. 6).
    pub fn aggregate_true_output_rate(&self) -> Option<f64> {
        aggregate(self.instances.iter().map(|i| i.true_output_rate()))
    }

    /// Both aggregate true rates — `(o[λp], o[λo])` of Eq. 5–6 — in one
    /// pass over the instances. The policy reads them together every
    /// window; fusing the passes halves the per-operator instance traffic
    /// while performing bit-identical arithmetic (same per-instance
    /// formula, same summation order) to the individual aggregates.
    pub fn aggregate_true_rates(&self) -> Option<(f64, f64)> {
        let mut lp = 0.0;
        let mut lo = 0.0;
        let mut any = false;
        for inst in &self.instances {
            if inst.useful_ns == 0 {
                continue;
            }
            let useful = inst.useful_ns as f64;
            lp += inst.records_in as f64 * NS_PER_SEC / useful;
            lo += inst.records_out as f64 * NS_PER_SEC / useful;
            any = true;
        }
        any.then_some((lp, lo))
    }

    /// Aggregated observed processing rate `Σ λ̂p^k`.
    pub fn aggregate_observed_processing_rate(&self) -> Option<f64> {
        aggregate(self.instances.iter().map(|i| i.observed_processing_rate()))
    }

    /// Aggregated observed output rate `Σ λ̂o^k`.
    pub fn aggregate_observed_output_rate(&self) -> Option<f64> {
        aggregate(self.instances.iter().map(|i| i.observed_output_rate()))
    }

    /// Average true processing rate per instance, `o[λp] / p`.
    ///
    /// This is the per-instance capacity term of Eq. 7. Averaging over
    /// instances is what makes DS2 skew-oblivious (§4.2.3).
    pub fn average_true_processing_rate(&self) -> Option<f64> {
        let p = self.parallelism();
        if p == 0 {
            return None;
        }
        self.aggregate_true_processing_rate().map(|r| r / p as f64)
    }

    /// Operator selectivity `o[λo] / o[λp]` from aggregated true rates.
    pub fn selectivity(&self) -> Option<f64> {
        let lp = self.aggregate_true_processing_rate()?;
        let lo = self.aggregate_true_output_rate()?;
        if lp <= 0.0 {
            None
        } else {
            Some(lo / lp)
        }
    }

    /// Total records read across instances in the window.
    pub fn total_records_in(&self) -> u64 {
        self.instances.iter().map(|i| i.records_in).sum()
    }

    /// Total records produced across instances in the window.
    pub fn total_records_out(&self) -> u64 {
        self.instances.iter().map(|i| i.records_out).sum()
    }

    /// Mean utilization (useful fraction of the window) across instances.
    pub fn mean_utilization(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().map(|i| i.utilization()).sum::<f64>() / self.instances.len() as f64
    }

    /// Mean unaccounted-time fraction across instances.
    pub fn mean_unaccounted_fraction(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances
            .iter()
            .map(|i| i.unaccounted_fraction())
            .sum::<f64>()
            / self.instances.len() as f64
    }

    /// Coefficient of variation of per-instance observed processing rates.
    ///
    /// A high value indicates data skew across instances; the Manager can use
    /// this as the skew-detection signal sketched in §4.2 (Fig. 5).
    pub fn processing_rate_cv(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .instances
            .iter()
            .filter_map(|i| i.observed_processing_rate())
            .collect();
        if rates.len() < 2 {
            return None;
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        if mean <= 0.0 {
            return None;
        }
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
        Some(var.sqrt() / mean)
    }
}

fn aggregate(rates: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let mut sum = 0.0;
    let mut any = false;
    for r in rates.flatten() {
        sum += r;
        any = true;
    }
    any.then_some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(records_in: u64, records_out: u64, useful_ms: u64, window_ms: u64) -> InstanceMetrics {
        InstanceMetrics {
            records_in,
            records_out,
            useful_ns: useful_ms * 1_000_000,
            window_ns: window_ms * 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn true_vs_observed_rates() {
        // 100 records in 200ms useful time out of a 1s window: the paper's
        // Figure 2 situation — observed 100/s, true 500/s.
        let m = inst(100, 200, 200, 1000);
        assert_eq!(m.observed_processing_rate(), Some(100.0));
        assert_eq!(m.true_processing_rate(), Some(500.0));
        assert_eq!(m.observed_output_rate(), Some(200.0));
        assert_eq!(m.true_output_rate(), Some(1000.0));
        assert_eq!(m.selectivity(), Some(2.0));
        assert!((m.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn observed_never_exceeds_true() {
        // 0 <= λ̂ <= λ because Wu <= W (paper §3.2).
        for (useful, window) in [(1u64, 1u64), (500, 1000), (999, 1000)] {
            let m = inst(1234, 567, useful, window);
            assert!(m.observed_processing_rate().unwrap() <= m.true_processing_rate().unwrap());
            assert!(m.observed_output_rate().unwrap() <= m.true_output_rate().unwrap());
        }
    }

    #[test]
    fn zero_useful_time_is_undefined() {
        let m = inst(0, 0, 0, 1000);
        assert_eq!(m.true_processing_rate(), None);
        assert_eq!(m.observed_processing_rate(), Some(0.0));
        assert_eq!(m.selectivity(), None);
    }

    #[test]
    fn zero_window_is_undefined() {
        let m = inst(0, 0, 0, 0);
        assert_eq!(m.observed_processing_rate(), None);
        assert_eq!(m.true_processing_rate(), None);
    }

    #[test]
    fn validate_rejects_useful_exceeding_window() {
        let m = inst(1, 1, 1001, 1000);
        assert!(m.validate().is_err());
        let m = inst(1, 1, 1000, 1000);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_rejects_excess_wait() {
        let mut m = inst(1, 1, 600, 1000);
        m.wait_input_ns = 300_000_000;
        m.wait_output_ns = 200_000_000;
        assert!(m.validate().is_err());
        m.wait_output_ns = 100_000_000;
        assert!(m.validate().is_ok());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = inst(10, 20, 100, 1000);
        let b = inst(5, 10, 50, 1000);
        a.merge(&b);
        assert_eq!(a.records_in, 15);
        assert_eq!(a.records_out, 30);
        assert_eq!(a.useful_ns, 150_000_000);
        assert_eq!(a.window_ns, 2_000_000_000);
        // Rates follow the merged counters.
        assert_eq!(a.true_processing_rate(), Some(100.0));
    }

    #[test]
    fn operator_aggregation_eq5_eq6() {
        let op = OperatorMetrics::new(vec![inst(100, 200, 200, 1000), inst(300, 600, 300, 1000)]);
        // λp: 500 + 1000 = 1500; λo: 1000 + 2000 = 3000.
        assert_eq!(op.aggregate_true_processing_rate(), Some(1500.0));
        assert_eq!(op.aggregate_true_output_rate(), Some(3000.0));
        assert_eq!(op.average_true_processing_rate(), Some(750.0));
        assert_eq!(op.selectivity(), Some(2.0));
        assert_eq!(op.parallelism(), 2);
        assert_eq!(op.total_records_in(), 400);
        assert_eq!(op.total_records_out(), 800);
    }

    #[test]
    fn aggregation_skips_undefined_instances() {
        let op = OperatorMetrics::new(vec![inst(100, 100, 100, 1000), inst(0, 0, 0, 1000)]);
        assert_eq!(op.aggregate_true_processing_rate(), Some(1000.0));
        // Average still divides by the full parallelism: the idle instance
        // demonstrated no capacity.
        assert_eq!(op.average_true_processing_rate(), Some(500.0));
    }

    #[test]
    fn fully_idle_operator_is_undefined() {
        let op = OperatorMetrics::new(vec![inst(0, 0, 0, 1000); 3]);
        assert_eq!(op.aggregate_true_processing_rate(), None);
        assert_eq!(op.selectivity(), None);
    }

    #[test]
    fn skew_shows_up_in_cv() {
        let balanced = OperatorMetrics::new(vec![inst(100, 100, 100, 1000); 4]);
        assert!(balanced.processing_rate_cv().unwrap() < 1e-9);
        let skewed = OperatorMetrics::new(vec![
            inst(700, 700, 700, 1000),
            inst(100, 100, 100, 1000),
            inst(100, 100, 100, 1000),
            inst(100, 100, 100, 1000),
        ]);
        assert!(skewed.processing_rate_cv().unwrap() > 0.5);
    }

    #[test]
    fn empty_operator_metrics() {
        let op = OperatorMetrics::default();
        assert_eq!(op.parallelism(), 0);
        assert_eq!(op.average_true_processing_rate(), None);
        assert_eq!(op.mean_utilization(), 0.0);
        assert_eq!(op.processing_rate_cv(), None);
    }
}
