//! Metrics snapshots: the policy's view of one observation window.

use std::collections::BTreeMap;

use crate::deployment::Deployment;
use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};
use crate::rates::{InstanceMetrics, OperatorMetrics};

/// Everything DS2 needs to evaluate one scaling decision (§3.2):
/// per-instance true-rate counters for every operator, plus the externally
/// monitored output rate of each source.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-operator instrumentation for the window.
    pub operators: BTreeMap<OperatorId, OperatorMetrics>,
    /// Offered output rate of each source in records/second (`λsrc`).
    ///
    /// The paper monitors these outside the reference system: they are the
    /// rates the application data sources *produce*, not the (possibly
    /// backpressure-throttled) rates the dataflow achieves.
    pub source_rates: BTreeMap<OperatorId, f64>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts metrics for one operator.
    pub fn insert_operator(&mut self, op: OperatorId, metrics: OperatorMetrics) {
        self.operators.insert(op, metrics);
    }

    /// Inserts per-instance metrics for one operator.
    pub fn insert_instances(&mut self, op: OperatorId, instances: Vec<InstanceMetrics>) {
        self.operators.insert(op, OperatorMetrics::new(instances));
    }

    /// Records the offered rate of a source in records/second.
    pub fn set_source_rate(&mut self, op: OperatorId, rate: f64) {
        self.source_rates.insert(op, rate);
    }

    /// Metrics for one operator, if reported.
    pub fn operator(&self, op: OperatorId) -> Option<&OperatorMetrics> {
        self.operators.get(&op)
    }

    /// The observed (achieved) aggregate output rate of a source, from its
    /// instrumentation counters. Under backpressure this is lower than the
    /// offered rate in [`MetricsSnapshot::source_rates`].
    pub fn observed_source_rate(&self, op: OperatorId) -> Option<f64> {
        self.operators
            .get(&op)
            .and_then(|m| m.aggregate_observed_output_rate())
    }

    /// Validates the snapshot against a graph and deployment: every operator
    /// must report, instance counts must match deployed parallelism, every
    /// source must have an offered rate, and all counters must satisfy the
    /// `Wu <= W` model invariant.
    pub fn validate(&self, graph: &LogicalGraph, deployment: &Deployment) -> Result<(), Ds2Error> {
        for op in graph.operators() {
            let metrics = self
                .operators
                .get(&op)
                .ok_or(Ds2Error::MissingMetrics(op))?;
            let p = deployment.parallelism(op);
            if metrics.parallelism() != p {
                return Err(Ds2Error::InvalidMetrics(format!(
                    "{op} reports {} instances but {} are deployed",
                    metrics.parallelism(),
                    p
                )));
            }
            for inst in &metrics.instances {
                inst.validate()?;
            }
        }
        for &src in graph.sources() {
            let rate = self
                .source_rates
                .get(&src)
                .ok_or(Ds2Error::MissingMetrics(src))?;
            if !rate.is_finite() || *rate < 0.0 {
                return Err(Ds2Error::InvalidMetrics(format!(
                    "source {src} has invalid offered rate {rate}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn inst(records_in: u64, records_out: u64, useful_ms: u64, window_ms: u64) -> InstanceMetrics {
        InstanceMetrics {
            records_in,
            records_out,
            useful_ns: useful_ms * 1_000_000,
            window_ns: window_ms * 1_000_000,
            ..Default::default()
        }
    }

    fn setup() -> (LogicalGraph, Deployment, MetricsSnapshot) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        let g = b.build().unwrap();
        let d = Deployment::uniform(&g, 1);
        let mut snap = MetricsSnapshot::new();
        snap.insert_instances(s, vec![inst(0, 100, 100, 1000)]);
        snap.insert_instances(o, vec![inst(100, 100, 100, 1000)]);
        snap.set_source_rate(s, 100.0);
        (g, d, snap)
    }

    #[test]
    fn valid_snapshot_passes() {
        let (g, d, snap) = setup();
        assert!(snap.validate(&g, &d).is_ok());
    }

    #[test]
    fn missing_operator_fails() {
        let (g, d, mut snap) = setup();
        snap.operators.remove(&OperatorId(1));
        assert!(matches!(
            snap.validate(&g, &d),
            Err(Ds2Error::MissingMetrics(OperatorId(1)))
        ));
    }

    #[test]
    fn parallelism_mismatch_fails() {
        let (g, mut d, snap) = setup();
        d.set(OperatorId(1), 2);
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn missing_source_rate_fails() {
        let (g, d, mut snap) = setup();
        snap.source_rates.clear();
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn non_finite_source_rate_fails() {
        let (g, d, mut snap) = setup();
        snap.set_source_rate(OperatorId(0), f64::NAN);
        assert!(snap.validate(&g, &d).is_err());
        snap.set_source_rate(OperatorId(0), -1.0);
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn observed_source_rate_reads_counters() {
        let (_, _, snap) = setup();
        assert_eq!(snap.observed_source_rate(OperatorId(0)), Some(100.0));
        assert_eq!(snap.observed_source_rate(OperatorId(9)), None);
    }
}
