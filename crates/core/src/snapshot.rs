//! Metrics snapshots: the policy's view of one observation window.

use crate::deployment::Deployment;
use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};
use crate::opmap::OpMap;
use crate::rates::{InstanceMetrics, OperatorMetrics};

/// Everything DS2 needs to evaluate one scaling decision (§3.2):
/// per-instance true-rate counters for every operator, plus the externally
/// monitored output rate of each source.
///
/// Both maps are dense [`OpMap`] arenas indexed by [`OperatorId::index`], so
/// the policy's per-window lookups are index arithmetic, and a snapshot
/// buffer reused across windows ([`MetricsSnapshot::clear`] +
/// [`MetricsSnapshot::operator_slot`]) recycles its per-operator instance
/// vectors instead of reallocating them.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-operator instrumentation for the window.
    operators: OpMap<OperatorMetrics>,
    /// Offered output rate of each source in records/second (`λsrc`).
    ///
    /// The paper monitors these outside the reference system: they are the
    /// rates the application data sources *produce*, not the (possibly
    /// backpressure-throttled) rates the dataflow achieves.
    source_rates: OpMap<f64>,
    /// Per-instance state size of each stateful operator, in bytes — the
    /// state dimension of the resource model. Stateless operators (and
    /// collectors unaware of state) simply never report, so
    /// parallelism-only pipelines carry an empty map and compare equal to
    /// their pre-state-model selves.
    state_bytes: OpMap<f64>,
    /// Records an operator dropped on its output path during the window
    /// because a receiver was gone (degraded routing). Healthy runs never
    /// report, so the map stays empty and snapshots compare equal to their
    /// pre-drop-counter selves.
    records_dropped: OpMap<u64>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty snapshot with capacity for `n` operators.
    pub fn with_len(n: usize) -> Self {
        Self {
            operators: OpMap::with_len(n),
            source_rates: OpMap::with_len(n),
            state_bytes: OpMap::with_len(n),
            records_dropped: OpMap::with_len(n),
        }
    }

    /// Removes all operator metrics, source rates and state sizes in
    /// `O(1)`, keeping the slot allocations (and the instance vectors
    /// inside them) for reuse.
    pub fn clear(&mut self) {
        self.operators.clear();
        self.source_rates.clear();
        self.state_bytes.clear();
        self.records_dropped.clear();
    }

    /// Inserts metrics for one operator.
    pub fn insert_operator(&mut self, op: OperatorId, metrics: OperatorMetrics) {
        self.operators.insert(op, metrics);
    }

    /// Inserts per-instance metrics for one operator.
    pub fn insert_instances(&mut self, op: OperatorId, instances: Vec<InstanceMetrics>) {
        self.operators.insert(op, OperatorMetrics::new(instances));
    }

    /// Marks `op` reported and returns its (recycled) metrics slot with the
    /// instance vector cleared — the allocation-free filling path used by
    /// snapshot collectors that reuse one snapshot across windows.
    pub fn operator_slot(&mut self, op: OperatorId) -> &mut OperatorMetrics {
        let slot = self.operators.slot_or_default(op);
        slot.instances.clear();
        slot
    }

    /// Removes one operator's metrics (testing / partial-window handling).
    pub fn remove_operator(&mut self, op: OperatorId) -> Option<OperatorMetrics> {
        self.operators.remove(op)
    }

    /// Mutable access to an operator's metrics, if present. Unlike
    /// [`Self::operator_slot`] this does not clear the instance rows, so it
    /// can be used to edit reported samples in place (fault injection,
    /// sanitization).
    pub fn operator_mut(&mut self, op: OperatorId) -> Option<&mut OperatorMetrics> {
        self.operators.get_mut(op)
    }

    /// Removes the offered rate recorded for one source, returning it.
    pub fn remove_source_rate(&mut self, op: OperatorId) -> Option<f64> {
        self.source_rates.remove(op)
    }

    /// Records the offered rate of a source in records/second.
    pub fn set_source_rate(&mut self, op: OperatorId, rate: f64) {
        self.source_rates.insert(op, rate);
    }

    /// Removes all recorded source rates.
    pub fn clear_source_rates(&mut self) {
        self.source_rates.clear();
    }

    /// Metrics for one operator, if reported.
    #[inline]
    pub fn operator(&self, op: OperatorId) -> Option<&OperatorMetrics> {
        self.operators.get(op)
    }

    /// All reported operators in id order.
    pub fn operators(&self) -> impl Iterator<Item = (OperatorId, &OperatorMetrics)> + '_ {
        self.operators.iter()
    }

    /// The offered rate of a source, if recorded.
    #[inline]
    pub fn source_rate(&self, op: OperatorId) -> Option<f64> {
        self.source_rates.get(op).copied()
    }

    /// All recorded `(source, offered rate)` pairs in id order.
    pub fn source_rates(&self) -> impl Iterator<Item = (OperatorId, f64)> + '_ {
        self.source_rates.iter().map(|(op, &r)| (op, r))
    }

    /// Records the per-instance state size of a stateful operator, in bytes.
    pub fn set_state_bytes(&mut self, op: OperatorId, bytes: f64) {
        self.state_bytes.insert(op, bytes);
    }

    /// Per-instance state size of an operator in bytes, if reported.
    #[inline]
    pub fn state_bytes(&self, op: OperatorId) -> Option<f64> {
        self.state_bytes.get(op).copied()
    }

    /// All reported `(operator, per-instance state bytes)` pairs in id
    /// order.
    pub fn state_bytes_iter(&self) -> impl Iterator<Item = (OperatorId, f64)> + '_ {
        self.state_bytes.iter().map(|(op, &b)| (op, b))
    }

    /// Records how many output records `op` dropped in the window because a
    /// receiver had disconnected. Collectors only report non-zero counts.
    pub fn set_records_dropped(&mut self, op: OperatorId, dropped: u64) {
        self.records_dropped.insert(op, dropped);
    }

    /// Records `op` dropped on its output path in the window, if reported.
    #[inline]
    pub fn records_dropped(&self, op: OperatorId) -> Option<u64> {
        self.records_dropped.get(op).copied()
    }

    /// All reported `(operator, dropped records)` pairs in id order.
    pub fn records_dropped_iter(&self) -> impl Iterator<Item = (OperatorId, u64)> + '_ {
        self.records_dropped.iter().map(|(op, &n)| (op, n))
    }

    /// The observed (achieved) aggregate output rate of a source, from its
    /// instrumentation counters. Under backpressure this is lower than the
    /// offered rate recorded by [`MetricsSnapshot::set_source_rate`].
    pub fn observed_source_rate(&self, op: OperatorId) -> Option<f64> {
        self.operators
            .get(op)
            .and_then(|m| m.aggregate_observed_output_rate())
    }

    /// Validates the snapshot against a graph and deployment: every operator
    /// must report, instance counts must match deployed parallelism, every
    /// source must have an offered rate, and all counters must satisfy the
    /// `Wu <= W` model invariant.
    pub fn validate(&self, graph: &LogicalGraph, deployment: &Deployment) -> Result<(), Ds2Error> {
        for op in graph.operators() {
            let metrics = self.operators.get(op).ok_or(Ds2Error::MissingMetrics(op))?;
            let p = deployment.parallelism(op);
            if metrics.parallelism() != p {
                return Err(Ds2Error::InvalidMetrics(format!(
                    "{op} reports {} instances but {} are deployed",
                    metrics.parallelism(),
                    p
                )));
            }
            for inst in &metrics.instances {
                inst.validate()?;
            }
        }
        for &src in graph.sources() {
            let rate = self
                .source_rates
                .get(src)
                .ok_or(Ds2Error::MissingMetrics(src))?;
            if !rate.is_finite() || *rate < 0.0 {
                return Err(Ds2Error::InvalidMetrics(format!(
                    "source {src} has invalid offered rate {rate}"
                )));
            }
        }
        Ok(())
    }
}

/// Two snapshots are equal when they report the same operators with equal
/// instance counters and the same source rates (bitwise on the rates) —
/// regardless of internal arena capacity or epoch-stamp history, so a
/// recycled buffer compares equal to a freshly collected one.
///
/// The simulator's fast-forward equivalence guarantee leans on this: a
/// metrics window closed after any number of replayed macro-ticks must
/// equal the window an exact tick-by-tick engine produces, bit for bit.
impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.operators.iter().eq(other.operators.iter())
            && self
                .source_rates()
                .map(|(op, r)| (op, r.to_bits()))
                .eq(other.source_rates().map(|(op, r)| (op, r.to_bits())))
            && self
                .state_bytes_iter()
                .map(|(op, b)| (op, b.to_bits()))
                .eq(other.state_bytes_iter().map(|(op, b)| (op, b.to_bits())))
            && self.records_dropped_iter().eq(other.records_dropped_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn inst(records_in: u64, records_out: u64, useful_ms: u64, window_ms: u64) -> InstanceMetrics {
        InstanceMetrics {
            records_in,
            records_out,
            useful_ns: useful_ms * 1_000_000,
            window_ns: window_ms * 1_000_000,
            ..Default::default()
        }
    }

    fn setup() -> (LogicalGraph, Deployment, MetricsSnapshot) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        let g = b.build().unwrap();
        let d = Deployment::uniform(&g, 1);
        let mut snap = MetricsSnapshot::new();
        snap.insert_instances(s, vec![inst(0, 100, 100, 1000)]);
        snap.insert_instances(o, vec![inst(100, 100, 100, 1000)]);
        snap.set_source_rate(s, 100.0);
        (g, d, snap)
    }

    #[test]
    fn valid_snapshot_passes() {
        let (g, d, snap) = setup();
        assert!(snap.validate(&g, &d).is_ok());
    }

    #[test]
    fn missing_operator_fails() {
        let (g, d, mut snap) = setup();
        snap.remove_operator(OperatorId(1));
        assert!(matches!(
            snap.validate(&g, &d),
            Err(Ds2Error::MissingMetrics(OperatorId(1)))
        ));
    }

    #[test]
    fn parallelism_mismatch_fails() {
        let (g, mut d, snap) = setup();
        d.set(OperatorId(1), 2);
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn missing_source_rate_fails() {
        let (g, d, mut snap) = setup();
        snap.clear_source_rates();
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn non_finite_source_rate_fails() {
        let (g, d, mut snap) = setup();
        snap.set_source_rate(OperatorId(0), f64::NAN);
        assert!(snap.validate(&g, &d).is_err());
        snap.set_source_rate(OperatorId(0), -1.0);
        assert!(snap.validate(&g, &d).is_err());
    }

    #[test]
    fn observed_source_rate_reads_counters() {
        let (_, _, snap) = setup();
        assert_eq!(snap.observed_source_rate(OperatorId(0)), Some(100.0));
        assert_eq!(snap.observed_source_rate(OperatorId(9)), None);
    }

    #[test]
    fn state_bytes_round_trip_and_participate_in_equality() {
        let (_, _, mut snap) = setup();
        let (_, _, plain) = setup();
        assert_eq!(snap, plain);
        snap.set_state_bytes(OperatorId(1), 5e8);
        assert_eq!(snap.state_bytes(OperatorId(1)), Some(5e8));
        assert_eq!(snap.state_bytes(OperatorId(0)), None);
        assert_ne!(snap, plain, "state report must be observable");
        snap.clear();
        assert_eq!(snap.state_bytes(OperatorId(1)), None);
    }

    #[test]
    fn records_dropped_round_trip_and_participate_in_equality() {
        let (_, _, mut snap) = setup();
        let (_, _, plain) = setup();
        assert_eq!(snap.records_dropped(OperatorId(1)), None);
        snap.set_records_dropped(OperatorId(1), 42);
        assert_eq!(snap.records_dropped(OperatorId(1)), Some(42));
        assert_ne!(snap, plain, "dropped-record report must be observable");
        snap.clear();
        assert_eq!(snap.records_dropped(OperatorId(1)), None);
    }

    #[test]
    fn cleared_snapshot_recycles_instance_vectors() {
        let (g, d, mut snap) = setup();
        snap.clear();
        assert!(snap.operator(OperatorId(0)).is_none());
        assert_eq!(snap.source_rate(OperatorId(0)), None);
        // Refill through the slot path: contents identical to a fresh fill.
        let slot = snap.operator_slot(OperatorId(0));
        slot.instances.push(inst(0, 100, 100, 1000));
        let slot = snap.operator_slot(OperatorId(1));
        slot.instances.push(inst(100, 100, 100, 1000));
        snap.set_source_rate(OperatorId(0), 100.0);
        assert!(snap.validate(&g, &d).is_ok());
        assert_eq!(snap.observed_source_rate(OperatorId(0)), Some(100.0));
    }
}
