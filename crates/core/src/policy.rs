//! The DS2 scaling policy: optimal parallelism in a single graph traversal
//! (paper §3.2, Eq. 7–8).
//!
//! Given the logical graph, the offered rate of each source, and the true
//! processing/output rates of every operator instance, the policy computes
//! for each operator the minimum number of instances that can sustain all
//! source rates, assuming linear scaling of true rates. The computation is a
//! single pass over the operators in topological order: each operator's
//! optimal output rate `o[λo]*` (Eq. 8) feeds the target rate of its
//! downstream operators (Eq. 7).
//!
//! # Hot-path API
//!
//! The paper positions the policy as cheap enough to run on *every* metrics
//! window. [`Ds2Policy::evaluate_into`] makes that true of this
//! implementation: it writes into a caller-owned [`PolicyWorkspace`] whose
//! dense per-operator buffers (indexed by [`OperatorId::index`]) are cleared
//! by epoch-stamping and reused across windows, so an evaluation performs
//! **zero heap allocations** once the workspace has warmed up on a graph.
//! [`Ds2Policy::evaluate`] remains as a convenience wrapper that allocates a
//! fresh workspace per call.

use crate::deployment::Deployment;
use crate::error::Ds2Error;
use crate::graph::{LogicalGraph, OperatorId};
use crate::opmap::OpMap;
use crate::snapshot::MetricsSnapshot;

/// Tolerance used when taking ceilings of rate ratios, so that a target that
/// is *exactly* `k` times the per-instance capacity yields `k` instances
/// despite floating-point rounding.
const CEIL_EPSILON: f64 = 1e-9;

/// Configuration of the DS2 policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Lower bound on prescribed parallelism (default 1).
    pub min_parallelism: usize,
    /// Upper bound on prescribed parallelism (e.g. available slots), if any.
    pub max_parallelism: Option<usize>,
    /// Whether to prescribe parallelism for source operators too.
    ///
    /// Eq. 7 covers non-sources only (`n <= i < m`); when enabled, sources
    /// are scaled by the analogous rule `ceil(λsrc / (o[λo]/p))` so that they
    /// have enough capacity to generate the offered rate. When disabled
    /// (paper behaviour) sources keep their current parallelism.
    pub scale_sources: bool,
    /// Multiplier applied to computed instance requirements before the
    /// ceiling, used by the Scaling Manager's target-rate-ratio correction
    /// (§4.2.1) to compensate for overheads invisible to instrumentation.
    pub requirement_boost: f64,
    /// When set, the boost applies only to operators whose *unaccounted*
    /// window fraction (time outside useful work and measured waits) is at
    /// or above this threshold. Uncaptured overheads reveal themselves as
    /// exactly such a gap; boosting every operator indiscriminately would
    /// also bump healthy ones whose requirement merely sits close to a
    /// ceiling boundary.
    pub boost_unaccounted_threshold: Option<f64>,
    /// Per-class true-rate pass: when enabled, the policy inspects the
    /// per-instance input shares of every loaded operator and emits a
    /// [`SplitHint`] when the hottest instance's share exceeds what *any*
    /// parallelism can absorb — the hot-key failure mode where Eq. 7 keeps
    /// prescribing more instances while the hot share pins one of them.
    /// Default off: the classic parallelism-only policy.
    pub detect_splits: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            min_parallelism: 1,
            max_parallelism: None,
            scale_sources: false,
            requirement_boost: 1.0,
            boost_unaccounted_threshold: Some(0.05),
            detect_splits: false,
        }
    }
}

/// A policy recommendation to split an operator's hottest key class across
/// multiple instances — emitted (when [`PolicyConfig::detect_splits`] is
/// on) for operators whose hot-instance input share exceeds the
/// per-instance capacity at the target rate: a situation no parallelism
/// change can fix, only spreading the hot class can.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitHint {
    /// The operator whose hot class should split.
    pub op: OperatorId,
    /// Instances the hot class must be spread over so its per-instance
    /// rate fits the measured capacity: `ceil(hot_share × rt / capacity)`.
    pub classes: usize,
    /// The hottest instance's measured input share.
    pub hot_share: f64,
}

/// Per-operator diagnostic detail accompanying a policy decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorEstimate {
    /// Target input rate `rt = Σ A_ji · o_j[λo]*` in records/second.
    pub target_rate: f64,
    /// Average true processing rate per instance, `o[λp] / p`.
    pub capacity_per_instance: f64,
    /// Operator selectivity `o[λo] / o[λp]`.
    pub selectivity: f64,
    /// Optimal output rate `o[λo]*` (Eq. 8) given optimal upstream scaling.
    pub optimal_output_rate: f64,
    /// Real-valued instance requirement before ceiling and clamping.
    pub raw_requirement: f64,
    /// Final prescribed parallelism `π` (Eq. 7).
    pub parallelism: usize,
}

/// The outcome of one policy evaluation: a full provisioning plan.
#[derive(Debug, Clone, Default)]
pub struct PolicyOutput {
    /// Prescribed parallelism for every operator.
    pub plan: Deployment,
    /// Per-operator estimates, densely indexed by operator id.
    pub estimates: OpMap<OperatorEstimate>,
    /// Hot-class split recommendations, in topological order. Always empty
    /// unless [`PolicyConfig::detect_splits`] is enabled.
    pub splits: Vec<SplitHint>,
}

impl PolicyOutput {
    /// Total workers needed when operators share a global worker pool, as in
    /// Timely Dataflow (§4.3): the sum of per-operator optimal parallelism.
    ///
    /// An operator needing `π` dedicated instances needs `π × 100%` compute;
    /// with round-robin sharing the pool must provide the sum.
    pub fn timely_total_workers(&self, graph: &LogicalGraph) -> usize {
        graph
            .operators()
            .filter(|op| !graph.is_source(*op))
            .map(|op| self.plan.parallelism(op))
            .sum()
    }
}

/// Caller-owned scratch space for [`Ds2Policy::evaluate_into`].
///
/// Holds the dense per-operator buffers one evaluation needs — the Eq. 8
/// `o[λo]*` propagation vector plus the [`PolicyOutput`] (plan and
/// estimates) itself. Buffers are sized to the graph's operator count on
/// first use and cleared by epoch-stamping afterwards, so repeated
/// evaluations on graphs of the same (or smaller) size never touch the
/// allocator. One workspace can be reused across *different* graphs; it
/// simply grows to the largest operator count it has seen.
#[derive(Debug, Clone, Default)]
pub struct PolicyWorkspace {
    /// `o_j[λo]*` per operator, filled in topological order (Eq. 8).
    optimal_output: Vec<f64>,
    /// The evaluation result, rebuilt in place.
    out: PolicyOutput,
}

impl PolicyWorkspace {
    /// Creates an empty workspace (buffers grow on first evaluation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for graphs of `n` operators.
    pub fn with_len(n: usize) -> Self {
        let mut ws = Self::default();
        ws.reset(n);
        ws
    }

    /// Clears the buffers and pins them to `n` operators.
    fn reset(&mut self, n: usize) {
        self.optimal_output.clear();
        self.optimal_output.resize(n, 0.0);
        self.out.plan.reset(n);
        self.out.estimates.clear();
        self.out.estimates.grow(n);
        self.out.splits.clear();
    }

    /// The result of the most recent evaluation.
    pub fn output(&self) -> &PolicyOutput {
        &self.out
    }

    /// Consumes the workspace, yielding the most recent evaluation result.
    pub fn into_output(self) -> PolicyOutput {
        self.out
    }
}

/// The DS2 scaling policy (Eq. 7–8).
#[derive(Debug, Clone, Default)]
pub struct Ds2Policy {
    /// Policy configuration.
    pub config: PolicyConfig,
}

impl Ds2Policy {
    /// Creates a policy with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a policy with the given configuration.
    pub fn with_config(config: PolicyConfig) -> Self {
        Self { config }
    }

    /// Computes the optimal provisioning plan for one metrics window.
    ///
    /// Runs in `O(V + E)`: a single traversal of the graph in topological
    /// order, which is the property that lets DS2 configure *all* operators
    /// in the same scaling decision (§3.2).
    ///
    /// Convenience wrapper over [`Ds2Policy::evaluate_into`] that allocates
    /// a fresh [`PolicyWorkspace`] per call; callers evaluating every
    /// metrics window should hold a workspace and use `evaluate_into`.
    ///
    /// # Errors
    ///
    /// Returns [`Ds2Error::MissingMetrics`] when an operator with a non-zero
    /// target rate has reported no metrics, [`Ds2Error::UndefinedRates`] when
    /// such an operator reported no useful time (so Eq. 1–2 are undefined),
    /// and [`Ds2Error::InvalidMetrics`] for non-finite inputs.
    pub fn evaluate(
        &self,
        graph: &LogicalGraph,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> Result<PolicyOutput, Ds2Error> {
        let mut ws = PolicyWorkspace::new();
        self.evaluate_into(graph, snapshot, current, &mut ws)?;
        Ok(ws.into_output())
    }

    /// Like [`Ds2Policy::evaluate`], but writes the result into a
    /// caller-owned [`PolicyWorkspace`] and returns a reference to it.
    ///
    /// After the workspace has warmed up on a graph (one evaluation), this
    /// performs no heap allocation: the dense per-operator buffers are
    /// cleared by epoch-stamping and overwritten in place, which is what
    /// keeps the decision latency negligible relative to the metrics window
    /// on large dataflows.
    pub fn evaluate_into<'ws>(
        &self,
        graph: &LogicalGraph,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
        ws: &'ws mut PolicyWorkspace,
    ) -> Result<&'ws PolicyOutput, Ds2Error> {
        self.evaluate_boosted_into(graph, snapshot, current, self.config.requirement_boost, ws)
    }

    /// [`Ds2Policy::evaluate_into`] with the requirement boost supplied as a
    /// parameter, overriding `config.requirement_boost`.
    ///
    /// This is the Scaling Manager's target-rate-ratio correction path
    /// (§4.2.1): the manager re-runs the policy with a boost learned from
    /// the achieved/target ratio without rebuilding (or cloning) the policy
    /// configuration per decision.
    pub fn evaluate_boosted_into<'ws>(
        &self,
        graph: &LogicalGraph,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
        boost: f64,
        ws: &'ws mut PolicyWorkspace,
    ) -> Result<&'ws PolicyOutput, Ds2Error> {
        if !(boost.is_finite() && boost > 0.0) {
            return Err(Ds2Error::InvalidMetrics(format!(
                "requirement boost {boost} must be finite and positive"
            )));
        }

        ws.reset(graph.len());

        for op in graph.topological_order() {
            if graph.is_source(op) {
                let rate = snapshot
                    .source_rate(op)
                    .ok_or(Ds2Error::MissingMetrics(op))?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(Ds2Error::InvalidMetrics(format!(
                        "source {op} offered rate {rate} is invalid"
                    )));
                }
                // Base case of Eq. 8: a source's optimal output rate is the
                // externally offered rate λsrc.
                ws.optimal_output[op.index()] = rate;
                let (parallelism, capacity, raw) =
                    self.source_parallelism(op, rate, boost, snapshot, current)?;
                ws.out.estimates.insert(
                    op,
                    OperatorEstimate {
                        target_rate: rate,
                        capacity_per_instance: capacity,
                        selectivity: 1.0,
                        optimal_output_rate: rate,
                        raw_requirement: raw,
                        parallelism,
                    },
                );
                ws.out.plan.set(op, parallelism);
                continue;
            }

            // Target rate rt = Σ_{j upstream} w_ji · o_j[λo]* (Eq. 7 numerator,
            // generalised with edge weights; the paper's model is w = 1).
            let mut target_rate = 0.0;
            for edge in graph.upstream_edges(op) {
                // Topological order guarantees the upstream slot was written.
                target_rate += edge.weight * ws.optimal_output[edge.from.index()];
            }

            if target_rate <= 0.0 {
                // No load will ever reach this operator under the optimal
                // plan; the minimum deployment suffices and it emits nothing.
                let parallelism = self.clamp(self.config.min_parallelism as f64);
                ws.optimal_output[op.index()] = 0.0;
                ws.out.estimates.insert(
                    op,
                    OperatorEstimate {
                        target_rate: 0.0,
                        capacity_per_instance: 0.0,
                        selectivity: 0.0,
                        optimal_output_rate: 0.0,
                        raw_requirement: self.config.min_parallelism as f64,
                        parallelism,
                    },
                );
                ws.out.plan.set(op, parallelism);
                continue;
            }

            let metrics = snapshot.operator(op).ok_or(Ds2Error::MissingMetrics(op))?;
            let p = if metrics.parallelism() > 0 {
                metrics.parallelism()
            } else {
                current.parallelism(op)
            };
            if p == 0 {
                return Err(Ds2Error::InvalidDeployment(format!(
                    "{op} has zero current parallelism"
                )));
            }
            let (agg_lp, agg_lo) = metrics
                .aggregate_true_rates()
                .ok_or(Ds2Error::UndefinedRates(op))?;
            if agg_lp <= 0.0 {
                return Err(Ds2Error::UndefinedRates(op));
            }
            if !(agg_lp.is_finite() && agg_lo.is_finite()) {
                return Err(Ds2Error::InvalidMetrics(format!(
                    "{op} has non-finite aggregate rates"
                )));
            }

            // Eq. 7: π = ceil( rt / (o[λp]/p) ), with the manager's boost
            // folded into the requirement before the ceiling. The boost is
            // targeted at operators exhibiting uninstrumented overheads
            // when a threshold is set. With no boost in effect the gate's
            // outcome is 1.0 either way, so the unaccounted-fraction pass
            // over the instances is skipped entirely.
            let op_boost = if boost == 1.0 {
                1.0
            } else {
                match self.config.boost_unaccounted_threshold {
                    Some(t) if metrics.mean_unaccounted_fraction() < t => 1.0,
                    _ => boost,
                }
            };
            let capacity_per_instance = agg_lp / p as f64;
            let raw_requirement = op_boost * target_rate / capacity_per_instance;
            let parallelism = self.clamp(raw_requirement);

            // Eq. 8: o[λo]* = (o[λo]/o[λp]) · rt — the operator's output when
            // it keeps up with its (optimally provisioned) input.
            let selectivity = agg_lo / agg_lp;
            let optimal_output_rate = selectivity * target_rate;

            ws.optimal_output[op.index()] = optimal_output_rate;
            ws.out.estimates.insert(
                op,
                OperatorEstimate {
                    target_rate,
                    capacity_per_instance,
                    selectivity,
                    optimal_output_rate,
                    raw_requirement,
                    parallelism,
                },
            );
            ws.out.plan.set(op, parallelism);

            // Per-class pass (multi-dimensional model): when the hottest
            // instance's input share is both clearly skewed and, at the
            // target rate, above what one instance can truly process, no
            // parallelism prescribed by Eq. 7 will relieve that instance —
            // the hot key class itself must be spread. Emit a hint sized so
            // the hot class's per-instance rate fits the measured capacity.
            if self.config.detect_splits && p > 1 {
                let total_in: u64 = metrics.instances.iter().map(|i| i.records_in).sum();
                let hot_in = metrics
                    .instances
                    .iter()
                    .map(|i| i.records_in)
                    .max()
                    .unwrap_or(0);
                if total_in > 0 {
                    let hot_share = hot_in as f64 / total_in as f64;
                    let hot_rate = hot_share * target_rate;
                    if hot_share > 1.5 / p as f64 && hot_rate > capacity_per_instance {
                        let classes = ((hot_rate / capacity_per_instance) - CEIL_EPSILON)
                            .ceil()
                            .max(2.0) as usize;
                        ws.out.splits.push(SplitHint {
                            op,
                            classes,
                            hot_share,
                        });
                    }
                }
            }
        }

        Ok(&ws.out)
    }

    /// Parallelism for a source: either kept as-is (paper behaviour) or
    /// scaled so the source has capacity to generate the offered rate.
    fn source_parallelism(
        &self,
        op: OperatorId,
        offered: f64,
        boost: f64,
        snapshot: &MetricsSnapshot,
        current: &Deployment,
    ) -> Result<(usize, f64, f64), Ds2Error> {
        let current_p = current.parallelism(op).max(1);
        if !self.config.scale_sources {
            return Ok((current_p, 0.0, current_p as f64));
        }
        let metrics = snapshot.operator(op).ok_or(Ds2Error::MissingMetrics(op))?;
        let p = metrics.parallelism().max(current_p);
        let agg_lo = metrics
            .aggregate_true_output_rate()
            .ok_or(Ds2Error::UndefinedRates(op))?;
        if agg_lo <= 0.0 {
            return Err(Ds2Error::UndefinedRates(op));
        }
        let capacity = agg_lo / p as f64;
        let raw = boost * offered / capacity;
        Ok((self.clamp(raw), capacity, raw))
    }

    fn clamp(&self, raw: f64) -> usize {
        let ceiled = (raw - CEIL_EPSILON).ceil().max(0.0) as usize;
        let lo = self.config.min_parallelism.max(1);
        let hi = self.config.max_parallelism.unwrap_or(usize::MAX);
        ceiled.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::rates::InstanceMetrics;

    /// Builds an instance that demonstrates `capacity` records/s of true
    /// processing rate and `selectivity` output per input, at `util`
    /// utilization of a 1 s window.
    fn inst(capacity: f64, selectivity: f64, util: f64) -> InstanceMetrics {
        let window_ns = 1_000_000_000u64;
        let useful_ns = (window_ns as f64 * util) as u64;
        let records_in = (capacity * util) as u64;
        let records_out = (capacity * selectivity * util) as u64;
        InstanceMetrics {
            records_in,
            records_out,
            useful_ns,
            window_ns,
            ..Default::default()
        }
    }

    /// The paper's Figure 2 dataflow: src -> o1 -> o2, target 40 rec/s.
    /// o1 is a bottleneck processing 10 rec/s at full utilization; o2
    /// processes the observed 10 rec/s in 5% of its time (true rate 200/s).
    #[test]
    fn figure2_example() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let o1 = b.operator("o1");
        let o2 = b.operator("o2");
        b.connect(src, o1);
        b.connect(o1, o2);
        let g = b.build().unwrap();

        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 40.0);
        snap.insert_instances(src, vec![inst(10.0, 1.0, 0.25)]);
        // o1: true processing rate 10/s (utilization 1.0), selectivity 5
        // (10 in -> 50 out would exceed o2's observed 100; the paper says o2
        // observes 100 rec/s processed, i.e. o1 emits 10 in / 100 out).
        snap.insert_instances(o1, vec![inst(10.0, 10.0, 1.0)]);
        // o2: processes 100 rec/s observed with true rate 200/s.
        snap.insert_instances(o2, vec![inst(200.0, 1.0, 0.5)]);

        let current = Deployment::uniform(&g, 1);
        let out = Ds2Policy::new().evaluate(&g, &snap, &current).unwrap();

        // o1 must scale 4x to handle 40 rec/s at 10 rec/s true rate.
        assert_eq!(out.plan.parallelism(o1), 4);
        // o1 then emits 400 rec/s; o2 true rate is 200/s per instance -> 2.
        assert_eq!(out.plan.parallelism(o2), 2);
        let e1 = out.estimates[&o1];
        assert!((e1.target_rate - 40.0).abs() < 1e-9);
        assert!((e1.optimal_output_rate - 400.0).abs() < 1e-9);
    }

    /// The paper's §5.2 word count: source 1M sentences/min, FlatMap capped
    /// at 100K sentences/min/instance, Count at 1M words/min/instance with
    /// 20 words per sentence. DS2 must prescribe 10 FlatMap and 20 Count in
    /// a single decision.
    #[test]
    fn heron_wordcount_single_step() {
        let mut b = GraphBuilder::new();
        let src = b.operator("source");
        let fm = b.operator("flat_map");
        let cnt = b.operator("count");
        b.connect(src, fm);
        b.connect(fm, cnt);
        let g = b.build().unwrap();

        // Use a 60-second window so per-minute counts are exact integers.
        let minute_ns = 60_000_000_000u64;
        let over_minute = |records_in: u64, records_out: u64, useful_frac: f64| InstanceMetrics {
            records_in,
            records_out,
            useful_ns: (minute_ns as f64 * useful_frac) as u64,
            window_ns: minute_ns,
            ..Default::default()
        };
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1_000_000.0 / 60.0);
        snap.insert_instances(src, vec![over_minute(0, 100_000, 0.1)]);
        // FlatMap: 100K sentences/min capacity, 20 words per sentence,
        // fully saturated (it is the bottleneck).
        snap.insert_instances(fm, vec![over_minute(100_000, 2_000_000, 1.0)]);
        // Count: 1M words/min capacity, selectivity 1, saturated too.
        snap.insert_instances(cnt, vec![over_minute(1_000_000, 1_000_000, 1.0)]);

        let current = Deployment::uniform(&g, 1);
        let out = Ds2Policy::new().evaluate(&g, &snap, &current).unwrap();
        assert_eq!(out.plan.parallelism(fm), 10);
        assert_eq!(out.plan.parallelism(cnt), 20);
        // Source keeps its parallelism (scale_sources = false).
        assert_eq!(out.plan.parallelism(src), 1);
    }

    #[test]
    fn exact_multiple_does_not_round_up() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        snap.insert_instances(src, vec![inst(1000.0, 1.0, 0.5)]);
        // Capacity exactly 250/s per instance: 1000/250 = 4.0 -> 4, not 5.
        snap.insert_instances(op, vec![inst(250.0, 1.0, 1.0)]);
        let out = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(op), 4);
    }

    #[test]
    fn multi_source_targets_sum() {
        // Two sources feed one join; target is the sum of both rates.
        let mut b = GraphBuilder::new();
        let s1 = b.operator("s1");
        let s2 = b.operator("s2");
        let j = b.operator("join");
        b.connect(s1, j);
        b.connect(s2, j);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(s1, 300.0);
        snap.set_source_rate(s2, 200.0);
        snap.insert_instances(s1, vec![inst(300.0, 1.0, 0.3)]);
        snap.insert_instances(s2, vec![inst(200.0, 1.0, 0.2)]);
        snap.insert_instances(j, vec![inst(100.0, 0.5, 1.0)]);
        let out = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        let e = out.estimates[&j];
        assert!((e.target_rate - 500.0).abs() < 1e-9);
        assert_eq!(out.plan.parallelism(j), 5);
        assert!((e.optimal_output_rate - 250.0).abs() < 1e-9);
    }

    #[test]
    fn downstream_of_scaled_operator_uses_optimal_rate() {
        // src(100/s) -> a (cap 50, sel 2) -> b (cap 100, sel 1).
        // a needs 2 instances and will emit 200/s once scaled; b must be
        // provisioned for 200/s (2 instances), not for a's current output.
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let a = b.operator("a");
        let c = b.operator("b");
        b.connect(src, a);
        b.connect(a, c);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        snap.insert_instances(a, vec![inst(50.0, 2.0, 1.0)]);
        snap.insert_instances(c, vec![inst(100.0, 1.0, 1.0)]);
        let out = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(a), 2);
        assert_eq!(out.plan.parallelism(c), 2);
    }

    #[test]
    fn scale_down_overprovisioned() {
        // Operator has 8 instances but the load needs 2.
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        // 8 instances, each true rate 50/s, each only 40% utilized (40% of
        // 50/s keeps the record counts integral).
        snap.insert_instances(op, vec![inst(50.0, 1.0, 0.4); 8]);
        let mut current = Deployment::uniform(&g, 1);
        current.set(op, 8);
        let out = Ds2Policy::new().evaluate(&g, &snap, &current).unwrap();
        assert_eq!(out.plan.parallelism(op), 2);
    }

    #[test]
    fn weighted_fanout_splits_target() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let l = b.operator("left");
        let r = b.operator("right");
        b.connect_weighted(src, l, 0.25);
        b.connect_weighted(src, r, 0.75);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 400.0);
        snap.insert_instances(src, vec![inst(400.0, 1.0, 0.4)]);
        snap.insert_instances(l, vec![inst(50.0, 1.0, 1.0)]);
        snap.insert_instances(r, vec![inst(50.0, 1.0, 1.0)]);
        let out = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(l), 2); // 100 / 50
        assert_eq!(out.plan.parallelism(r), 6); // 300 / 50
    }

    #[test]
    fn zero_target_uses_min_parallelism() {
        // A filter that drops everything: downstream sees zero target.
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let f = b.operator("filter");
        let d = b.operator("down");
        b.connect(src, f);
        b.connect(f, d);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        snap.insert_instances(f, vec![inst(200.0, 0.0, 0.5)]);
        // Downstream has no metrics at all: must still work since rt = 0.
        let mut current = Deployment::uniform(&g, 1);
        current.set(d, 5);
        let out = Ds2Policy::new().evaluate(&g, &snap, &current).unwrap();
        assert_eq!(out.plan.parallelism(d), 1);
        assert_eq!(out.estimates[&d].target_rate, 0.0);
    }

    #[test]
    fn undefined_rates_error() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        // op reported a window but zero useful time.
        snap.insert_instances(
            op,
            vec![InstanceMetrics {
                window_ns: 1_000_000_000,
                ..Default::default()
            }],
        );
        let err = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap_err();
        assert_eq!(err, Ds2Error::UndefinedRates(op));
    }

    #[test]
    fn missing_metrics_error() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        let err = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap_err();
        assert_eq!(err, Ds2Error::MissingMetrics(op));
    }

    #[test]
    fn max_parallelism_caps_plan() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 10_000.0);
        snap.insert_instances(src, vec![inst(10_000.0, 1.0, 0.5)]);
        snap.insert_instances(op, vec![inst(100.0, 1.0, 1.0)]);
        let policy = Ds2Policy::with_config(PolicyConfig {
            max_parallelism: Some(36),
            ..Default::default()
        });
        let out = policy
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(op), 36);
    }

    #[test]
    fn requirement_boost_scales_up() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        snap.insert_instances(src, vec![inst(1000.0, 1.0, 0.5)]);
        // 80% useful, no measured waits: a 20% unaccounted gap marks the
        // operator as suffering uninstrumented overheads, so it is boosted.
        snap.insert_instances(op, vec![inst(250.0, 1.0, 0.8)]);
        let policy = Ds2Policy::with_config(PolicyConfig {
            requirement_boost: 1.25,
            ..Default::default()
        });
        let out = policy
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        // 4.0 raw requirement boosted to 5.0.
        assert_eq!(out.plan.parallelism(op), 5);
    }

    #[test]
    fn boost_parameter_equals_boosted_config() {
        // The manager's no-clone path: `evaluate_boosted_into(…, b, …)` on a
        // boost-1.0 config must produce exactly what a config carrying
        // `requirement_boost = b` produces.
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        let op2 = b.operator("op2");
        b.connect(src, op);
        b.connect(op, op2);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        snap.insert_instances(src, vec![inst(1000.0, 1.0, 0.5)]);
        snap.insert_instances(op, vec![inst(250.0, 1.5, 0.8)]);
        snap.insert_instances(op2, vec![inst(400.0, 1.0, 0.9)]);
        let current = Deployment::uniform(&g, 1);

        for boost in [1.0, 1.25, 2.0, 3.7] {
            let via_config = Ds2Policy::with_config(PolicyConfig {
                requirement_boost: boost,
                scale_sources: true,
                ..Default::default()
            })
            .evaluate(&g, &snap, &current)
            .unwrap();
            let base = Ds2Policy::with_config(PolicyConfig {
                scale_sources: true,
                ..Default::default()
            });
            let mut ws = PolicyWorkspace::new();
            let via_param = base
                .evaluate_boosted_into(&g, &snap, &current, boost, &mut ws)
                .unwrap();
            assert_eq!(via_config.plan, via_param.plan, "boost {boost}");
            for o in g.operators() {
                assert_eq!(
                    via_config.estimates[&o], via_param.estimates[&o],
                    "boost {boost}: {o}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_evaluation() {
        // Same workspace driven across two different graphs and repeated
        // windows: every call must match a fresh `evaluate`.
        let mut ws = PolicyWorkspace::new();
        let policy = Ds2Policy::new();
        for n in [5usize, 3, 8] {
            let mut b = GraphBuilder::new();
            let mut prev = b.operator("src");
            let mut ids = vec![prev];
            for i in 1..n {
                let op = b.operator(format!("op{i}"));
                b.connect(prev, op);
                prev = op;
                ids.push(op);
            }
            let g = b.build().unwrap();
            let mut snap = MetricsSnapshot::new();
            snap.set_source_rate(ids[0], 1000.0);
            snap.insert_instances(ids[0], vec![inst(1000.0, 1.0, 0.5)]);
            for &op in &ids[1..] {
                snap.insert_instances(op, vec![inst(300.0, 1.0, 0.9)]);
            }
            let current = Deployment::uniform(&g, 2);
            let fresh = policy.evaluate(&g, &snap, &current).unwrap();
            let reused = policy.evaluate_into(&g, &snap, &current, &mut ws).unwrap();
            assert_eq!(fresh.plan, reused.plan);
            for op in g.operators() {
                assert_eq!(fresh.estimates[&op], reused.estimates[&op]);
            }
        }
    }

    #[test]
    fn boost_skips_fully_accounted_operators() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        snap.insert_instances(src, vec![inst(1000.0, 1.0, 0.5)]);
        // 80% useful and the remaining 20% is *measured* input wait: the
        // instrumentation fully explains the window, so no boost applies.
        let mut m = inst(250.0, 1.0, 0.8);
        m.wait_input_ns = m.window_ns - m.useful_ns;
        snap.insert_instances(op, vec![m]);
        let policy = Ds2Policy::with_config(PolicyConfig {
            requirement_boost: 1.25,
            ..Default::default()
        });
        let out = policy
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(op), 4, "boost must not apply");
    }

    #[test]
    fn scale_sources_prescribes_source_capacity() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        // Source instance can only generate 400/s of useful output.
        snap.insert_instances(src, vec![inst(400.0, 1.0, 1.0)]);
        snap.insert_instances(op, vec![inst(500.0, 1.0, 1.0)]);
        let policy = Ds2Policy::with_config(PolicyConfig {
            scale_sources: true,
            ..Default::default()
        });
        let out = policy
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        assert_eq!(out.plan.parallelism(src), 3); // ceil(1000/400)
        assert_eq!(out.plan.parallelism(op), 2); // ceil(1000/500)
    }

    #[test]
    fn timely_total_workers_sums_non_sources() {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let a = b.operator("a");
        let c = b.operator("b");
        b.connect(src, a);
        b.connect(a, c);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 100.0);
        snap.insert_instances(src, vec![inst(100.0, 1.0, 0.1)]);
        snap.insert_instances(a, vec![inst(50.0, 1.0, 1.0)]);
        snap.insert_instances(c, vec![inst(25.0, 1.0, 1.0)]);
        let out = Ds2Policy::new()
            .evaluate(&g, &snap, &Deployment::uniform(&g, 1))
            .unwrap();
        // a needs 2, b needs 4 -> 6 total workers.
        assert_eq!(out.timely_total_workers(&g), 6);
    }

    /// src(1000/s) -> op at p=4 with one instance pulling `hot_in` of the
    /// 1000 records seen this window; all instances run fully utilized so
    /// per-instance capacity is 250/s.
    fn skewed_setup(hot_in: u64) -> (LogicalGraph, MetricsSnapshot, Deployment, OperatorId) {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let op = b.operator("op");
        b.connect(src, op);
        let g = b.build().unwrap();
        let mut snap = MetricsSnapshot::new();
        snap.set_source_rate(src, 1000.0);
        snap.insert_instances(src, vec![inst(1000.0, 1.0, 0.5)]);
        let cold = (1000 - hot_in) / 3;
        let mk = |records_in: u64| InstanceMetrics {
            records_in,
            records_out: records_in,
            useful_ns: 1_000_000_000,
            window_ns: 1_000_000_000,
            ..Default::default()
        };
        snap.insert_instances(op, vec![mk(hot_in), mk(cold), mk(cold), mk(cold)]);
        let mut current = Deployment::uniform(&g, 1);
        current.set(op, 4);
        (g, snap, current, op)
    }

    #[test]
    fn split_hint_fires_on_hot_instance() {
        let (g, snap, current, op) = skewed_setup(700);
        let policy = Ds2Policy::with_config(PolicyConfig {
            detect_splits: true,
            ..Default::default()
        });
        let out = policy.evaluate(&g, &snap, &current).unwrap();
        // hot_share 0.7 > 1.5/4 and hot rate 700/s > 250/s capacity:
        // the hot class must spread over ceil(700/250) = 3 instances.
        assert_eq!(out.splits.len(), 1);
        let hint = out.splits[0];
        assert_eq!(hint.op, op);
        assert_eq!(hint.classes, 3);
        assert!((hint.hot_share - 0.7).abs() < 1e-12);
    }

    #[test]
    fn split_hint_off_by_default_and_plan_unchanged() {
        let (g, snap, current, _) = skewed_setup(700);
        let default_out = Ds2Policy::new().evaluate(&g, &snap, &current).unwrap();
        assert!(default_out.splits.is_empty(), "detect_splits defaults off");
        let split_out = Ds2Policy::with_config(PolicyConfig {
            detect_splits: true,
            ..Default::default()
        })
        .evaluate(&g, &snap, &current)
        .unwrap();
        // Detection is purely additive: the Eq. 7 plan is untouched.
        assert_eq!(default_out.plan, split_out.plan);
    }

    #[test]
    fn split_hint_silent_on_uniform_or_absorbable_load() {
        // Uniform shares: hot_share 0.25 < 1.5/4.
        let (g, snap, current, _) = skewed_setup(250);
        let policy = Ds2Policy::with_config(PolicyConfig {
            detect_splits: true,
            ..Default::default()
        });
        assert!(policy
            .evaluate(&g, &snap, &current)
            .unwrap()
            .splits
            .is_empty());
        // Skewed but absorbable: same shape at a tenth of the load, so the
        // hot class's 70/s fits one instance's 250/s capacity.
        let (g, mut snap, current, op) = skewed_setup(700);
        snap.set_source_rate(OperatorId(0), 100.0);
        let mk = |records_in: u64| InstanceMetrics {
            records_in,
            records_out: records_in,
            useful_ns: 100_000_000,
            window_ns: 1_000_000_000,
            ..Default::default()
        };
        snap.insert_instances(op, vec![mk(70), mk(10), mk(10), mk(10)]);
        assert!(policy
            .evaluate(&g, &snap, &current)
            .unwrap()
            .splits
            .is_empty());
    }

    #[test]
    fn workspace_reset_clears_stale_split_hints() {
        let (g, snap, current, _) = skewed_setup(700);
        let policy = Ds2Policy::with_config(PolicyConfig {
            detect_splits: true,
            ..Default::default()
        });
        let mut ws = PolicyWorkspace::new();
        policy.evaluate_into(&g, &snap, &current, &mut ws).unwrap();
        assert_eq!(ws.output().splits.len(), 1);
        let (g2, snap2, current2, _) = skewed_setup(250);
        policy
            .evaluate_into(&g2, &snap2, &current2, &mut ws)
            .unwrap();
        assert!(ws.output().splits.is_empty(), "stale hints must not leak");
    }
}
