//! Logical dataflow graphs (paper §3.1).
//!
//! A streaming computation is a directed acyclic graph `G = (V, E)` whose
//! vertices are *operators* and whose edges are data dependencies. Vertices
//! with no incoming edges are *sources*; vertices with no outgoing edges are
//! *sinks*. The logical graph is static: scaling decisions change only the
//! *physical* graph (how many instances run each operator), never `G` itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::Ds2Error;

/// Identifier of a logical operator within a [`LogicalGraph`].
///
/// Ids are dense indices assigned by [`GraphBuilder::operator`] in insertion
/// order; they are only meaningful relative to the graph that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperatorId(pub usize);

impl OperatorId {
    /// Returns the dense index of this operator.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An edge of the logical graph, with an optional routing weight.
///
/// The weight is the fraction of the upstream operator's output that flows
/// along this edge. The paper's model (Eq. 8) assumes every downstream
/// operator receives the full output of each upstream operator (`weight =
/// 1.0`, i.e. broadcast semantics on fan-out); weighted edges are a strict
/// generalisation for dataflows that split their output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Upstream operator.
    pub from: OperatorId,
    /// Downstream operator.
    pub to: OperatorId,
    /// Fraction of `from`'s output routed to `to` (in `(0, 1]`).
    pub weight: f64,
}

/// Builder for [`LogicalGraph`].
///
/// # Examples
///
/// ```
/// use ds2_core::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let src = b.operator("source");
/// let map = b.operator("flat_map");
/// let agg = b.operator("count");
/// b.connect(src, map);
/// b.connect(map, agg);
/// let graph = b.build().unwrap();
/// assert_eq!(graph.sources(), &[src]);
/// assert_eq!(graph.sinks(), &[agg]);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    names: Vec<String>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operator with the given human-readable name.
    pub fn operator(&mut self, name: impl Into<String>) -> OperatorId {
        let id = OperatorId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Adds a full-rate edge (`weight = 1.0`) from `from` to `to`.
    pub fn connect(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.connect_weighted(from, to, 1.0)
    }

    /// Adds an edge carrying `weight` of `from`'s output to `to`.
    pub fn connect_weighted(&mut self, from: OperatorId, to: OperatorId, weight: f64) -> &mut Self {
        self.edges.push(Edge { from, to, weight });
        self
    }

    /// Validates the graph and produces an immutable [`LogicalGraph`].
    ///
    /// Fails if the graph is empty, an edge references an unknown operator,
    /// an edge weight is outside `(0, 1]`, the graph has a cycle or a
    /// self-loop, there are duplicate edges, or the graph has no source or no
    /// sink.
    pub fn build(self) -> Result<LogicalGraph, Ds2Error> {
        LogicalGraph::from_parts(self.names, self.edges)
    }
}

/// An immutable, validated logical dataflow graph.
///
/// Construction via [`GraphBuilder`] guarantees the graph is a non-empty DAG
/// with at least one source and one sink, which is what the DS2 policy
/// (paper Eq. 7–8) requires: `0 < n < m` where `n` is the number of sources
/// and `m` the number of operators.
#[derive(Debug, Clone)]
pub struct LogicalGraph {
    names: Vec<String>,
    edges: Vec<Edge>,
    /// Outgoing edge indices per operator.
    out_edges: Vec<Vec<usize>>,
    /// Incoming edge indices per operator.
    in_edges: Vec<Vec<usize>>,
    /// Operator indices in a topological order (sources first).
    topo: Vec<usize>,
    sources: Vec<OperatorId>,
    sinks: Vec<OperatorId>,
}

impl LogicalGraph {
    fn from_parts(names: Vec<String>, edges: Vec<Edge>) -> Result<Self, Ds2Error> {
        let m = names.len();
        if m == 0 {
            return Err(Ds2Error::InvalidGraph("graph has no operators".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in &edges {
            if e.from.0 >= m || e.to.0 >= m {
                return Err(Ds2Error::InvalidGraph(format!(
                    "edge {} -> {} references unknown operator",
                    e.from, e.to
                )));
            }
            if e.from == e.to {
                return Err(Ds2Error::InvalidGraph(format!("self-loop on {}", e.from)));
            }
            if !(e.weight > 0.0 && e.weight <= 1.0) {
                return Err(Ds2Error::InvalidGraph(format!(
                    "edge {} -> {} has weight {} outside (0, 1]",
                    e.from, e.to, e.weight
                )));
            }
            if !seen.insert((e.from.0, e.to.0)) {
                return Err(Ds2Error::InvalidGraph(format!(
                    "duplicate edge {} -> {}",
                    e.from, e.to
                )));
            }
        }

        let mut out_edges = vec![Vec::new(); m];
        let mut in_edges = vec![Vec::new(); m];
        for (idx, e) in edges.iter().enumerate() {
            out_edges[e.from.0].push(idx);
            in_edges[e.to.0].push(idx);
        }

        // Kahn's algorithm: detects cycles and yields a topological order in
        // which sources come first.
        let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..m).filter(|&v| indeg[v] == 0).collect();
        let mut topo = Vec::with_capacity(m);
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            for &eidx in &out_edges[v] {
                let w = edges[eidx].to.0;
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if topo.len() != m {
            return Err(Ds2Error::InvalidGraph("graph contains a cycle".into()));
        }

        let sources: Vec<OperatorId> = (0..m)
            .filter(|&v| in_edges[v].is_empty())
            .map(OperatorId)
            .collect();
        let sinks: Vec<OperatorId> = (0..m)
            .filter(|&v| out_edges[v].is_empty())
            .map(OperatorId)
            .collect();
        if sources.len() == m {
            return Err(Ds2Error::InvalidGraph(
                "graph has no edges: every operator is both source and sink".into(),
            ));
        }

        Ok(Self {
            names,
            edges,
            out_edges,
            in_edges,
            topo,
            sources,
            sinks,
        })
    }

    /// Number of operators `m` in the graph.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the graph has no operators (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Human-readable name of an operator.
    pub fn name(&self, id: OperatorId) -> &str {
        &self.names[id.0]
    }

    /// Looks up an operator id by its name (first match).
    pub fn by_name(&self, name: &str) -> Option<OperatorId> {
        self.names.iter().position(|n| n == name).map(OperatorId)
    }

    /// All operator ids in insertion order.
    pub fn operators(&self) -> impl Iterator<Item = OperatorId> + '_ {
        (0..self.names.len()).map(OperatorId)
    }

    /// Operator ids in a topological order, sources first.
    pub fn topological_order(&self) -> impl Iterator<Item = OperatorId> + '_ {
        self.topo.iter().map(|&v| OperatorId(v))
    }

    /// Source operators (no upstream).
    pub fn sources(&self) -> &[OperatorId] {
        &self.sources
    }

    /// Sink operators (no downstream).
    pub fn sinks(&self) -> &[OperatorId] {
        &self.sinks
    }

    /// Returns `true` if `id` is a source.
    pub fn is_source(&self, id: OperatorId) -> bool {
        self.in_edges[id.0].is_empty()
    }

    /// Returns `true` if `id` is a sink.
    pub fn is_sink(&self, id: OperatorId) -> bool {
        self.out_edges[id.0].is_empty()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Upstream edges of `id` (edges whose `to` is `id`).
    pub fn upstream_edges(&self, id: OperatorId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges[id.0].iter().map(move |&e| &self.edges[e])
    }

    /// Downstream edges of `id` (edges whose `from` is `id`).
    pub fn downstream_edges(&self, id: OperatorId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges[id.0].iter().map(move |&e| &self.edges[e])
    }

    /// Upstream operator ids of `id`.
    pub fn upstream(&self, id: OperatorId) -> Vec<OperatorId> {
        self.upstream_edges(id).map(|e| e.from).collect()
    }

    /// Downstream operator ids of `id`.
    pub fn downstream(&self, id: OperatorId) -> Vec<OperatorId> {
        self.downstream_edges(id).map(|e| e.to).collect()
    }

    /// Builds a map from operator name to id for every operator.
    pub fn name_map(&self) -> BTreeMap<String, OperatorId> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), OperatorId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear3() -> (LogicalGraph, OperatorId, OperatorId, OperatorId) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o1 = b.operator("o1");
        let o2 = b.operator("o2");
        b.connect(s, o1);
        b.connect(o1, o2);
        (b.build().unwrap(), s, o1, o2)
    }

    #[test]
    fn builds_linear_graph() {
        let (g, s, o1, o2) = linear3();
        assert_eq!(g.len(), 3);
        assert_eq!(g.sources(), &[s]);
        assert_eq!(g.sinks(), &[o2]);
        assert!(g.is_source(s));
        assert!(!g.is_source(o1));
        assert!(g.is_sink(o2));
        assert_eq!(g.downstream(s), vec![o1]);
        assert_eq!(g.upstream(o2), vec![o1]);
        assert_eq!(g.name(o1), "o1");
        assert_eq!(g.by_name("o2"), Some(o2));
        assert_eq!(g.by_name("nope"), None);
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut b = GraphBuilder::new();
        let s1 = b.operator("s1");
        let s2 = b.operator("s2");
        let j = b.operator("join");
        let k = b.operator("sink");
        b.connect(s2, j);
        b.connect(s1, j);
        b.connect(j, k);
        let g = b.build().unwrap();
        let order: Vec<OperatorId> = g.topological_order().collect();
        let pos = |id: OperatorId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(s1) < pos(j));
        assert!(pos(s2) < pos(j));
        assert!(pos(j) < pos(k));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = GraphBuilder::new();
        let a = b.operator("a");
        let c = b.operator("b");
        b.connect(a, c);
        b.connect(c, a);
        assert!(matches!(b.build(), Err(Ds2Error::InvalidGraph(_))));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.operator("a");
        let _ = b.operator("b");
        b.connect(a, a);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = GraphBuilder::new();
        let a = b.operator("a");
        let c = b.operator("b");
        b.connect(a, c);
        b.connect(a, c);
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(GraphBuilder::new().build().is_err());
    }

    #[test]
    fn rejects_edgeless_graph() {
        let mut b = GraphBuilder::new();
        b.operator("a");
        b.operator("b");
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_bad_weight() {
        for w in [0.0, -1.0, 1.5, f64::NAN] {
            let mut b = GraphBuilder::new();
            let a = b.operator("a");
            let c = b.operator("b");
            b.connect_weighted(a, c, w);
            assert!(b.build().is_err(), "weight {w} should be rejected");
        }
    }

    #[test]
    fn rejects_unknown_operator_edge() {
        let mut b = GraphBuilder::new();
        let a = b.operator("a");
        b.connect(a, OperatorId(7));
        assert!(b.build().is_err());
    }

    #[test]
    fn diamond_fanout_edges() {
        let mut b = GraphBuilder::new();
        let s = b.operator("s");
        let l = b.operator("left");
        let r = b.operator("right");
        let k = b.operator("sink");
        b.connect_weighted(s, l, 0.5);
        b.connect_weighted(s, r, 0.5);
        b.connect(l, k);
        b.connect(r, k);
        let g = b.build().unwrap();
        assert_eq!(g.downstream(s).len(), 2);
        assert_eq!(g.upstream(k).len(), 2);
        let w: f64 = g.downstream_edges(s).map(|e| e.weight).sum();
        assert!((w - 1.0).abs() < 1e-12);
    }
}
