//! How fast is a DS2 scaling decision?
//!
//! The paper positions DS2's decision latency as negligible next to the
//! engine's redeployment time (§6); this bench quantifies it: one full
//! Eq. 7–8 evaluation over dataflows of growing size.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds2_core::deployment::Deployment;
use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use ds2_core::policy::{Ds2Policy, PolicyWorkspace};
use ds2_core::rates::InstanceMetrics;
use ds2_core::snapshot::MetricsSnapshot;

/// Builds a chain dataflow of `n` operators and a snapshot with
/// `instances` instances per operator.
fn chain_scenario(n: usize, instances: usize) -> (LogicalGraph, MetricsSnapshot, Deployment) {
    let mut b = GraphBuilder::new();
    let mut prev: Option<OperatorId> = None;
    let mut ids = Vec::new();
    for i in 0..n {
        let op = b.operator(format!("op{i}"));
        if let Some(p) = prev {
            b.connect(p, op);
        }
        prev = Some(op);
        ids.push(op);
    }
    let graph = b.build().unwrap();
    let mut snap = MetricsSnapshot::new();
    let mut parallelism = BTreeMap::new();
    for (i, &op) in ids.iter().enumerate() {
        parallelism.insert(op, instances);
        if i == 0 {
            snap.set_source_rate(op, 1_000_000.0);
            snap.insert_instances(
                op,
                vec![
                    InstanceMetrics {
                        records_out: 100_000,
                        useful_ns: 500_000_000,
                        window_ns: 1_000_000_000,
                        ..Default::default()
                    };
                    instances
                ],
            );
        } else {
            snap.insert_instances(
                op,
                vec![
                    InstanceMetrics {
                        records_in: 100_000,
                        records_out: 100_000,
                        useful_ns: 800_000_000,
                        window_ns: 1_000_000_000,
                        ..Default::default()
                    };
                    instances
                ],
            );
        }
    }
    (graph, snap, Deployment::from_map(parallelism))
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ds2_policy_evaluate");
    for &(ops, instances) in &[(5usize, 4usize), (20, 16), (100, 16), (500, 32)] {
        let (graph, snap, deployment) = chain_scenario(ops, instances);
        let policy = Ds2Policy::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ops}ops_x{instances}inst")),
            &(),
            |b, _| {
                b.iter(|| {
                    policy
                        .evaluate(
                            std::hint::black_box(&graph),
                            std::hint::black_box(&snap),
                            std::hint::black_box(&deployment),
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// The hot-path variant: a caller-owned workspace reused across windows, as
/// the Scaling Manager and the scenario matrix drive it. Zero allocations
/// per call after warm-up (see `crates/bench/tests/alloc_counting.rs`).
fn bench_policy_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("ds2_policy_evaluate_into");
    for &(ops, instances) in &[(5usize, 4usize), (20, 16), (100, 16), (500, 32)] {
        let (graph, snap, deployment) = chain_scenario(ops, instances);
        let policy = Ds2Policy::new();
        let mut ws = PolicyWorkspace::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ops}ops_x{instances}inst")),
            &(),
            |b, _| {
                b.iter(|| {
                    policy
                        .evaluate_into(
                            std::hint::black_box(&graph),
                            std::hint::black_box(&snap),
                            std::hint::black_box(&deployment),
                            &mut ws,
                        )
                        .unwrap()
                        .plan
                        .total_instances()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policy, bench_policy_into);
criterion_main!(benches);
