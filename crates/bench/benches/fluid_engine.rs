//! Simulator throughput: how much virtual time one wall-clock second buys.
//!
//! The experiment suite replays hours of cluster time; these benches keep
//! the fluid engine's tick cost honest.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use ds2_core::deployment::Deployment;
use ds2_core::graph::GraphBuilder;
use ds2_nexmark::profiles::{setup, QueryId, Target};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine};
use ds2_simulator::profile::OperatorProfile;
use ds2_simulator::source::SourceSpec;

fn wordcount_engine() -> FluidEngine {
    let mut b = GraphBuilder::new();
    let src = b.operator("source");
    let fm = b.operator("flat_map");
    let cnt = b.operator("count");
    b.connect(src, fm);
    b.connect(fm, cnt);
    let graph = b.build().unwrap();
    let mut profiles = BTreeMap::new();
    profiles.insert(fm, OperatorProfile::with_capacity(140_000.0, 2.0));
    profiles.insert(cnt, OperatorProfile::with_capacity(400_000.0, 1.0));
    let mut sources = BTreeMap::new();
    sources.insert(src, SourceSpec::constant(2_000_000.0));
    let mut d = Deployment::uniform(&graph, 1);
    d.set(fm, 16);
    d.set(cnt, 8);
    FluidEngine::new(graph, profiles, sources, d, EngineConfig::default())
}

fn bench_ticks(c: &mut Criterion) {
    c.bench_function("fluid_tick_wordcount_flink", |b| {
        let mut engine = wordcount_engine();
        b.iter(|| {
            std::hint::black_box(engine.tick());
        })
    });

    c.bench_function("fluid_tick_nexmark_q3_flink", |b| {
        let s = setup(QueryId::Q3, Target::Flink);
        let mut engine = FluidEngine::new(
            s.graph.clone(),
            s.profiles,
            s.sources,
            Deployment::uniform(&s.graph, 20),
            EngineConfig {
                mode: EngineMode::Flink,
                ..Default::default()
            },
        );
        b.iter(|| {
            std::hint::black_box(engine.tick());
        })
    });

    c.bench_function("fluid_tick_nexmark_q5_timely", |b| {
        let s = setup(QueryId::Q5, Target::Timely);
        let mut engine = FluidEngine::new(
            s.graph.clone(),
            s.profiles,
            s.sources,
            Deployment::uniform(&s.graph, 1),
            EngineConfig {
                mode: EngineMode::Timely,
                timely_workers: 4,
                ..Default::default()
            },
        );
        b.iter(|| {
            std::hint::black_box(engine.tick());
        })
    });

    c.bench_function("snapshot_collection_wordcount", |b| {
        let mut engine = wordcount_engine();
        engine.run_for(1_000_000_000);
        b.iter(|| {
            engine.run_for(100_000_000);
            std::hint::black_box(engine.collect_snapshot())
        })
    });
}

criterion_group!(benches, bench_ticks);
criterion_main!(benches);
