//! The real cost of the §4.1 instrumentation primitives, measured on this
//! machine: per-record counter updates (the hot path every operator
//! instance executes) and trace-event aggregation (the Timely path).

use criterion::{criterion_group, criterion_main, Criterion};
use ds2_core::graph::OperatorId;
use ds2_metrics::counters::{InstanceCounters, SharedCounters};
use ds2_metrics::trace::{TraceAggregator, TraceEvent, WorkerId};

fn bench_counters(c: &mut Criterion) {
    let shared = SharedCounters::new();
    c.bench_function("shared_counters_per_record", |b| {
        b.iter(|| {
            shared.add_records_in(std::hint::black_box(1));
            shared.add_processing(std::hint::black_box(1_000));
            shared.add_records_out(std::hint::black_box(2));
        })
    });

    c.bench_function("instance_counters_per_record", |b| {
        let mut counters = InstanceCounters::new(0);
        b.iter(|| {
            counters.add_records_in(std::hint::black_box(1));
            counters.add_processing(std::hint::black_box(1_000));
            counters.add_records_out(std::hint::black_box(2));
        })
    });

    c.bench_function("shared_counters_window_read", |b| {
        let shared = SharedCounters::new();
        shared.add_records_in(1_000_000);
        shared.add_processing(5_000_000);
        let start = shared.totals();
        b.iter(|| {
            let now = shared.totals();
            std::hint::black_box(now.window_since(&start, 0, 1_000_000_000))
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    c.bench_function("trace_aggregator_schedule_pair", |b| {
        let mut agg = TraceAggregator::new(0, true);
        let mut t = 0u64;
        b.iter(|| {
            agg.observe(TraceEvent::ScheduleStart {
                worker: WorkerId(0),
                operator: OperatorId(1),
                at_ns: t,
            });
            agg.observe(TraceEvent::ScheduleEnd {
                worker: WorkerId(0),
                operator: OperatorId(1),
                at_ns: t + 100,
                records_in: 10,
                records_out: 10,
            });
            t += 200;
        })
    });

    c.bench_function("trace_aggregator_spinning_filtered", |b| {
        let mut agg = TraceAggregator::new(0, true);
        let mut t = 0u64;
        b.iter(|| {
            agg.observe(TraceEvent::ScheduleStart {
                worker: WorkerId(0),
                operator: OperatorId(1),
                at_ns: t,
            });
            // A spinning activation: filtered before it reaches state.
            agg.observe(TraceEvent::ScheduleEnd {
                worker: WorkerId(0),
                operator: OperatorId(1),
                at_ns: t + 100,
                records_in: 0,
                records_out: 0,
            });
            t += 200;
        })
    });
}

criterion_group!(benches, bench_counters, bench_trace);
criterion_main!(benches);
