//! Macro-tick fast-forward vs exact tick-by-tick execution.
//!
//! One closed-loop DS2 run over a three-phase piecewise-constant workload
//! (base → surge → recede), the shape fast-forward was built for: each
//! constant phase settles into a steady state whose ticks the engine can
//! prove identical and replay. `exact` forces tick-by-tick execution —
//! the ratio between the two rows is the macro-tick speedup, and the
//! committed scenario-matrix baseline (`BENCH_scenario_matrix.json`)
//! tracks the same effect at matrix scale.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds2_core::deployment::Deployment;
use ds2_core::graph::GraphBuilder;
use ds2_core::manager::{ManagerConfig, ScalingManager};
use ds2_simulator::engine::{EngineConfig, FluidEngine, InstrumentationConfig};
use ds2_simulator::harness::{ClosedLoop, HarnessConfig};
use ds2_simulator::profile::{OperatorProfile, ProfileMap};
use ds2_simulator::source::{RateSchedule, SourceSpec};

/// A word-count-style chain driven by a three-phase schedule.
fn build_engine(fast_forward: bool) -> (FluidEngine, ScalingManager) {
    let mut b = GraphBuilder::new();
    let src = b.operator("source");
    let fm = b.operator("flat_map");
    let cnt = b.operator("count");
    let sink = b.operator("sink");
    b.connect(src, fm);
    b.connect(fm, cnt);
    b.connect(cnt, sink);
    let graph = b.build().unwrap();

    let mut profiles = ProfileMap::new();
    profiles.insert(fm, OperatorProfile::with_capacity(800.0, 2.0));
    profiles.insert(cnt, OperatorProfile::with_capacity(1_500.0, 0.5));
    profiles.insert(sink, OperatorProfile::with_capacity(2_000.0, 1.0));

    // Three constant phases: base load, a 2.5x surge, recede to 1.5x.
    let schedule = RateSchedule::steps(vec![
        (0, 1_000.0),
        (80_000_000_000, 2_500.0),
        (160_000_000_000, 1_500.0),
    ]);
    let mut sources = BTreeMap::new();
    sources.insert(src, SourceSpec::constant(1_000.0).with_schedule(schedule));

    let mut deployment = Deployment::uniform(&graph, 1);
    deployment.set(fm, 2);

    let engine = FluidEngine::new(
        graph.clone(),
        profiles,
        sources,
        deployment,
        EngineConfig {
            tick_ns: 25_000_000,
            reconfig_latency_ns: 10_000_000_000,
            instrumentation: InstrumentationConfig::disabled(),
            fast_forward,
            track_record_latency: false,
            ..Default::default()
        },
    );
    let manager = ScalingManager::new(
        graph,
        ManagerConfig {
            warmup_intervals: 1,
            ..Default::default()
        },
    );
    (engine, manager)
}

/// Runs the full 240-second closed loop once, returning the decision count
/// (kept observable so the work cannot be optimized away).
fn run_once(fast_forward: bool) -> usize {
    let (engine, manager) = build_engine(fast_forward);
    let mut the_loop = ClosedLoop::new(
        engine,
        manager,
        HarnessConfig {
            policy_interval_ns: 10_000_000_000,
            run_duration_ns: 240_000_000_000,
            ..Default::default()
        },
    );
    the_loop.run().decisions.len()
}

fn bench_fastforward(c: &mut Criterion) {
    // Sanity: both modes make identical decisions (the equivalence tests
    // check the full RunResult; here we only keep the bench honest).
    assert_eq!(run_once(true), run_once(false));

    let mut group = c.benchmark_group("engine_fastforward");
    for (label, fast_forward) in [("exact", false), ("fastforward", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| std::hint::black_box(run_once(fast_forward)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fastforward);
criterion_main!(benches);
