//! Throughput baseline for the threaded runtime's data plane: how many
//! records/s the batched, arena-routed, free-listed hot path moves through
//! real OS threads and bounded channels — single operator and a 3-operator
//! keyed chain under live DS2 control — plus the stop-the-world rescale
//! pause. The committed `BENCH_runtime_pipeline.json` is gated by
//! `bench_guard` in CI (calibrated by the single-op row, so the gate
//! cancels machine speed and trips only on structural hot-path
//! regressions: a reintroduced per-record clone, per-batch allocation, or
//! per-send bucket churn).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds2_core::deployment::Deployment;
use ds2_core::graph::GraphBuilder;
use ds2_core::manager::{ManagerConfig, ScalingManager};
use ds2_runtime::{run_control_loop, ControlConfig, JobSpec, Logic, RunningJob, StateEntry};

/// Key space of the keyed stage (power of two, so routing uses the mask
/// fast path the engine optimizes for).
const KEYS: u64 = 1024;

/// Source rate of the single-op calibration row.
const SINGLE_OP_RATE: f64 = 50_000_000.0;

/// Source rate of the 3-op keyed chain. Deliberately below what the 2+2
/// deployment can absorb: the job keeps up, DS2's true rates show the
/// over-provisioning, and the manager consolidates it live — the manager
/// refuses pure scale-downs while a job is *behind* target, so a
/// saturated source would never rescale at all.
const THREE_OP_RATE: f64 = 30_000_000.0;

/// One measured pipeline row.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Benchmark row name (`runtime_pipeline/...`).
    pub name: String,
    /// Records the terminal operator processed during the window.
    pub records: u64,
    /// Measurement window in seconds.
    pub elapsed_s: f64,
    /// Throughput at the terminal operator.
    pub records_per_s: f64,
    /// Live rescales DS2 applied during the window.
    pub rescales: u64,
    /// Worst stop-the-world pause across those rescales, in milliseconds.
    pub max_pause_ms: f64,
}

/// Keyed counting sink: dense per-key counts (the keyed state that
/// migrates on rescale) plus a shared atomic total the harness reads for
/// throughput. `process_batch` is overridden so the steady state costs one
/// virtual call, one atomic add, and `len` array bumps per batch.
struct KeyedCount {
    counts: Vec<u64>,
    sink: Arc<AtomicU64>,
}

impl Logic<u64> for KeyedCount {
    fn process(&mut self, r: u64, _out: &mut Vec<u64>) {
        self.counts[(r & (KEYS - 1)) as usize] += 1;
        self.sink.fetch_add(1, Ordering::Relaxed);
    }

    fn process_batch(&mut self, batch: &mut Vec<u64>, _out: &mut Vec<u64>) {
        for &r in batch.iter() {
            self.counts[(r & (KEYS - 1)) as usize] += 1;
        }
        self.sink.fetch_add(batch.len() as u64, Ordering::Relaxed);
        batch.clear();
    }

    fn drain_state(&mut self) -> Vec<StateEntry> {
        self.counts
            .iter_mut()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(k, c)| {
                (
                    k as u64,
                    Box::new(std::mem::take(c)) as Box<dyn ds2_runtime::StateValue>,
                )
            })
            .collect()
    }

    fn restore_state(&mut self, entries: Vec<StateEntry>) {
        for (k, v) in entries {
            self.counts[(k & (KEYS - 1)) as usize] +=
                *v.into_any().downcast::<u64>().expect("count state is u64");
        }
    }
}

fn keyed_count(sink: &Arc<AtomicU64>) -> impl Fn() -> Box<dyn Logic<u64>> + Send + Sync + 'static {
    let sink = Arc::clone(sink);
    move || {
        Box::new(KeyedCount {
            counts: vec![0; KEYS as usize],
            sink: Arc::clone(&sink),
        })
    }
}

/// Single-operator pipeline, parallelism 1, no controller: src -> count.
/// This is the CI calibration row — it moves with machine speed but is
/// insensitive to routing parallelism, so the ratio against the committed
/// baseline cancels hardware.
pub fn run_single_op(duration: Duration) -> PipelineResult {
    let mut b = GraphBuilder::new();
    let s = b.operator("src");
    let c = b.operator("count");
    b.connect(s, c);
    let g = b.build().unwrap();

    let sink = Arc::new(AtomicU64::new(0));
    let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
    spec.batch_size = 1024;
    spec.channel_capacity = 64;
    // Rate-limited well below single-core capacity (the saturated data
    // plane moves ~75M records/s through the 3-op chain), so the row is
    // reproducible across machines: the deadline-paced source holds the
    // spec within 2% as long as the hardware can keep up at all.
    spec.source(s, SINGLE_OP_RATE, |n| n & (KEYS - 1), |&r| r);
    spec.operator(c, keyed_count(&sink), |&r| r);

    let job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
    let (records, elapsed) = measure(&sink, duration);
    job.shutdown();
    PipelineResult {
        name: "runtime_pipeline/single_op".into(),
        records,
        elapsed_s: elapsed.as_secs_f64(),
        records_per_s: records as f64 / elapsed.as_secs_f64(),
        rescales: 0,
        max_pause_ms: 0.0,
    }
}

/// 3-operator keyed chain under live DS2 control: src -> map (stateless
/// pass-through) -> keyed count, deployed over-provisioned at parallelism
/// 2+2 (four worker threads) with a `ScalingManager` rescaling it live
/// while the harness measures sink throughput. DS2's true rates expose
/// the over-provisioning within the first intervals and the manager
/// consolidates the chain — the measured window includes the
/// stop-the-world pauses, exactly what a production rescale costs.
pub fn run_three_op_keyed(duration: Duration) -> PipelineResult {
    let mut b = GraphBuilder::new();
    let s = b.operator("src");
    let m = b.operator("map");
    let c = b.operator("count");
    b.connect(s, m);
    b.connect(m, c);
    let g = b.build().unwrap();

    let sink = Arc::new(AtomicU64::new(0));
    let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
    spec.batch_size = 1024;
    spec.channel_capacity = 64;
    spec.source(s, THREE_OP_RATE, |n| n & (KEYS - 1), |&r| r);
    spec.operator(
        m,
        || {
            Box::new(ds2_runtime::FnLogic::new(|r: u64, out: &mut Vec<u64>| {
                out.push(r)
            }))
        },
        |&r| r,
    );
    spec.operator(c, keyed_count(&sink), |&r| r);

    let mut deployment = Deployment::uniform(&g, 2);
    deployment.set(s, 1);
    let mut job = RunningJob::deploy(spec, deployment);
    let mut manager = ScalingManager::new(
        g,
        ManagerConfig {
            warmup_intervals: 1,
            min_change: 0,
            max_decisions: Some(2),
            ..Default::default()
        },
    );

    let t0 = Instant::now();
    let c0 = sink.load(Ordering::Relaxed);
    let events = run_control_loop(
        &mut job,
        &mut manager,
        &ControlConfig {
            interval: Duration::from_millis(500),
            duration,
            ..Default::default()
        },
    );
    let records = sink.load(Ordering::Relaxed) - c0;
    let elapsed = t0.elapsed();
    job.shutdown();

    let pauses: Vec<Duration> = events.iter().filter_map(|e| e.downtime).collect();
    PipelineResult {
        name: "runtime_pipeline/three_op_keyed".into(),
        records,
        elapsed_s: elapsed.as_secs_f64(),
        records_per_s: records as f64 / elapsed.as_secs_f64(),
        rescales: pauses.len() as u64,
        max_pause_ms: pauses
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .fold(0.0, f64::max),
    }
}

fn measure(sink: &Arc<AtomicU64>, duration: Duration) -> (u64, Duration) {
    // Short warmup lets threads spawn and caches fill before the window.
    std::thread::sleep(Duration::from_millis(200));
    let t0 = Instant::now();
    let c0 = sink.load(Ordering::Relaxed);
    std::thread::sleep(duration);
    let records = sink.load(Ordering::Relaxed) - c0;
    (records, t0.elapsed())
}

/// Serializes results in the flat `bench_guard` JSON format.
pub fn to_bench_json(results: &[PipelineResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"records\": {}, \"elapsed_s\": {:.3}, \
                 \"records_per_s\": {:.0}, \"rescales\": {}, \"max_pause_ms\": {:.1}}}",
                r.name, r.records, r.elapsed_s, r.records_per_s, r.rescales, r.max_pause_ms
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: a short single-op run moves real volume and serializes in
    /// the guard format.
    #[test]
    fn single_op_smoke_and_json_shape() {
        let r = run_single_op(Duration::from_millis(300));
        assert!(r.records > 10_000, "data plane barely moved: {}", r.records);
        let json = to_bench_json(&[r]);
        assert!(json.contains("\"name\": \"runtime_pipeline/single_op\""));
        assert!(json.contains("\"records_per_s\""));
    }
}
