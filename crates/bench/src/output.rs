//! Output helpers: aligned text tables for the console and CSV files under
//! `results/` for plotting.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Directory where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DS2_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Writes rows as a CSV file under the results directory, creating it if
/// needed. Returns the file path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Formats a rate in records/second compactly (e.g. `2.0M`, `500K`).
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.0}K", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Formats nanoseconds as human-readable time.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Checks whether a path exists (test helper).
pub fn exists(p: &Path) -> bool {
    p.exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long_header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long_header"));
        assert!(lines[2].starts_with("x     1"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(2_000_000.0), "2.00M");
        assert_eq!(fmt_rate(500_000.0), "500K");
        assert_eq!(fmt_rate(42.0), "42");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
        assert_eq!(fmt_ns(40_000_000), "40.0ms");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(999), "999ns");
    }

    #[test]
    fn csv_written() {
        std::env::set_var("DS2_RESULTS_DIR", "/tmp/ds2-test-results");
        let p = write_csv(
            "unit_test.csv",
            &["t", "v"],
            &[vec!["0".into(), "1".into()]],
        )
        .unwrap();
        assert!(exists(&p));
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "t,v\n0,1\n");
        std::env::remove_var("DS2_RESULTS_DIR");
    }
}
