//! Word-count scenarios: the Dhalion benchmark workload used in the
//! paper's Figures 1, 6 and 7 and the §4.2.3 skew experiment.
//!
//! Topology: `source -> flat_map -> count`. The flat map splits sentences
//! into words (selectivity = words per sentence); the count aggregates per
//! word.

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine, InstrumentationConfig};
use ds2_simulator::profile::{OperatorProfile, ProfileMap, ScalingCurve};
use ds2_simulator::source::{RateSchedule, SourceSpec};

/// Operator handles for a word-count scenario.
#[derive(Debug, Clone, Copy)]
pub struct WordCountOps {
    /// The sentence source.
    pub source: OperatorId,
    /// The sentence-splitting flat map.
    pub flat_map: OperatorId,
    /// The word counter.
    pub count: OperatorId,
}

/// Builds the word-count logical graph.
pub fn wordcount_graph() -> (LogicalGraph, WordCountOps) {
    let mut b = GraphBuilder::new();
    let source = b.operator("source");
    let flat_map = b.operator("flat_map");
    let count = b.operator("count");
    b.connect(source, flat_map);
    b.connect(flat_map, count);
    (
        b.build().expect("valid word-count graph"),
        WordCountOps {
            source,
            flat_map,
            count,
        },
    )
}

/// The Heron benchmark of §5.2 / Figures 1 and 6: 1 M sentences/minute,
/// FlatMap capped at 100 K sentences/minute/instance, Count capped at 1 M
/// words/minute/instance, 20 words per sentence. Optimal: (FlatMap 10,
/// Count 20).
pub fn heron_benchmark(initial: (usize, usize)) -> (FluidEngine, WordCountOps) {
    let (graph, ops) = wordcount_graph();
    let per_sec = 1.0 / 60.0;
    let source_rate = 1_000_000.0 * per_sec;
    let mut profiles = ProfileMap::new();
    profiles.insert(
        ops.flat_map,
        OperatorProfile::with_capacity(100_000.0 * per_sec, 20.0),
    );
    profiles.insert(
        ops.count,
        OperatorProfile::with_capacity(1_000_000.0 * per_sec, 1.0),
    );
    let mut sources = BTreeMap::new();
    sources.insert(ops.source, SourceSpec::constant(source_rate));
    let mut deployment = Deployment::uniform(&graph, 1);
    deployment.set(ops.flat_map, initial.0);
    deployment.set(ops.count, initial.1);
    let cfg = EngineConfig {
        mode: EngineMode::Heron,
        // 100 MiB operator queues at ~1 KB sentences: the queue-fill delay
        // that dominates Dhalion's reaction time.
        heron_per_instance_queue: 150_000.0,
        // Heron container redeploy.
        reconfig_latency_ns: 40_000_000_000,
        tick_ns: 50_000_000,
        instrumentation: InstrumentationConfig {
            enabled: true,
            per_record_cost_ns: 0.0, // Heron gathers these metrics by default
        },
        ..Default::default()
    };
    (
        FluidEngine::new(graph, profiles, sources, deployment, cfg),
        ops,
    )
}

/// The §5.3 Flink word count: phase 1 at 2 M sentences/s, phase 2 at 1 M/s
/// starting at `phase2_at_ns`. Costs follow a sigmoid scaling curve, so
/// the first scale-up lands short and is refined by re-measurement; Count
/// also carries a hidden (uninstrumented) overhead exercising the
/// target-rate-ratio refinement — the paper's final "+1 Count" step.
pub fn flink_dynamic_benchmark(
    initial: (usize, usize),
    phase2_at_ns: u64,
) -> (FluidEngine, WordCountOps) {
    let (graph, ops) = wordcount_graph();
    let mut profiles = ProfileMap::new();
    // FlatMap: calibrated so ~19 instances sustain 2 M/s and the first
    // decision from 10 instances lands at 14 (sigmoid knee at ~11.5) — the
    // paper's exact phase-1 steps.
    let fm_curve = ScalingCurve::Sigmoid {
        alpha: 0.43,
        knee: 11.5,
        width: 0.8,
    };
    let fm_cap_at_19 = 2_000_000.0 / 18.6;
    let fm_base_cost = 1e9 / (fm_cap_at_19 * fm_curve.multiplier(19));
    profiles.insert(
        ops.flat_map,
        OperatorProfile::simple(fm_base_cost, 2.0).with_scaling(fm_curve),
    );
    // Count: a 9% per-record overhead invisible to instrumentation. DS2's
    // rate-based plan (10 instances for the 4 M words/s of phase 1) leaves
    // it just short of the target; the manager's target-rate-ratio
    // correction then adds the final instance — the paper's "+1 Count"
    // refinement, in both phases.
    let cnt_measured_cap = 4_000_000.0 / 9.8;
    let cnt_base_cost = 1e9 / cnt_measured_cap;
    profiles.insert(
        ops.count,
        OperatorProfile::simple(cnt_base_cost, 1.0)
            .with_hidden(cnt_base_cost * 0.09, ScalingCurve::Linear),
    );
    let mut sources = BTreeMap::new();
    sources.insert(
        ops.source,
        SourceSpec::durable(0.0).with_schedule(RateSchedule::steps(vec![
            (0, 2_000_000.0),
            (phase2_at_ns, 1_000_000.0),
        ])),
    );
    let mut deployment = Deployment::uniform(&graph, 1);
    deployment.set(ops.flat_map, initial.0);
    deployment.set(ops.count, initial.1);
    let cfg = EngineConfig {
        mode: EngineMode::Flink,
        reconfig_latency_ns: 30_000_000_000, // the §5.3 savepoint+restore
        tick_ns: 10_000_000,
        per_instance_queue: 10_000.0,
        ..Default::default()
    };
    (
        FluidEngine::new(graph, profiles, sources, deployment, cfg),
        ops,
    )
}

/// The §4.2.3 skew experiment: the Flink word count with a fraction of all
/// words hashing to one hot Count instance. DS2 must converge (in ~2
/// steps) to the configuration that would be optimal without skew, without
/// over-provisioning — even though that configuration cannot meet the
/// target throughput.
pub fn skewed_flink_benchmark(
    skew_hot_fraction: f64,
    initial: (usize, usize),
) -> (FluidEngine, WordCountOps) {
    let (graph, ops) = wordcount_graph();
    let rate = 1_000_000.0;
    let mut profiles = ProfileMap::new();
    // Linear curves isolate the skew effect.
    profiles.insert(
        ops.flat_map,
        OperatorProfile::with_capacity(rate / 9.7, 2.0),
    );
    profiles.insert(
        ops.count,
        OperatorProfile::with_capacity(2.0 * rate / 15.7, 1.0).with_skew(skew_hot_fraction),
    );
    let mut sources = BTreeMap::new();
    sources.insert(ops.source, SourceSpec::constant(rate));
    let mut deployment = Deployment::uniform(&graph, 1);
    deployment.set(ops.flat_map, initial.0);
    deployment.set(ops.count, initial.1);
    let cfg = EngineConfig {
        mode: EngineMode::Flink,
        reconfig_latency_ns: 10_000_000_000,
        ..Default::default()
    };
    (
        FluidEngine::new(graph, profiles, sources, deployment, cfg),
        ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heron_benchmark_builds() {
        let (engine, ops) = heron_benchmark((1, 1));
        assert_eq!(engine.current_deployment().parallelism(ops.flat_map), 1);
        assert!(engine.graph().is_source(ops.source));
    }

    #[test]
    fn flink_benchmark_phases() {
        let (mut engine, ops) = flink_dynamic_benchmark((10, 5), 5_000_000_000);
        engine.run_for(1_000_000_000);
        let snap = engine.collect_snapshot();
        assert_eq!(snap.source_rate(ops.source), Some(2_000_000.0));
        engine.run_for(5_000_000_000);
        let snap = engine.collect_snapshot();
        assert_eq!(snap.source_rate(ops.source), Some(1_000_000.0));
    }

    #[test]
    fn flink_calibration_sustains_at_19_11() {
        // (19, 11) must be backpressure-free at 2 M/s.
        let (mut engine, ops) = flink_dynamic_benchmark((19, 11), u64::MAX);
        engine.run_for(30_000_000_000);
        let _ = engine.collect_snapshot();
        engine.run_for(10_000_000_000);
        let snap = engine.collect_snapshot();
        let obs = snap
            .operator(ops.source)
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!(obs > 1_950_000.0, "(19,11) must sustain 2M/s, got {obs}");
    }

    #[test]
    fn skew_limits_throughput_at_noskew_optimum() {
        // Without skew (16 count instances needed), 50% hot share means the
        // hot instance caps the job well below target.
        let (mut engine, ops) = skewed_flink_benchmark(0.5, (10, 16));
        engine.run_for(60_000_000_000);
        let _ = engine.collect_snapshot();
        engine.run_for(10_000_000_000);
        let snap = engine.collect_snapshot();
        let obs = snap
            .operator(ops.source)
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!(
            obs < 700_000.0,
            "skew must prevent reaching the 1M/s target, got {obs}"
        );
    }
}
