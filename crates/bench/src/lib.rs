//! # ds2-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the simulator substrate, plus ablations of the design choices:
//!
//! | Paper result | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (Dhalion alone) | [`experiments::heron`] | `fig1_dhalion` |
//! | Fig. 6 (DS2 vs Dhalion) | [`experiments::heron`] | `fig6_heron_comparison` |
//! | Fig. 7 (Flink dynamic) | [`experiments::flink_dynamic`] | `fig7_flink_dynamic` |
//! | Table 4 (convergence) | [`experiments::table4`] | `table4_convergence` |
//! | Fig. 8 (Flink accuracy) | [`experiments::accuracy`] | `fig8_flink_accuracy` |
//! | Fig. 9 (Timely accuracy) | [`experiments::accuracy`] | `fig9_timely_accuracy` |
//! | Fig. 10 (overhead) | [`experiments::overhead`] | `fig10_overhead` |
//! | §4.2.3 (skew) | [`experiments::skew`] | `skew_experiment` |
//! | ablations | [`experiments::ablations`] | `ablations` |
//!
//! Each binary prints the paper-style rows and writes CSV series under
//! `results/` (override with `DS2_RESULTS_DIR`). `run_all` executes the
//! whole suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod runners;
pub mod runtime_pipeline;
pub mod wordcount;
