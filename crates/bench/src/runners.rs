//! Shared experiment plumbing: canonical manager configurations and
//! closed-loop runners.

use ds2_core::manager::{ManagerConfig, ScalingManager};
use ds2_core::policy::PolicyConfig;
use ds2_simulator::engine::FluidEngine;
use ds2_simulator::harness::{ClosedLoop, HarnessConfig, RunResult};

use ds2_core::controller::ScalingController;

/// The §5.2 Heron settings: 60 s decision interval, no warm-up, one
/// interval activation, 1.0 target ratio.
pub fn heron_manager_config() -> ManagerConfig {
    ManagerConfig {
        policy_interval_ns: 60_000_000_000,
        warmup_intervals: 0,
        activation_intervals: 1,
        target_rate_ratio: 1.0,
        min_change: 1,
        policy: PolicyConfig {
            max_parallelism: Some(64),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The §5.3 Flink settings: 10 s decision interval, 30 s warm-up (three
/// intervals), one interval activation, 1.0 target ratio.
pub fn flink_dynamic_manager_config() -> ManagerConfig {
    ManagerConfig {
        policy_interval_ns: 10_000_000_000,
        warmup_intervals: 3,
        activation_intervals: 1,
        target_rate_ratio: 1.0,
        min_change: 1,
        policy: PolicyConfig {
            max_parallelism: Some(36),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The §5.4 convergence settings: 30 s decision interval, 30 s warm-up
/// (one interval), 1.0 target ratio.
pub fn convergence_manager_config() -> ManagerConfig {
    ManagerConfig {
        policy_interval_ns: 30_000_000_000,
        warmup_intervals: 1,
        activation_intervals: 1,
        target_rate_ratio: 1.0,
        min_change: 1,
        policy: PolicyConfig {
            max_parallelism: Some(36),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Runs DS2 (the Scaling Manager) against an engine.
pub fn run_ds2(
    engine: FluidEngine,
    manager_config: ManagerConfig,
    duration_ns: u64,
    timely: bool,
) -> RunResult {
    let interval = manager_config.policy_interval_ns;
    let manager = ScalingManager::new(engine.graph().clone(), manager_config);
    let mut the_loop = ClosedLoop::new(
        engine,
        manager,
        HarnessConfig {
            policy_interval_ns: interval,
            run_duration_ns: duration_ns,
            timeline_resolution_ns: 1_000_000_000,
            timely,
            faults: None,
        },
    );
    the_loop.run()
}

/// Runs an arbitrary controller against an engine.
pub fn run_controller<C: ScalingController>(
    engine: FluidEngine,
    controller: C,
    interval_ns: u64,
    duration_ns: u64,
) -> RunResult {
    let mut the_loop = ClosedLoop::new(
        engine,
        controller,
        HarnessConfig {
            policy_interval_ns: interval_ns,
            run_duration_ns: duration_ns,
            timeline_resolution_ns: 1_000_000_000,
            timely: false,
            faults: None,
        },
    );
    the_loop.run()
}
