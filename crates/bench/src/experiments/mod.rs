//! One module per paper table/figure, plus ablations.
//!
//! Each module exposes a `run`-style function taking a simulated duration
//! and returning structured results plus a printable report, so the thin
//! `src/bin/*` wrappers, the `run_all` binary, and the integration tests
//! can all share the same code paths (tests use shortened durations).

pub mod ablations;
pub mod accuracy;
pub mod flink_dynamic;
pub mod heron;
pub mod overhead;
pub mod skew;
pub mod table4;
