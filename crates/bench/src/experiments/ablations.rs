//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! 1. **Overhead model off** — with perfectly linear scaling curves DS2
//!    converges in a single step (the paper's Property 1/2 ideal); the 2–3
//!    step behaviour of Table 4 is entirely attributable to sub-linear
//!    scaling and hidden overheads.
//! 2. **Heron queue size** — Dhalion's reaction time scales with operator
//!    queue capacity (§5.2's explanation of its slowness).
//! 3. **Baseline shoot-out** — threshold and queueing-theory controllers on
//!    the word count, versus DS2 (Table 1's policy families, executable).
//! 4. **Timely summation rule** — §4.3's worker count (sum of per-operator
//!    requirements) versus the naive maximum.

use std::collections::BTreeMap;

use ds2_baselines::dhalion::{DhalionConfig, DhalionController};
use ds2_baselines::queueing::QueueingController;
use ds2_baselines::threshold::ThresholdController;
use ds2_core::deployment::Deployment;
use ds2_core::policy::Ds2Policy;
use ds2_nexmark::profiles::{setup, QueryId, Target};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine, InstrumentationConfig};
use ds2_simulator::profile::ScalingCurve;

use crate::output::render_table;
use crate::runners::{convergence_manager_config, run_controller, run_ds2};

/// Ablation 1: Table 4 cells with the overhead model disabled (linear
/// scaling, no hidden cost). Returns `(query, initial, steps)` rows.
pub fn linear_scaling_ablation(duration_ns: u64) -> (Vec<(QueryId, usize, usize)>, String) {
    let mut rows = Vec::new();
    for q in [QueryId::Q1, QueryId::Q3, QueryId::Q11] {
        for &init in &[8usize, 28] {
            let s = setup(q, Target::Flink);
            let mut profiles = s.profiles.clone();
            // Strip overheads: linear curves, no hidden cost. Recalibrate
            // the base cost to the capacity at p* so the optimum is
            // unchanged.
            for (_, p) in profiles.iter_mut() {
                let at_star = p.instrumented_cost_ns(s.expected);
                p.scaling = ScalingCurve::Linear;
                p.hidden_ns = 0.0;
                p.proc_ns = at_star - p.deser_ns - p.ser_ns * p.output.average_selectivity();
            }
            let deployment = Deployment::uniform(&s.graph, init);
            let cfg = EngineConfig {
                mode: EngineMode::Flink,
                tick_ns: 25_000_000,
                per_instance_queue: 20_000.0,
                reconfig_latency_ns: 30_000_000_000,
                ..Default::default()
            };
            let engine = FluidEngine::new(s.graph, profiles, s.sources, deployment, cfg);
            let result = run_ds2(engine, convergence_manager_config(), duration_ns, false);
            let steps = result.parallelism_steps(s.main_operator, init).len() - 1;
            rows.push((q, init, steps));
        }
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(q, i, s)| vec![q.name().into(), i.to_string(), s.to_string()])
        .collect();
    let report = format!(
        "Ablation 1 — linear scaling (overhead model off): steps collapse to <=1\n{}",
        render_table(&["query", "initial", "steps"], &table_rows)
    );
    (rows, report)
}

/// Ablation 2: Dhalion reaction time vs Heron queue capacity.
pub fn heron_queue_ablation(duration_ns: u64) -> (Vec<(f64, Option<f64>)>, String) {
    let mut rows = Vec::new();
    for &queue in &[250_000.0f64, 1_000_000.0, 4_000_000.0] {
        let (graph, ops) = crate::wordcount::wordcount_graph();
        let per_sec = 1.0 / 60.0;
        let mut profiles = ds2_simulator::profile::ProfileMap::new();
        profiles.insert(
            ops.flat_map,
            ds2_simulator::profile::OperatorProfile::with_capacity(100_000.0 * per_sec, 20.0),
        );
        profiles.insert(
            ops.count,
            ds2_simulator::profile::OperatorProfile::with_capacity(1_000_000.0 * per_sec, 1.0),
        );
        let mut sources = BTreeMap::new();
        sources.insert(
            ops.source,
            ds2_simulator::source::SourceSpec::constant(1_000_000.0 * per_sec),
        );
        let mut deployment = Deployment::uniform(&graph, 1);
        deployment.set(ops.flat_map, 1);
        deployment.set(ops.count, 1);
        let cfg = EngineConfig {
            mode: EngineMode::Heron,
            heron_per_instance_queue: queue,
            reconfig_latency_ns: 40_000_000_000,
            tick_ns: 50_000_000,
            instrumentation: InstrumentationConfig {
                enabled: true,
                per_record_cost_ns: 0.0,
            },
            ..Default::default()
        };
        let engine = FluidEngine::new(graph.clone(), profiles, sources, deployment, cfg);
        let controller = DhalionController::new(graph, DhalionConfig::default());
        let result = run_controller(engine, controller, 60_000_000_000, duration_ns);
        let first = result.decisions.first().map(|d| d.at_ns as f64 / 1e9);
        rows.push((queue, first));
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(q, t)| {
            vec![
                format!("{:.0}K", q / 1e3),
                t.map(|t| format!("{t:.0}s")).unwrap_or("never".into()),
            ]
        })
        .collect();
    let report = format!(
        "Ablation 2 — Dhalion first reaction vs Heron queue capacity\n{}",
        render_table(&["queue/instance (records)", "first decision"], &table_rows)
    );
    (rows, report)
}

/// Ablation 3: controller shoot-out on the Flink word count.
pub fn controller_shootout(duration_ns: u64) -> String {
    let mk_engine = || {
        let (engine, ops) = crate::wordcount::skewed_flink_benchmark(0.0, (1, 1));
        (engine, ops)
    };

    let mut rows = Vec::new();
    // DS2.
    {
        let (engine, ops) = mk_engine();
        let cfg = ds2_core::manager::ManagerConfig {
            policy_interval_ns: 10_000_000_000,
            warmup_intervals: 1,
            min_change: 1,
            ..Default::default()
        };
        let result = run_ds2(engine, cfg, duration_ns, false);
        rows.push(vec![
            "ds2".to_string(),
            result.decisions.len().to_string(),
            result
                .final_deployment
                .parallelism(ops.flat_map)
                .to_string(),
            result.final_deployment.parallelism(ops.count).to_string(),
            format!("{:.2}", result.final_achieved_ratio(20)),
        ]);
    }
    // Threshold.
    {
        let (engine, ops) = mk_engine();
        let controller = ThresholdController::with_defaults(engine.graph().clone());
        let result = run_controller(engine, controller, 10_000_000_000, duration_ns);
        rows.push(vec![
            "threshold".to_string(),
            result.decisions.len().to_string(),
            result
                .final_deployment
                .parallelism(ops.flat_map)
                .to_string(),
            result.final_deployment.parallelism(ops.count).to_string(),
            format!("{:.2}", result.final_achieved_ratio(20)),
        ]);
    }
    // Queueing theory.
    {
        let (engine, ops) = mk_engine();
        let controller = QueueingController::with_defaults(engine.graph().clone());
        let result = run_controller(engine, controller, 10_000_000_000, duration_ns);
        rows.push(vec![
            "queueing".to_string(),
            result.decisions.len().to_string(),
            result
                .final_deployment
                .parallelism(ops.flat_map)
                .to_string(),
            result.final_deployment.parallelism(ops.count).to_string(),
            format!("{:.2}", result.final_achieved_ratio(20)),
        ]);
    }
    format!(
        "Ablation 3 — controller shoot-out (Flink word count, 1M/s; optimal fm=10, cnt=16)\n{}",
        render_table(
            &["controller", "decisions", "flat_map", "count", "achieved"],
            &rows
        )
    )
}

/// Ablation 4: the §4.3 summation rule vs the naive per-operator maximum
/// on Timely.
pub fn timely_rule_ablation(duration_ns: u64) -> String {
    let mut rows = Vec::new();
    for q in [QueryId::Q3, QueryId::Q5] {
        // Indicated plan from a generous run.
        let s = setup(q, Target::Timely);
        let graph = s.graph.clone();
        let cfg = EngineConfig {
            mode: EngineMode::Timely,
            timely_workers: 16,
            tick_ns: 10_000_000,
            ..Default::default()
        };
        let mut engine = FluidEngine::new(
            s.graph,
            s.profiles,
            s.sources,
            Deployment::uniform(&graph, 1),
            cfg,
        );
        engine.run_for(10_000_000_000);
        let _ = engine.collect_snapshot();
        engine.run_for(20_000_000_000);
        let snap = engine.collect_snapshot();
        let out = Ds2Policy::new()
            .evaluate(&graph, &snap, &engine.current_deployment())
            .expect("policy evaluates");
        let sum_rule = out.timely_total_workers(&graph);
        let max_rule = graph
            .operators()
            .filter(|op| !graph.is_source(*op))
            .map(|op| out.plan.parallelism(op))
            .max()
            .unwrap_or(1);

        // Run both configurations and compare epoch completion.
        let frac_within = |workers: usize| {
            let s = setup(q, Target::Timely);
            let cfg = EngineConfig {
                mode: EngineMode::Timely,
                timely_workers: workers,
                tick_ns: 10_000_000,
                ..Default::default()
            };
            let mut engine = FluidEngine::new(
                s.graph.clone(),
                s.profiles,
                s.sources,
                Deployment::uniform(&s.graph, 1),
                cfg,
            );
            engine.run_for(duration_ns);
            1.0 - engine.epochs().recorder().fraction_above(1_000_000_000)
        };
        rows.push(vec![
            q.name().to_string(),
            format!("{sum_rule} ({:.0}% <=1s)", frac_within(sum_rule) * 100.0),
            format!("{max_rule} ({:.0}% <=1s)", frac_within(max_rule) * 100.0),
        ]);
    }
    format!(
        "Ablation 4 — Timely worker count: §4.3 summation vs naive max\n{}",
        render_table(&["query", "sum rule", "max rule"], &rows)
    )
}
