//! Table 4: DS2 convergence steps for the Nexmark queries on Flink (§5.4).
//!
//! For each query and each initial parallelism in {8, 12, 16, 20, 24, 28},
//! DS2 runs closed-loop with the §5.4 settings; the cell reports the
//! sequence of main-operator parallelism values it moved through. The paper
//! requires: at most three steps, monotone approach, identical finals
//! regardless of the starting point.

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_nexmark::profiles::{setup, QueryId, Target};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine};

use crate::output::{render_table, write_csv};
use crate::runners::{convergence_manager_config, run_ds2};

/// The initial parallelism column of Table 4.
pub const INITIALS: [usize; 6] = [8, 12, 16, 20, 24, 28];

/// One Table 4 cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Query.
    pub query: QueryId,
    /// Initial parallelism of every operator.
    pub initial: usize,
    /// Main-operator parallelism sequence including the initial value.
    pub sequence: Vec<usize>,
    /// Final achieved/offered ratio.
    pub achieved: f64,
}

impl Cell {
    /// Number of scaling steps (sequence transitions).
    pub fn steps(&self) -> usize {
        self.sequence.len().saturating_sub(1)
    }

    /// Final main-operator parallelism.
    pub fn final_parallelism(&self) -> usize {
        *self.sequence.last().expect("non-empty")
    }

    /// Renders like the paper: `12→16`.
    pub fn render(&self) -> String {
        if self.sequence.len() == 1 {
            format!("{} (stable)", self.sequence[0])
        } else {
            self.sequence[1..]
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("->")
        }
    }
}

/// Builds the Flink-personality engine for one query at uniform initial
/// parallelism.
pub fn query_engine(query: QueryId, initial: usize) -> (FluidEngine, ds2_core::graph::OperatorId) {
    let s = setup(query, Target::Flink);
    let deployment = Deployment::uniform(&s.graph, initial);
    let cfg = EngineConfig {
        mode: EngineMode::Flink,
        tick_ns: 25_000_000,
        per_instance_queue: 20_000.0,
        reconfig_latency_ns: 30_000_000_000,
        ..Default::default()
    };
    (
        FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg),
        s.main_operator,
    )
}

/// Runs one Table 4 cell.
pub fn run_cell(query: QueryId, initial: usize, duration_ns: u64) -> Cell {
    let (engine, main) = query_engine(query, initial);
    let result = run_ds2(engine, convergence_manager_config(), duration_ns, false);
    let sequence = result.parallelism_steps(main, initial);
    Cell {
        query,
        initial,
        sequence,
        achieved: result.final_achieved_ratio(30),
    }
}

/// Runs the full table (36 experiments).
pub fn run_table(duration_ns: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for q in QueryId::ALL {
        for &init in &INITIALS {
            cells.push(run_cell(q, init, duration_ns));
        }
    }
    cells
}

/// Renders the table plus the §5.4 summary statistics.
pub fn report(cells: &[Cell]) -> String {
    let mut by_init: BTreeMap<usize, Vec<&Cell>> = BTreeMap::new();
    for c in cells {
        by_init.entry(c.initial).or_default().push(c);
    }
    let mut rows = Vec::new();
    for (&init, row_cells) in &by_init {
        let mut row = vec![init.to_string()];
        for q in QueryId::ALL {
            let cell = row_cells
                .iter()
                .find(|c| c.query == q)
                .map(|c| c.render())
                .unwrap_or_default();
            row.push(cell);
        }
        rows.push(row);
    }
    let table = render_table(&["initial", "Q1", "Q2", "Q3", "Q5", "Q8", "Q11"], &rows);

    let csv_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.query.name().to_string(),
                c.initial.to_string(),
                c.sequence
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(";"),
                c.steps().to_string(),
                format!("{:.3}", c.achieved),
            ]
        })
        .collect();
    let _ = write_csv(
        "table4_convergence.csv",
        &["query", "initial", "sequence", "steps", "achieved"],
        &csv_rows,
    );

    let max_steps = cells.iter().map(Cell::steps).max().unwrap_or(0);
    let one = cells.iter().filter(|c| c.steps() <= 1).count();
    let two = cells.iter().filter(|c| c.steps() == 2).count();
    let three = cells.iter().filter(|c| c.steps() == 3).count();
    let expected: Vec<String> = QueryId::ALL
        .iter()
        .map(|&q| {
            let finals: Vec<usize> = cells
                .iter()
                .filter(|c| c.query == q)
                .map(Cell::final_parallelism)
                .collect();
            let consistent = finals.windows(2).all(|w| w[0] == w[1]);
            format!(
                "{}: final {} ({}; paper {})",
                q.name(),
                finals.first().copied().unwrap_or(0),
                if consistent {
                    "start-independent"
                } else {
                    "START-DEPENDENT!"
                },
                ds2_nexmark::profiles::expected_flink_parallelism(q)
            )
        })
        .collect();
    format!(
        "Table 4 — DS2 convergence steps (Nexmark on Flink)\n{table}\n\
         max steps: {max_steps} (paper: 3)   1-step: {one}   2-step: {two}   3-step: {three} of {} runs\n\
         finals: {}\n",
        cells.len(),
        expected.join("; "),
    )
}
