//! The §4.2.3 skew experiment: DS2 under data skew must converge — in
//! about two steps — to the configuration that would be optimal *without*
//! skew, without over-provisioning, even though that configuration cannot
//! meet the target throughput.

use ds2_core::manager::ManagerConfig;
use ds2_core::policy::PolicyConfig;

use crate::output::{render_table, write_csv};
use crate::runners::run_ds2;
use crate::wordcount::skewed_flink_benchmark;

/// Outcome at one skew level.
#[derive(Debug, Clone)]
pub struct SkewOutcome {
    /// Fraction of records routed to the hot Count instance.
    pub skew: f64,
    /// Scaling decisions taken.
    pub steps: usize,
    /// Final Count parallelism.
    pub final_count: usize,
    /// Final achieved/offered ratio (below 1.0 under real skew).
    pub achieved: f64,
}

/// The Count parallelism that is optimal without skew in this benchmark.
pub const NO_SKEW_OPTIMAL_COUNT: usize = 16;

/// Runs the skew experiment at the paper's 20%, 50% and 70% levels.
pub fn skew_experiment(duration_ns: u64) -> (Vec<SkewOutcome>, String) {
    let mut outcomes = Vec::new();
    for &skew in &[0.2f64, 0.5, 0.7] {
        let (engine, ops) = skewed_flink_benchmark(skew, (1, 1));
        let manager_cfg = ManagerConfig {
            policy_interval_ns: 10_000_000_000,
            warmup_intervals: 1,
            activation_intervals: 1,
            min_change: 1,
            // The decision limit that guarantees convergence under skew
            // (§4.2.2): without it DS2 would keep retrying, since the
            // target is unreachable by scaling.
            max_decisions: Some(2),
            policy: PolicyConfig {
                max_parallelism: Some(36),
                ..Default::default()
            },
            ..Default::default()
        };
        let ops_count = ops.count;
        let result = run_ds2(engine, manager_cfg, duration_ns, false);
        outcomes.push(SkewOutcome {
            skew,
            steps: result.decisions.len(),
            final_count: result.final_deployment.parallelism(ops_count),
            achieved: result.final_achieved_ratio(20),
        });
    }

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                format!("{:.0}%", o.skew * 100.0),
                o.steps.to_string(),
                o.final_count.to_string(),
                NO_SKEW_OPTIMAL_COUNT.to_string(),
                format!("{:.2}", o.achieved),
            ]
        })
        .collect();
    let _ = write_csv(
        "skew_experiment.csv",
        &[
            "skew",
            "steps",
            "final_count",
            "no_skew_optimal",
            "achieved",
        ],
        &rows,
    );
    let table = render_table(
        &[
            "skew",
            "steps",
            "final count p",
            "no-skew optimal",
            "achieved ratio",
        ],
        &rows,
    );
    let report = format!(
        "§4.2.3 — DS2 under data skew (word count, hot Count instance)\n{table}\
         paper: converges after two steps to the no-skew-optimal configuration,\n\
         which does not meet the target throughput but never over-provisions\n",
    );
    (outcomes, report)
}
