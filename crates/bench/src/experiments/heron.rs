//! Figures 1 and 6: Dhalion vs DS2 on the Heron word count (§5.2).

use ds2_baselines::dhalion::{DhalionConfig, DhalionController};
use ds2_simulator::harness::RunResult;

use crate::output::{render_table, write_csv};
use crate::runners::{heron_manager_config, run_controller, run_ds2};
use crate::wordcount::{heron_benchmark, WordCountOps};

/// Outcome of one controller's Heron word-count run.
pub struct HeronRun {
    /// Controller name.
    pub controller: &'static str,
    /// Closed-loop result.
    pub result: RunResult,
    /// Operator handles.
    pub ops: WordCountOps,
}

impl HeronRun {
    /// Scaling decisions taken.
    pub fn steps(&self) -> usize {
        self.result.decisions.len()
    }

    /// `(flat_map, count)` final parallelism.
    pub fn final_config(&self) -> (usize, usize) {
        (
            self.result.final_deployment.parallelism(self.ops.flat_map),
            self.result.final_deployment.parallelism(self.ops.count),
        )
    }

    /// Seconds from start until the last scaling decision.
    pub fn convergence_seconds(&self) -> f64 {
        self.result.last_decision_ns().unwrap_or(0) as f64 / 1e9
    }
}

/// Runs Dhalion on the under-provisioned Heron word count (Figure 1).
pub fn run_dhalion_heron(duration_ns: u64) -> HeronRun {
    let (engine, ops) = heron_benchmark((1, 1));
    let controller = DhalionController::new(
        engine.graph().clone(),
        DhalionConfig {
            cooldown_intervals: 2,
            ..Default::default()
        },
    );
    let result = run_controller(engine, controller, 60_000_000_000, duration_ns);
    HeronRun {
        controller: "dhalion",
        result,
        ops,
    }
}

/// Runs DS2 on the same benchmark (Figure 6, §5.2 settings).
pub fn run_ds2_heron(duration_ns: u64) -> HeronRun {
    let (engine, ops) = heron_benchmark((1, 1));
    let result = run_ds2(engine, heron_manager_config(), duration_ns, false);
    HeronRun {
        controller: "ds2",
        result,
        ops,
    }
}

/// Renders the Figure 1 style source-rate timeline as CSV rows.
pub fn timeline_rows(run: &HeronRun) -> Vec<Vec<String>> {
    run.result
        .timeline
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.t_ns as f64 / 1e9),
                format!("{:.0}", p.offered_rate),
                format!("{:.0}", p.observed_rate),
                p.parallelism
                    .get(&run.ops.flat_map)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                p.parallelism
                    .get(&run.ops.count)
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                (p.backpressure as u8).to_string(),
                (p.halted as u8).to_string(),
            ]
        })
        .collect()
}

/// Runs Figure 1 (Dhalion alone) and writes `fig1_dhalion_timeline.csv`.
pub fn figure1(duration_ns: u64) -> (HeronRun, String) {
    let run = run_dhalion_heron(duration_ns);
    let rows = timeline_rows(&run);
    let _ = write_csv(
        "fig1_dhalion_timeline.csv",
        &[
            "t_s",
            "offered_rate",
            "observed_rate",
            "flat_map",
            "count",
            "backpressure",
            "halted",
        ],
        &rows,
    );
    let (fm, cnt) = run.final_config();
    let report = format!(
        "Figure 1 — Dhalion on Heron word count (target {:.0} rec/s)\n\
         decisions: {}   final config: flat_map={}, count={}   last decision at {:.0}s\n\
         paper: 6 decisions, >30 min to converge, over-provisioned final config\n",
        1_000_000.0 / 60.0,
        run.steps(),
        fm,
        cnt,
        run.convergence_seconds(),
    );
    (run, report)
}

/// Runs Figure 6 (DS2 vs Dhalion) and writes both timelines.
pub fn figure6(duration_ns: u64) -> (HeronRun, HeronRun, String) {
    let dhalion = run_dhalion_heron(duration_ns);
    let ds2 = run_ds2_heron(duration_ns);
    let _ = write_csv(
        "fig6_dhalion_timeline.csv",
        &[
            "t_s",
            "offered_rate",
            "observed_rate",
            "flat_map",
            "count",
            "backpressure",
            "halted",
        ],
        &timeline_rows(&dhalion),
    );
    let _ = write_csv(
        "fig6_ds2_timeline.csv",
        &[
            "t_s",
            "offered_rate",
            "observed_rate",
            "flat_map",
            "count",
            "backpressure",
            "halted",
        ],
        &timeline_rows(&ds2),
    );

    let rows = vec![
        vec![
            "ds2".to_string(),
            ds2.steps().to_string(),
            format!("{:?}", ds2.final_config()),
            format!("{:.0}", ds2.convergence_seconds()),
            format!("{:.3}", ds2.result.final_achieved_ratio(30)),
        ],
        vec![
            "dhalion".to_string(),
            dhalion.steps().to_string(),
            format!("{:?}", dhalion.final_config()),
            format!("{:.0}", dhalion.convergence_seconds()),
            format!("{:.3}", dhalion.result.final_achieved_ratio(30)),
        ],
    ];
    let table = render_table(
        &[
            "controller",
            "decisions",
            "final (fm, cnt)",
            "last decision s",
            "achieved ratio",
        ],
        &rows,
    );
    let report = format!(
        "Figure 6 — DS2 vs Dhalion on Heron word count\n{table}\
         paper: DS2 one step to (10, 20) in ~60s; Dhalion six steps to (22, 30) after ~2000s\n",
    );
    (dhalion, ds2, report)
}
