//! Figure 10: instrumentation overhead (§5.6) — per-record latency on the
//! Flink personality and per-epoch latency on the Timely personality, with
//! instrumentation off ("vanilla") and on ("instr").

use ds2_core::deployment::Deployment;
use ds2_nexmark::profiles::{setup, QueryId, Target};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine, InstrumentationConfig};

use crate::experiments::accuracy::indicated_plan;
use crate::output::{render_table, write_csv};

/// Latency measurements for one query, vanilla vs instrumented.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Query name.
    pub query: &'static str,
    /// Mean latency without instrumentation, ns.
    pub vanilla_p50: u64,
    /// Mean latency with instrumentation, ns.
    pub instr_p50: u64,
    /// 99th percentile without instrumentation, ns.
    pub vanilla_p99: u64,
    /// 99th percentile with instrumentation, ns.
    pub instr_p99: u64,
}

impl OverheadPoint {
    /// Relative mean-latency overhead (instr vs vanilla).
    pub fn overhead_fraction(&self) -> f64 {
        if self.vanilla_p50 == 0 {
            0.0
        } else {
            self.instr_p50 as f64 / self.vanilla_p50 as f64 - 1.0
        }
    }
}

fn run_flink(query: QueryId, instrument: bool, duration_ns: u64) -> (u64, u64) {
    let s = setup(query, Target::Flink);
    // Instrumentation cost: ~2% of the main operator's per-record cost —
    // record-at-a-time systems pay the most (§4.1 aggregates per buffer to
    // contain exactly this overhead). 2% eats most of the provisioning
    // margin, so the overhead surfaces as deeper queues.
    let main_cost = s.profiles[&s.main_operator].instrumented_cost_ns(s.expected);
    let deployment = indicated_plan(query);
    let cfg = EngineConfig {
        mode: EngineMode::Flink,
        tick_ns: 25_000_000,
        per_instance_queue: 20_000.0,
        service_noise: 0.05,
        instrumentation: InstrumentationConfig {
            enabled: instrument,
            per_record_cost_ns: main_cost * 0.015,
        },
        ..Default::default()
    };
    let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg);
    engine.run_for(duration_ns);
    let lat = engine.latency();
    (
        lat.mean().unwrap_or(0.0) as u64,
        lat.quantile(0.99).unwrap_or(0),
    )
}

fn run_timely(query: QueryId, instrument: bool, duration_ns: u64) -> (u64, u64) {
    let s = setup(query, Target::Timely);
    let main_cost = s.profiles[&s.main_operator].instrumented_cost_ns(1);
    let deployment = Deployment::uniform(&s.graph, 1);
    let cfg = EngineConfig {
        mode: EngineMode::Timely,
        timely_workers: ds2_nexmark::profiles::EXPECTED_TIMELY_WORKERS,
        tick_ns: 10_000_000,
        service_noise: 0.05,
        instrumentation: InstrumentationConfig {
            enabled: instrument,
            per_record_cost_ns: main_cost * 0.04,
        },
        ..Default::default()
    };
    let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg);
    engine.run_for(duration_ns);
    let rec = engine.epochs().recorder();
    (
        rec.mean().unwrap_or(0.0) as u64,
        rec.quantile(0.99).unwrap_or(0),
    )
}

/// Runs Figure 10 for both personalities.
pub fn figure10(duration_ns: u64) -> (Vec<OverheadPoint>, Vec<OverheadPoint>, String) {
    let mut flink = Vec::new();
    let mut timely = Vec::new();
    for q in QueryId::ALL {
        let (v50, v99) = run_flink(q, false, duration_ns);
        let (i50, i99) = run_flink(q, true, duration_ns);
        flink.push(OverheadPoint {
            query: q.name(),
            vanilla_p50: v50,
            instr_p50: i50,
            vanilla_p99: v99,
            instr_p99: i99,
        });
        let (v50, v99) = run_timely(q, false, duration_ns);
        let (i50, i99) = run_timely(q, true, duration_ns);
        timely.push(OverheadPoint {
            query: q.name(),
            vanilla_p50: v50,
            instr_p50: i50,
            vanilla_p99: v99,
            instr_p99: i99,
        });
    }

    let table = |points: &[OverheadPoint], unit: f64, unit_name: &str| {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.query.to_string(),
                    format!("{:.2}", p.vanilla_p50 as f64 / unit),
                    format!("{:.2}", p.instr_p50 as f64 / unit),
                    format!("{:.2}", p.vanilla_p99 as f64 / unit),
                    format!("{:.2}", p.instr_p99 as f64 / unit),
                    format!("{:+.1}%", p.overhead_fraction() * 100.0),
                ]
            })
            .collect();
        render_table(
            &[
                "query",
                &format!("vanilla mean ({unit_name})"),
                &format!("instr mean ({unit_name})"),
                &format!("vanilla p99 ({unit_name})"),
                &format!("instr p99 ({unit_name})"),
                "overhead",
            ],
            &rows,
        )
    };

    let csv = |name: &str, points: &[OverheadPoint]| {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.query.to_string(),
                    p.vanilla_p50.to_string(),
                    p.instr_p50.to_string(),
                    p.vanilla_p99.to_string(),
                    p.instr_p99.to_string(),
                ]
            })
            .collect();
        let _ = write_csv(
            name,
            &[
                "query",
                "vanilla_mean_ns",
                "instr_mean_ns",
                "vanilla_p99_ns",
                "instr_p99_ns",
            ],
            &rows,
        );
    };
    csv("fig10_flink_overhead.csv", &flink);
    csv("fig10_timely_overhead.csv", &timely);

    let report = format!(
        "Figure 10 — instrumentation overhead\n\n(a) Flink, per-record latency:\n{}\n\
         (b) Timely, per-epoch latency:\n{}\n\
         paper: at most 13% on Flink, at most 20% on Timely\n",
        table(&flink, 1e6, "ms"),
        table(&timely, 1e6, "ms"),
    );
    (flink, timely, report)
}
