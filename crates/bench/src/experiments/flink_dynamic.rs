//! Figure 7: DS2 driving Flink through a dynamic two-phase word count
//! (§5.3): scale-up at 2 M sentences/s, scale-down after the drop to 1 M/s,
//! with a final target-rate-ratio refinement.

use ds2_simulator::harness::RunResult;

use crate::output::write_csv;
use crate::runners::{flink_dynamic_manager_config, run_ds2};
use crate::wordcount::{flink_dynamic_benchmark, WordCountOps};

/// Phase-2 start: 800 s, as in the paper's timeline.
pub const PHASE2_AT_NS: u64 = 800_000_000_000;

/// Outcome of the dynamic-scaling experiment.
pub struct Fig7Run {
    /// Closed-loop result.
    pub result: RunResult,
    /// Operator handles.
    pub ops: WordCountOps,
}

impl Fig7Run {
    /// `(flat_map, count)` parallelism sequence across decisions,
    /// starting from the initial configuration.
    pub fn config_sequence(&self) -> Vec<(usize, usize)> {
        let mut seq = vec![(10usize, 5usize)];
        for d in &self.result.decisions {
            let cfg = (
                d.plan.parallelism(self.ops.flat_map),
                d.plan.parallelism(self.ops.count),
            );
            if *seq.last().unwrap() != cfg {
                seq.push(cfg);
            }
        }
        seq
    }

    /// Decisions that happened during phase 1 / phase 2.
    pub fn phase_decision_counts(&self) -> (usize, usize) {
        let p1 = self
            .result
            .decisions
            .iter()
            .filter(|d| d.at_ns < PHASE2_AT_NS)
            .count();
        (p1, self.result.decisions.len() - p1)
    }
}

/// Runs the Figure 7 experiment and writes `fig7_timeline.csv`.
pub fn figure7(duration_ns: u64) -> (Fig7Run, String) {
    let (engine, ops) = flink_dynamic_benchmark((10, 5), PHASE2_AT_NS);
    let result = run_ds2(engine, flink_dynamic_manager_config(), duration_ns, false);
    let run = Fig7Run { result, ops };

    let rows: Vec<Vec<String>> = run
        .result
        .timeline
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.t_ns as f64 / 1e9),
                format!("{:.0}", p.offered_rate),
                format!("{:.0}", p.observed_rate),
                p.parallelism[&run.ops.flat_map].to_string(),
                p.parallelism[&run.ops.count].to_string(),
                (p.halted as u8).to_string(),
            ]
        })
        .collect();
    let _ = write_csv(
        "fig7_timeline.csv",
        &[
            "t_s",
            "offered_rate",
            "observed_rate",
            "flat_map",
            "count",
            "halted",
        ],
        &rows,
    );

    let seq = run.config_sequence();
    let (p1, p2) = run.phase_decision_counts();
    let decisions: Vec<String> = run
        .result
        .decisions
        .iter()
        .map(|d| {
            format!(
                "t={:>4.0}s -> (fm={}, cnt={})",
                d.at_ns as f64 / 1e9,
                d.plan.parallelism(run.ops.flat_map),
                d.plan.parallelism(run.ops.count)
            )
        })
        .collect();
    let report = format!(
        "Figure 7 — DS2 on Flink, dynamic word count (2M/s then 1M/s at t=800s)\n\
         decisions ({} phase-1, {} phase-2):\n  {}\n\
         config sequence: {:?}\n\
         final achieved ratio: {:.3}\n\
         paper: (10,5) -> (14,7) -> (19,11) in phase 1; -> (7,4) -> count+1 in phase 2\n",
        p1,
        p2,
        decisions.join("\n  "),
        seq,
        run.result.final_achieved_ratio(30),
    );
    (run, report)
}
