//! Figures 8 and 9: accuracy — DS2's indicated configuration is the
//! minimal one that keeps up with the sources (§5.5).
//!
//! Figure 8 (Flink): for each query, sweep the main operator's parallelism
//! around the DS2-indicated optimum with every other operator fixed at its
//! optimal value; report the observed source rate and the per-record
//! latency distribution per configuration.
//!
//! Figure 9 (Timely): sweep the global worker count; report per-epoch
//! latency CDFs against the 1-second target.

use ds2_core::deployment::Deployment;
use ds2_core::policy::Ds2Policy;
use ds2_nexmark::profiles::{setup, QueryId, Target};
use ds2_simulator::engine::{EngineConfig, EngineMode, FluidEngine};

use crate::output::{fmt_rate, render_table, write_csv};

/// One configuration's measurements in the Figure 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Main-operator parallelism.
    pub parallelism: usize,
    /// Whether this is the DS2-indicated configuration.
    pub indicated: bool,
    /// Mean observed source rate over the steady tail, records/s.
    pub observed_rate: f64,
    /// Offered source rate, records/s.
    pub offered_rate: f64,
    /// Median record latency, ns.
    pub latency_p50: u64,
    /// 99th percentile record latency, ns.
    pub latency_p99: u64,
}

/// Figure 8 for one query: sweep offsets around the optimum.
pub fn figure8_query(query: QueryId, duration_ns: u64) -> (Vec<Fig8Point>, usize) {
    let reference = setup(query, Target::Flink);
    let p_star = reference.expected;

    // The DS2-optimal parallelism for the *other* operators: evaluate the
    // policy once on a saturated run at generous parallelism.
    let optimal_plan = indicated_plan(query);

    let offsets: [i64; 5] = [-8, -4, 0, 4, 8];
    let mut points = Vec::new();
    for off in offsets {
        let p = (p_star as i64 + off).max(1) as usize;
        let s = setup(query, Target::Flink);
        let mut deployment = optimal_plan.clone();
        deployment.set(s.main_operator, p);
        let cfg = EngineConfig {
            mode: EngineMode::Flink,
            tick_ns: 25_000_000,
            per_instance_queue: 20_000.0,
            service_noise: 0.05,
            ..Default::default()
        };
        let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg);
        // Warm up, then measure the steady state.
        engine.run_for(duration_ns / 3);
        let _ = engine.collect_snapshot();
        let offered: f64 = engine.last_tick().offered.values().sum::<f64>()
            / (engine.config().tick_ns as f64 / 1e9);
        engine.run_for(duration_ns * 2 / 3);
        let snap = engine.collect_snapshot();
        let observed: f64 = snap
            .source_rates()
            .filter_map(|(src, _)| snap.observed_source_rate(src))
            .sum();
        let lat = engine.latency();
        points.push(Fig8Point {
            parallelism: p,
            indicated: off == 0,
            observed_rate: observed,
            offered_rate: offered,
            latency_p50: lat.median().unwrap_or(0),
            latency_p99: lat.quantile(0.99).unwrap_or(0),
        });
    }
    (points, p_star)
}

/// Evaluates DS2 once on a well-provisioned deployment to obtain the full
/// indicated plan for a query (all operators).
pub fn indicated_plan(query: QueryId) -> Deployment {
    let s = setup(query, Target::Flink);
    let deployment = Deployment::uniform(&s.graph, 36);
    let cfg = EngineConfig {
        mode: EngineMode::Flink,
        tick_ns: 25_000_000,
        ..Default::default()
    };
    let graph = s.graph.clone();
    let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment.clone(), cfg);
    engine.run_for(20_000_000_000);
    let _ = engine.collect_snapshot();
    engine.run_for(30_000_000_000);
    let snap = engine.collect_snapshot();
    let policy = Ds2Policy::with_config(ds2_core::policy::PolicyConfig {
        max_parallelism: Some(36),
        ..Default::default()
    });
    policy
        .evaluate(&graph, &snap, &deployment)
        .expect("policy evaluates")
        .plan
}

/// Runs Figure 8 for all queries, writing one CSV per query.
pub fn figure8(duration_ns: u64) -> String {
    let mut report =
        String::from("Figure 8 — observed source rate & latency vs configuration (Flink)\n");
    for q in QueryId::ALL {
        let (points, p_star) = figure8_query(q, duration_ns);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.parallelism.to_string(),
                    if p.indicated { "yes" } else { "" }.to_string(),
                    fmt_rate(p.observed_rate),
                    fmt_rate(p.offered_rate),
                    format!("{:.1}", p.latency_p50 as f64 / 1e6),
                    format!("{:.1}", p.latency_p99 as f64 / 1e6),
                ]
            })
            .collect();
        let _ = write_csv(
            &format!("fig8_{}.csv", q.name().to_lowercase()),
            &[
                "parallelism",
                "indicated",
                "observed_rate",
                "offered_rate",
                "p50_ms",
                "p99_ms",
            ],
            &rows,
        );
        report.push_str(&format!(
            "\n[{}] indicated parallelism: {}\n{}",
            q.name(),
            p_star,
            render_table(
                &["p", "indicated", "observed", "offered", "p50 ms", "p99 ms"],
                &rows
            )
        ));
    }
    report
}

/// One configuration's measurements in the Figure 9 sweep.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Worker-pool size.
    pub workers: usize,
    /// Completed epochs.
    pub epochs: usize,
    /// Fraction of epochs completing within the 1 s target.
    pub within_target: f64,
    /// Median epoch latency, ns.
    pub p50: u64,
    /// 99th percentile epoch latency, ns.
    pub p99: u64,
}

/// Figure 9 for one query on Timely.
pub fn figure9_query(query: QueryId, duration_ns: u64) -> (Vec<Fig9Point>, usize) {
    let mut points = Vec::new();
    for workers in [2usize, 3, 4, 6, 8] {
        let s = setup(query, Target::Timely);
        let deployment = Deployment::uniform(&s.graph, 1);
        let cfg = EngineConfig {
            mode: EngineMode::Timely,
            timely_workers: workers,
            tick_ns: 10_000_000,
            epoch_ns: 1_000_000_000,
            service_noise: 0.05,
            ..Default::default()
        };
        let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg);
        engine.run_for(duration_ns);
        let recorder = engine.epochs().recorder();
        let within = 1.0 - recorder.fraction_above(1_000_000_000);
        points.push(Fig9Point {
            workers,
            epochs: engine.epochs().completed().len(),
            within_target: within,
            p50: recorder.median().unwrap_or(u64::MAX),
            p99: recorder.quantile(0.99).unwrap_or(u64::MAX),
        });
    }
    (points, ds2_nexmark::profiles::EXPECTED_TIMELY_WORKERS)
}

/// DS2's indicated total workers for a query on Timely: one policy
/// evaluation on a generously provisioned run, summed per §4.3.
pub fn indicated_timely_workers(query: QueryId) -> usize {
    let s = setup(query, Target::Timely);
    let deployment = Deployment::uniform(&s.graph, 1);
    let cfg = EngineConfig {
        mode: EngineMode::Timely,
        timely_workers: 16,
        tick_ns: 10_000_000,
        ..Default::default()
    };
    let graph = s.graph.clone();
    let main_graph = graph.clone();
    let mut engine = FluidEngine::new(s.graph, s.profiles, s.sources, deployment, cfg);
    engine.run_for(10_000_000_000);
    let _ = engine.collect_snapshot();
    engine.run_for(20_000_000_000);
    let snap = engine.collect_snapshot();
    let out = Ds2Policy::new()
        .evaluate(&graph, &snap, &engine.current_deployment())
        .expect("policy evaluates");
    out.timely_total_workers(&main_graph)
}

/// Runs Figure 9 for the queries the paper plots (Q3, Q5, Q11).
pub fn figure9(duration_ns: u64) -> String {
    let mut report =
        String::from("Figure 9 — per-epoch latency vs worker count (Timely, 1 s epochs)\n");
    for q in [QueryId::Q3, QueryId::Q5, QueryId::Q11] {
        let (points, expected) = figure9_query(q, duration_ns);
        let indicated = indicated_timely_workers(q);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.workers.to_string(),
                    p.epochs.to_string(),
                    format!("{:.1}%", p.within_target * 100.0),
                    if p.p50 == u64::MAX {
                        "-".into()
                    } else {
                        format!("{:.2}", p.p50 as f64 / 1e9)
                    },
                    if p.p99 == u64::MAX {
                        "-".into()
                    } else {
                        format!("{:.2}", p.p99 as f64 / 1e9)
                    },
                ]
            })
            .collect();
        let _ = write_csv(
            &format!("fig9_{}.csv", q.name().to_lowercase()),
            &["workers", "epochs", "within_1s", "p50_s", "p99_s"],
            &rows,
        );
        report.push_str(&format!(
            "\n[{}] DS2-indicated workers: {} (paper: {})\n{}",
            q.name(),
            indicated,
            expected,
            render_table(&["workers", "epochs", "<=1s", "p50 s", "p99 s"], &rows)
        ));
    }
    report
}
