//! Figure 1: Dhalion's scaling decisions on the under-provisioned word
//! count — six-plus speculative steps, slow convergence.

fn main() {
    let (_run, report) = ds2_bench::experiments::heron::figure1(3_000_000_000_000);
    println!("{report}");
    println!("timeline CSV written to results/fig1_dhalion_timeline.csv");
}
