//! Figure 6: DS2 vs Dhalion on the Heron word count.

fn main() {
    let (_d, _s, report) = ds2_bench::experiments::heron::figure6(3_000_000_000_000);
    println!("{report}");
    println!("timelines written to results/fig6_*.csv");
}
