//! Runs the scenario matrix across DS2 and every baseline and prints the
//! comparison table (steps-to-convergence, provisioning accuracy,
//! SASO-style stability).
//!
//! Usage: `scenario_matrix [FLAGS] [controllers...]`
//!
//! ```text
//!   --scenarios N     number of scenarios (default 40; the library default
//!                     MatrixConfig runs 5000)
//!   --threads N       worker threads (default 0 = one per CPU; results are
//!                     bit-identical for every value)
//!   --seed S          base seed; scenario i runs seed S+i. Reproduce one
//!                     failing seed with `--seed <seed> --scenarios 1`
//!   --family F        scenario families to generate (default synthetic):
//!                     `synthetic`, `nexmark` (all six queries),
//!                     `nexmark_q1`/`q2`/`q3`/`q5`/`q8`/`q11`, `hotkey`
//!                     (splittable hot key classes), `state_pressure`
//!                     (state outgrowing its memory budget), `mixed`
//!                     (synthetic + nexmark 50/50, the headline-test mix),
//!                     a comma-separated list of family names — or `list`,
//!                     which prints every known family plus the per-family
//!                     scenario counts of the configured run, then exits
//!   --exact           disable macro-tick fast-forward: every tick is
//!                     executed in full. The report is bit-identical to the
//!                     default fast-forward mode (CI diffs the two); this
//!                     is the escape hatch that proves it
//!   --faults P        inject deterministic telemetry and actuation faults:
//!                     `none` (default), `mild`, or `harsh`. The fault
//!                     sequence is a pure function of (scenario seed,
//!                     profile), so faulted runs keep every determinism
//!                     guarantee — including fast-forward bit-equality —
//!                     and the report grows `faultw`/`vetoed`/`retries`
//!                     columns. Pair with `ds2_hardened` to compare the
//!                     hardened controller against vanilla DS2
//!   --bench-json P    run the throughput baseline (1/4/8 threads with
//!                     fast-forward, plus a 1-thread exact row — each for
//!                     the synthetic family — 1/4-thread nexmark-family
//!                     rows, a 1-thread hotkey+state_pressure row under
//!                     ds2_multidim, and a 1-thread harsh-faults row under
//!                     ds2_hardened) and write it to P as JSON, then exit
//!   controllers       any of ds2/dhalion/threshold/queueing/ds2_multidim/
//!                     ds2_hardened (default: ds2 + the three baselines).
//!                     `ds2_multidim` runs DS2 on the multi-dimensional
//!                     resource model: key-class split detection plus the
//!                     scenario's per-instance state budget. `ds2_hardened`
//!                     runs DS2 with snapshot validation, outlier
//!                     rejection, and rescale verify-and-retry
//! ```
//!
//! With more than one family in play the per-family breakdown table is
//! printed after the overall table (both deterministic across thread
//! counts; CI diffs them). When `ds2_multidim` is among the controllers,
//! both tables grow two per-dimension resource columns: `inst_hrs` — mean
//! non-source instance-hours per run (the parallelism bill) — and
//! `state_hrs` — mean instance-hours held by budgeted stateful operators
//! (the state bill). Parallelism-only reports render byte-identically to
//! the classic format.
//!
//! The report table goes to stdout; timing and progress go to stderr, so
//! two runs with different `--threads` can be `diff`ed directly (CI does).
//!
//! Environment: `DS2_MATRIX_SEED` (same as `--seed`),
//! `DS2_MATRIX_WORKLOADS` (comma-separated family names),
//! `DS2_MATRIX_DURATION_S`, `DS2_MATRIX_VERBOSE`.

use std::time::Instant;

use ds2_simulator::scenarios::{
    ControllerKind, FaultProfile, MatrixConfig, ScenarioFamily, ScenarioMatrix, ScenarioSpec,
    WorkloadShape,
};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: scenario_matrix [--scenarios N] [--threads N] [--seed S] \
         [--family synthetic|nexmark|nexmark_qN|hotkey|state_pressure|mixed|list] \
         [--exact] [--faults none|mild|harsh] [--bench-json PATH] \
         [ds2|dhalion|threshold|queueing|ds2_multidim|ds2_hardened ...]"
    );
    std::process::exit(2);
}

/// Every family the generator knows, in report order.
fn known_families() -> Vec<ScenarioFamily> {
    let mut all = vec![ScenarioFamily::Synthetic];
    all.extend(ScenarioFamily::ALL_NEXMARK);
    all.push(ScenarioFamily::HotKey);
    all.push(ScenarioFamily::StatePressure);
    all
}

/// `--family list`: prints every known family name and the per-family
/// scenario counts the configured run would draw (scenario `i` draws its
/// family from seed `base_seed + i`, so the counts are exact, not
/// probabilistic), then exits.
fn list_families(config: &MatrixConfig) -> ! {
    println!("known families:");
    for family in known_families() {
        println!("  {}", family.name());
    }
    println!(
        "\nconfigured run ({} scenarios, base seed {:#x}, families {}):",
        config.scenarios,
        config.base_seed,
        config
            .generator
            .families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for i in 0..config.scenarios {
        let spec = ScenarioSpec::generate(config.base_seed + i as u64, &config.generator);
        *counts.entry(spec.family.name()).or_default() += 1;
    }
    for (name, count) in counts {
        println!("  {name:<14} {count}");
    }
    std::process::exit(0);
}

/// Parses a `--family` value: a preset (`synthetic`, `nexmark`, `mixed`)
/// or a comma-separated list of family names.
fn parse_families(value: &str) -> Vec<ScenarioFamily> {
    match value {
        "synthetic" => vec![ScenarioFamily::Synthetic],
        "nexmark" => ScenarioFamily::ALL_NEXMARK.to_vec(),
        // The headline-test mix: synthetic and nexmark weighted 50/50.
        "mixed" => ScenarioFamily::headline_mix(),
        list => {
            let families: Vec<ScenarioFamily> = list
                .split(',')
                .filter_map(|n| ScenarioFamily::from_name(n.trim()))
                .collect();
            if families.is_empty() {
                usage_exit(&format!("--family: no known family in '{list}'"));
            }
            families
        }
    }
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::vec::IntoIter<String>, flag: &str) -> T {
    let Some(v) = args.next() else {
        usage_exit(&format!("{flag} needs a value"));
    };
    v.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag}: cannot parse '{v}'")))
}

fn main() {
    let mut scenarios: usize = 40;
    let mut threads: usize = 0;
    let mut seed: Option<u64> = None;
    let mut bench_json: Option<String> = None;
    let mut fast_forward = true;
    let mut faults = FaultProfile::None;
    let mut families: Option<Vec<ScenarioFamily>> = None;
    let mut list_requested = false;
    let mut controllers: Vec<ControllerKind> = Vec::new();

    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenarios" => scenarios = parse_flag(&mut args, "--scenarios"),
            "--threads" => threads = parse_flag(&mut args, "--threads"),
            "--seed" => seed = Some(parse_flag(&mut args, "--seed")),
            "--family" => {
                let value: String = parse_flag(&mut args, "--family");
                if value == "list" {
                    list_requested = true;
                } else {
                    families = Some(parse_families(&value));
                }
            }
            "--exact" => fast_forward = false,
            "--faults" => {
                let value: String = parse_flag(&mut args, "--faults");
                faults = FaultProfile::from_name(&value)
                    .unwrap_or_else(|| usage_exit(&format!("--faults: unknown profile '{value}'")));
            }
            "--bench-json" => bench_json = args.next().or_else(|| usage_exit("--bench-json")),
            "ds2" => controllers.push(ControllerKind::Ds2),
            "dhalion" => controllers.push(ControllerKind::Dhalion),
            "threshold" => controllers.push(ControllerKind::Threshold),
            "queueing" => controllers.push(ControllerKind::Queueing),
            "ds2_multidim" => controllers.push(ControllerKind::Ds2MultiDim),
            "ds2_hardened" => controllers.push(ControllerKind::Ds2Hardened),
            other => {
                // Back-compat: a bare number is the scenario count.
                match other.parse::<usize>() {
                    Ok(n) => scenarios = n,
                    Err(_) => usage_exit(&format!("unknown argument '{other}'")),
                }
            }
        }
    }
    if controllers.is_empty() {
        controllers = ControllerKind::ALL.to_vec();
    }

    let mut config = MatrixConfig {
        scenarios,
        threads,
        controllers: controllers.clone(),
        fast_forward,
        faults,
        ..Default::default()
    };
    if let Some(families) = families {
        config.generator.families = families;
    }
    if let Some(seed) = seed.or_else(|| {
        std::env::var("DS2_MATRIX_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
    }) {
        config.base_seed = seed;
    }
    if let Ok(names) = std::env::var("DS2_MATRIX_WORKLOADS") {
        let workloads: Vec<WorkloadShape> = names
            .split(',')
            .filter_map(|n| WorkloadShape::from_name(n.trim()))
            .collect();
        if workloads.is_empty() {
            let known: Vec<&str> = WorkloadShape::ALL.iter().map(|w| w.name()).collect();
            eprintln!(
                "DS2_MATRIX_WORKLOADS='{names}' names no known workload (expected {})",
                known.join("/")
            );
            std::process::exit(2);
        }
        config.generator.workloads = workloads;
    }
    if let Some(secs) = std::env::var("DS2_MATRIX_DURATION_S")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        config.generator.run_duration_ns = secs * 1_000_000_000;
    }

    if list_requested {
        list_families(&config);
    }

    if let Some(path) = bench_json {
        run_throughput_baseline(&path, &config);
        return;
    }

    let verbose = std::env::var("DS2_MATRIX_VERBOSE").is_ok();
    let matrix = ScenarioMatrix::new(config.clone());
    let t0 = Instant::now();
    // Per-run progress (stderr) for debugging pathological scenarios. In
    // parallel runs cells are reported in completion order.
    let mut last = Instant::now();
    let report = matrix.run_with(|spec, o| {
        if verbose {
            eprintln!(
                "seed {} {} {} ops={} {}: steps={} conv={} final={} in {:?}",
                spec.seed,
                spec.topology.shape.name(),
                spec.workload.shape.name(),
                o.operators,
                o.controller,
                o.steps_final_phase,
                o.converged,
                o.final_instances,
                last.elapsed(),
            );
        }
        last = Instant::now();
    });

    // Timing to stderr: stdout must be identical across thread counts.
    eprintln!(
        "scenario matrix: {} scenarios x {} controllers on {} threads in {:?}",
        config.scenarios,
        config.controllers.len(),
        matrix.effective_threads(),
        t0.elapsed()
    );
    println!(
        "scenario matrix: {} scenarios x {} controllers\n",
        config.scenarios,
        config.controllers.len(),
    );
    println!("{}", report.render(&controllers));
    if report.families().len() > 1 {
        println!("{}", report.render_families(&controllers));
    }
    for &kind in &controllers {
        let failing = report.failing_seeds(kind.name());
        if !failing.is_empty() {
            println!(
                "{}: {} runs outside the three-step claim:\n{}",
                kind.name(),
                failing.len(),
                report.describe_failures(kind.name()),
            );
        }
    }
}

/// Measures matrix throughput (scenarios/second) per scenario family at
/// the standard thread counts — the synthetic family at 1/4/8 threads with
/// fast-forward plus a 1-thread `--exact` row quantifying the macro-tick
/// speedup, the nexmark family (all six queries, mostly windowed and
/// therefore tick-by-tick) at 1/4 threads, the multi-dimensional
/// stress families (hotkey + state_pressure under the `ds2_multidim`
/// controller, exercising class splits and spill accounting) at 1 thread,
/// and a harsh-faults synthetic row under `ds2_hardened` (injection plus
/// sanitize/verify/retry overhead) at 1 thread — writing one JSON entry
/// per configuration so the committed baseline captures single-thread
/// data-plane speed, parallel scaling, the fast-forward ratio, the
/// real-query-dataflow cost, the multi-dim overhead and the hardening
/// overhead. Thread counts beyond the host's CPUs still run (the sharded
/// queue over-subscribes harmlessly); the `threads` field records the
/// configuration, `cpus` the host, so readers can judge comparability.
fn run_throughput_baseline(path: &str, base: &MatrixConfig) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = base.scenarios.clamp(8, 64);
    let mut entries = Vec::new();
    // (family-suffix, families, threads, fast_forward, controller): the
    // synthetic rows keep their historical names (no suffix) so the CI
    // bench_guard gate and baseline trajectories stay comparable across
    // PRs.
    let stress = vec![ScenarioFamily::HotKey, ScenarioFamily::StatePressure];
    let synthetic = vec![ScenarioFamily::Synthetic];
    type Run = (
        &'static str,
        Vec<ScenarioFamily>,
        usize,
        bool,
        ControllerKind,
        FaultProfile,
    );
    let runs: [Run; 8] = [
        (
            "",
            synthetic.clone(),
            1,
            true,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "",
            synthetic.clone(),
            4,
            true,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "",
            synthetic.clone(),
            8,
            true,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "",
            synthetic.clone(),
            1,
            false,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "_nexmark",
            ScenarioFamily::ALL_NEXMARK.to_vec(),
            1,
            true,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "_nexmark",
            ScenarioFamily::ALL_NEXMARK.to_vec(),
            4,
            true,
            ControllerKind::Ds2,
            FaultProfile::None,
        ),
        (
            "_multidim",
            stress,
            1,
            true,
            ControllerKind::Ds2MultiDim,
            FaultProfile::None,
        ),
        (
            "_faulted",
            synthetic,
            1,
            true,
            ControllerKind::Ds2Hardened,
            FaultProfile::Harsh,
        ),
    ];
    for (family_suffix, families, threads, fast_forward, controller, faults) in runs {
        let mut config = MatrixConfig {
            scenarios,
            threads,
            controllers: vec![controller],
            fast_forward,
            faults,
            ..base.clone()
        };
        config.generator.families = families;
        let matrix = ScenarioMatrix::new(config);
        let t0 = Instant::now();
        let report = matrix.run();
        let elapsed = t0.elapsed().as_secs_f64();
        let per_s = scenarios as f64 / elapsed;
        let suffix = format!(
            "{}{family_suffix}",
            if fast_forward { "" } else { "_exact" }
        );
        eprintln!(
            "bench: {scenarios}{family_suffix} scenarios on {threads} thread(s){}: {elapsed:.2}s \
             ({per_s:.2} scenarios/s, {} outcomes)",
            if fast_forward { "" } else { " [exact]" },
            report.outcomes.len()
        );
        entries.push(format!(
            "  {{\"name\": \"scenario_matrix/ds2_{threads}threads{suffix}\", \
             \"threads\": {threads}, \
             \"cpus\": {cpus}, \"scenarios\": {scenarios}, \"elapsed_s\": {elapsed:.3}, \
             \"scenarios_per_s\": {per_s:.3}}}"
        ));
    }
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write(path, &json).expect("write bench json");
    println!("{json}");
}
