//! Runs the scenario matrix across DS2 and every baseline and prints the
//! comparison table (steps-to-convergence, provisioning accuracy,
//! SASO-style stability).
//!
//! Usage: `scenario_matrix [scenarios] [controllers...]`
//!   scenarios    number of scenarios (default 40)
//!   controllers  any of ds2/dhalion/threshold/queueing (default all)
//!
//! Environment: `DS2_MATRIX_SEED` overrides the base seed.

use std::time::Instant;

use ds2_simulator::scenarios::{ControllerKind, MatrixConfig, ScenarioMatrix, WorkloadShape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenarios: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(40);
    let mut controllers: Vec<ControllerKind> = Vec::new();
    for a in args.iter().skip(1) {
        match a.as_str() {
            "ds2" => controllers.push(ControllerKind::Ds2),
            "dhalion" => controllers.push(ControllerKind::Dhalion),
            "threshold" => controllers.push(ControllerKind::Threshold),
            "queueing" => controllers.push(ControllerKind::Queueing),
            other => {
                eprintln!("unknown controller '{other}' (expected ds2/dhalion/threshold/queueing)");
                std::process::exit(2);
            }
        }
    }
    if controllers.is_empty() {
        controllers = ControllerKind::ALL.to_vec();
    }

    let mut config = MatrixConfig {
        scenarios,
        controllers: controllers.clone(),
        ..Default::default()
    };
    if let Some(seed) = std::env::var("DS2_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        config.base_seed = seed;
    }
    if let Ok(names) = std::env::var("DS2_MATRIX_WORKLOADS") {
        let workloads: Vec<WorkloadShape> = names
            .split(',')
            .filter_map(|n| match n.trim() {
                "constant" => Some(WorkloadShape::Constant),
                "step" => Some(WorkloadShape::Step),
                "diurnal" => Some(WorkloadShape::DiurnalSine),
                "spike" => Some(WorkloadShape::Spike),
                "key_skew" => Some(WorkloadShape::KeySkew),
                _ => None,
            })
            .collect();
        if workloads.is_empty() {
            eprintln!(
                "DS2_MATRIX_WORKLOADS='{names}' names no known workload \
                 (expected constant/step/diurnal/spike/key_skew)"
            );
            std::process::exit(2);
        }
        config.generator.workloads = workloads;
    }
    if let Some(secs) = std::env::var("DS2_MATRIX_DURATION_S")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        config.generator.run_duration_ns = secs * 1_000_000_000;
    }

    let verbose = std::env::var("DS2_MATRIX_VERBOSE").is_ok();
    let matrix = ScenarioMatrix::new(config.clone());
    let t0 = Instant::now();
    // Per-run progress (stderr) for debugging pathological scenarios.
    let mut last = Instant::now();
    let report = matrix.run_with(|spec, o| {
        if verbose {
            eprintln!(
                "seed {} {} {} ops={} {}: steps={} conv={} final={} in {:?}",
                spec.seed,
                spec.topology.shape.name(),
                spec.workload.shape.name(),
                o.operators,
                o.controller,
                o.steps_final_phase,
                o.converged,
                o.final_instances,
                last.elapsed(),
            );
        }
        last = Instant::now();
    });

    println!(
        "scenario matrix: {} scenarios x {} controllers in {:?}\n",
        config.scenarios,
        config.controllers.len(),
        t0.elapsed()
    );
    println!("{}", report.render(&controllers));
    for &kind in &controllers {
        let failing = report.failing_seeds(kind.name());
        if !failing.is_empty() {
            println!(
                "{}: {} runs outside the three-step claim; seeds {:?}",
                kind.name(),
                failing.len(),
                failing
            );
        }
    }
}
