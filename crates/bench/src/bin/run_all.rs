//! Runs the full experiment suite in paper order.

fn main() {
    let t0 = std::time::Instant::now();
    let (_r, report) = ds2_bench::experiments::heron::figure1(3_000_000_000_000);
    println!("{report}");
    let (_d, _s, report) = ds2_bench::experiments::heron::figure6(3_000_000_000_000);
    println!("{report}");
    let (_r, report) = ds2_bench::experiments::flink_dynamic::figure7(1_600_000_000_000);
    println!("{report}");
    let cells = ds2_bench::experiments::table4::run_table(600_000_000_000);
    println!("{}", ds2_bench::experiments::table4::report(&cells));
    println!(
        "{}",
        ds2_bench::experiments::accuracy::figure8(120_000_000_000)
    );
    println!(
        "{}",
        ds2_bench::experiments::accuracy::figure9(120_000_000_000)
    );
    let (_f, _t, report) = ds2_bench::experiments::overhead::figure10(120_000_000_000);
    println!("{report}");
    let (_o, report) = ds2_bench::experiments::skew::skew_experiment(300_000_000_000);
    println!("{report}");
    let (_r, report) = ds2_bench::experiments::ablations::linear_scaling_ablation(600_000_000_000);
    println!("{report}\n");
    let (_r, report) = ds2_bench::experiments::ablations::heron_queue_ablation(1_200_000_000_000);
    println!("{report}\n");
    println!(
        "{}\n",
        ds2_bench::experiments::ablations::controller_shootout(400_000_000_000)
    );
    println!(
        "{}",
        ds2_bench::experiments::ablations::timely_rule_ablation(60_000_000_000)
    );
    println!("full suite wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
