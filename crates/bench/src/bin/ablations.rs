//! Ablations of the design choices DESIGN.md calls out.

use ds2_bench::experiments::ablations;

fn main() {
    let (_r, report) = ablations::linear_scaling_ablation(600_000_000_000);
    println!("{report}\n");
    let (_r, report) = ablations::heron_queue_ablation(1_200_000_000_000);
    println!("{report}\n");
    println!("{}\n", ablations::controller_shootout(400_000_000_000));
    println!("{}", ablations::timely_rule_ablation(60_000_000_000));
}
