//! Table 4: DS2 convergence steps for the Nexmark queries on Flink.

fn main() {
    let cells = ds2_bench::experiments::table4::run_table(600_000_000_000);
    println!("{}", ds2_bench::experiments::table4::report(&cells));
}
