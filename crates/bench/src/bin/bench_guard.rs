//! Bench-regression smoke: compares a freshly measured policy-latency JSON
//! against the committed baseline and fails (exit 1) when the median of the
//! guarded benchmark regressed beyond the tolerance.
//!
//! Usage:
//! `bench_guard <baseline.json> <fresh.json> [--bench NAME] [--tolerance PCT] [--calibrate NAME]`
//!
//! Defaults guard `ds2_policy_evaluate/100ops_x16inst` at 25% tolerance —
//! wide enough for same-machine run-to-run noise, tight enough to catch a
//! structural regression like reintroducing per-window allocation, which
//! costs well over 25% (see BENCH_policy_latency history: the BTreeMap
//! data plane sat at ~23µs median on this case, the dense one far below).
//!
//! **Cross-machine calibration.** The committed baseline was measured on
//! one machine; CI runners are slower or faster, so comparing absolute
//! nanoseconds would gate on hardware, not code. `--calibrate NAME`
//! rescales the baseline by `fresh(NAME) / baseline(NAME)` before applying
//! the tolerance: the reference benchmark (CI uses the tiny
//! `ds2_policy_evaluate/5ops_x4inst` case) moves with machine speed, so
//! the ratio cancels hardware while a *size-dependent* regression — extra
//! per-operator work or allocation in the hot loop, which hits the 100-op
//! case far harder than the 5-op case — still trips the gate.
//!
//! The JSON is the fixed format the vendored criterion shim and
//! `scenario_matrix --bench-json` emit: an array of flat objects with
//! string `name` and numeric fields. A benchmark missing from either file
//! is an error — a renamed bench must update the baseline in the same PR.

use std::process::ExitCode;

fn field_f64(entry: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = entry.find(&pat)? + pat.len();
    let rest = entry[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `median_ns` for the entry named `bench` from the shim's JSON.
fn median_of(json: &str, bench: &str) -> Option<f64> {
    for entry in json.split('{').skip(1) {
        let entry = entry.split('}').next()?;
        let name_pat = "\"name\":";
        let Some(pos) = entry.find(name_pat) else {
            continue;
        };
        let rest = entry[pos + name_pat.len()..].trim_start();
        let name = rest.strip_prefix('"').and_then(|r| r.split('"').next());
        if name == Some(bench) {
            return field_f64(entry, "median_ns");
        }
    }
    None
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    let mut bench = String::from("ds2_policy_evaluate/100ops_x16inst");
    let mut tolerance_pct = 25.0f64;
    let mut calibrate: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => bench = args.next().expect("--bench needs a value"),
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a number")
            }
            "--calibrate" => calibrate = Some(args.next().expect("--calibrate needs a value")),
            _ => positional.push(a),
        }
    }
    let [baseline_path, fresh_path] = &positional[..] else {
        eprintln!(
            "usage: bench_guard <baseline.json> <fresh.json> \
             [--bench NAME] [--tolerance PCT] [--calibrate NAME]"
        );
        return ExitCode::from(2);
    };

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline_json = read(baseline_path);
    let fresh_json = read(fresh_path);

    let Some(mut baseline) = median_of(&baseline_json, &bench) else {
        eprintln!("bench_guard: '{bench}' not found in baseline {baseline_path}");
        return ExitCode::from(2);
    };
    let Some(fresh) = median_of(&fresh_json, &bench) else {
        eprintln!("bench_guard: '{bench}' not found in fresh run {fresh_path}");
        return ExitCode::from(2);
    };

    // Cancel machine-speed differences: scale the baseline by how much the
    // reference benchmark moved between the baseline machine and this one.
    if let Some(reference) = &calibrate {
        let (Some(ref_base), Some(ref_fresh)) = (
            median_of(&baseline_json, reference),
            median_of(&fresh_json, reference),
        ) else {
            eprintln!("bench_guard: calibration bench '{reference}' missing from a file");
            return ExitCode::from(2);
        };
        if ref_base <= 0.0 {
            eprintln!("bench_guard: calibration baseline median is zero");
            return ExitCode::from(2);
        }
        let speed = ref_fresh / ref_base;
        baseline *= speed;
        println!(
            "bench_guard: calibrated by {reference}: machine factor {speed:.3} \
             ({ref_base:.1} -> {ref_fresh:.1} ns)"
        );
    }

    let limit = baseline * (1.0 + tolerance_pct / 100.0);
    println!(
        "bench_guard: {bench}: baseline median {baseline:.1} ns, fresh {fresh:.1} ns \
         (limit {limit:.1} ns at +{tolerance_pct}%)"
    );
    if fresh > limit {
        eprintln!(
            "bench_guard: REGRESSION: median {fresh:.1} ns exceeds {limit:.1} ns \
             ({:+.1}% vs baseline)",
            (fresh / baseline - 1.0) * 100.0
        );
        return ExitCode::from(1);
    }
    println!(
        "bench_guard: OK ({:+.1}% vs baseline)",
        (fresh / baseline - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"name": "ds2_policy_evaluate/5ops_x4inst", "iterations": 10, "mean_ns": 1.0, "median_ns": 2.5, "p95_ns": 3.0},
  {"name": "ds2_policy_evaluate/100ops_x16inst", "iterations": 10, "mean_ns": 5.0, "median_ns": 4200.5, "p95_ns": 9.0}
]"#;

    #[test]
    fn extracts_named_median() {
        assert_eq!(
            median_of(SAMPLE, "ds2_policy_evaluate/100ops_x16inst"),
            Some(4200.5)
        );
        assert_eq!(
            median_of(SAMPLE, "ds2_policy_evaluate/5ops_x4inst"),
            Some(2.5)
        );
        assert_eq!(median_of(SAMPLE, "nope"), None);
    }
}
