//! Bench-regression smoke: compares a freshly measured benchmark JSON
//! against the committed baseline and fails (exit 1) when the guarded
//! metric regressed beyond the tolerance.
//!
//! Usage:
//! `bench_guard <baseline.json> <fresh.json> [--bench NAME] [--field FIELD] [--higher-is-better] [--tolerance PCT] [--calibrate NAME]`
//!
//! Defaults guard `ds2_policy_evaluate/100ops_x16inst` at 25% tolerance —
//! wide enough for same-machine run-to-run noise, tight enough to catch a
//! structural regression like reintroducing per-window allocation, which
//! costs well over 25% (see BENCH_policy_latency history: the BTreeMap
//! data plane sat at ~23µs median on this case, the dense one far below).
//!
//! **Cross-machine calibration.** The committed baseline was measured on
//! one machine; CI runners are slower or faster, so comparing absolute
//! nanoseconds would gate on hardware, not code. `--calibrate NAME`
//! rescales the baseline by `fresh(NAME) / baseline(NAME)` before applying
//! the tolerance: the reference benchmark (CI uses the tiny
//! `ds2_policy_evaluate/5ops_x4inst` case) moves with machine speed, so
//! the ratio cancels hardware while a *size-dependent* regression — extra
//! per-operator work or allocation in the hot loop, which hits the 100-op
//! case far harder than the 5-op case — still trips the gate.
//!
//! **Throughput gates.** `--field` selects the guarded numeric field
//! (default `median_ns`), and `--higher-is-better` flips the comparison:
//! the gate fails when the fresh value drops more than the tolerance
//! *below* the baseline. CI uses this to gate scenario-matrix throughput
//! (`--bench scenario_matrix/ds2_1threads --field scenarios_per_s
//! --higher-is-better`): a simulator regression — fast-forward silently
//! stopping to arm, a reintroduced per-partition loop — costs far more
//! than the 25% budget, while run-to-run noise stays well inside it.
//!
//! The JSON is the fixed format the vendored criterion shim and
//! `scenario_matrix --bench-json` emit: an array of flat objects with
//! string `name` and numeric fields. A benchmark missing from either file
//! is an error — a renamed bench must update the baseline in the same PR.

use std::process::ExitCode;

fn field_f64(entry: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = entry.find(&pat)? + pat.len();
    let rest = entry[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `field` for the entry named `bench` from the shim's JSON.
fn metric_of(json: &str, bench: &str, field: &str) -> Option<f64> {
    for entry in json.split('{').skip(1) {
        let entry = entry.split('}').next()?;
        let name_pat = "\"name\":";
        let Some(pos) = entry.find(name_pat) else {
            continue;
        };
        let rest = entry[pos + name_pat.len()..].trim_start();
        let name = rest.strip_prefix('"').and_then(|r| r.split('"').next());
        if name == Some(bench) {
            return field_f64(entry, field);
        }
    }
    None
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    let mut bench = String::from("ds2_policy_evaluate/100ops_x16inst");
    let mut field = String::from("median_ns");
    let mut higher_is_better = false;
    let mut tolerance_pct = 25.0f64;
    let mut calibrate: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => bench = args.next().expect("--bench needs a value"),
            "--field" => field = args.next().expect("--field needs a value"),
            "--higher-is-better" => higher_is_better = true,
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a number")
            }
            "--calibrate" => calibrate = Some(args.next().expect("--calibrate needs a value")),
            _ => positional.push(a),
        }
    }
    let [baseline_path, fresh_path] = &positional[..] else {
        eprintln!(
            "usage: bench_guard <baseline.json> <fresh.json> \
             [--bench NAME] [--field FIELD] [--higher-is-better] \
             [--tolerance PCT] [--calibrate NAME]"
        );
        return ExitCode::from(2);
    };

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline_json = read(baseline_path);
    let fresh_json = read(fresh_path);

    let Some(mut baseline) = metric_of(&baseline_json, &bench, &field) else {
        eprintln!("bench_guard: '{bench}'.{field} not found in baseline {baseline_path}");
        return ExitCode::from(2);
    };
    let Some(fresh) = metric_of(&fresh_json, &bench, &field) else {
        eprintln!("bench_guard: '{bench}'.{field} not found in fresh run {fresh_path}");
        return ExitCode::from(2);
    };

    // Cancel machine-speed differences: scale the baseline by how much the
    // reference benchmark moved between the baseline machine and this one.
    if let Some(reference) = &calibrate {
        let (Some(ref_base), Some(ref_fresh)) = (
            metric_of(&baseline_json, reference, &field),
            metric_of(&fresh_json, reference, &field),
        ) else {
            eprintln!("bench_guard: calibration bench '{reference}' missing from a file");
            return ExitCode::from(2);
        };
        if ref_base <= 0.0 {
            eprintln!("bench_guard: calibration baseline {field} is zero or negative");
            return ExitCode::from(2);
        }
        let speed = ref_fresh / ref_base;
        baseline *= speed;
        println!(
            "bench_guard: calibrated by {reference}: machine factor {speed:.3} \
             ({ref_base:.1} -> {ref_fresh:.1})"
        );
    }

    // Lower-is-better metrics fail above `baseline × (1 + tol)`;
    // higher-is-better metrics fail below `baseline × (1 − tol)`.
    let (limit, regressed) = if higher_is_better {
        let limit = baseline * (1.0 - tolerance_pct / 100.0);
        (limit, fresh < limit)
    } else {
        let limit = baseline * (1.0 + tolerance_pct / 100.0);
        (limit, fresh > limit)
    };
    let budget = if higher_is_better { "-" } else { "+" };
    println!(
        "bench_guard: {bench}.{field}: baseline {baseline:.1}, fresh {fresh:.1} \
         (limit {limit:.1} at {budget}{tolerance_pct}%)"
    );
    if regressed {
        eprintln!(
            "bench_guard: REGRESSION: {field} {fresh:.1} outside limit {limit:.1} \
             ({:+.1}% vs baseline)",
            (fresh / baseline - 1.0) * 100.0
        );
        return ExitCode::from(1);
    }
    println!(
        "bench_guard: OK ({:+.1}% vs baseline)",
        (fresh / baseline - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"name": "ds2_policy_evaluate/5ops_x4inst", "iterations": 10, "mean_ns": 1.0, "median_ns": 2.5, "p95_ns": 3.0},
  {"name": "ds2_policy_evaluate/100ops_x16inst", "iterations": 10, "mean_ns": 5.0, "median_ns": 4200.5, "p95_ns": 9.0}
]"#;

    const MATRIX_SAMPLE: &str = r#"[
  {"name": "scenario_matrix/ds2_1threads", "threads": 1, "cpus": 1, "scenarios": 40, "elapsed_s": 0.063, "scenarios_per_s": 634.9},
  {"name": "scenario_matrix/ds2_1threads_exact", "threads": 1, "cpus": 1, "scenarios": 40, "elapsed_s": 0.127, "scenarios_per_s": 315.0}
]"#;

    #[test]
    fn extracts_named_median() {
        assert_eq!(
            metric_of(SAMPLE, "ds2_policy_evaluate/100ops_x16inst", "median_ns"),
            Some(4200.5)
        );
        assert_eq!(
            metric_of(SAMPLE, "ds2_policy_evaluate/5ops_x4inst", "median_ns"),
            Some(2.5)
        );
        assert_eq!(metric_of(SAMPLE, "nope", "median_ns"), None);
    }

    #[test]
    fn extracts_throughput_field() {
        assert_eq!(
            metric_of(
                MATRIX_SAMPLE,
                "scenario_matrix/ds2_1threads",
                "scenarios_per_s"
            ),
            Some(634.9)
        );
        assert_eq!(
            metric_of(
                MATRIX_SAMPLE,
                "scenario_matrix/ds2_1threads_exact",
                "elapsed_s"
            ),
            Some(0.127)
        );
        assert_eq!(
            metric_of(MATRIX_SAMPLE, "scenario_matrix/ds2_1threads", "nope"),
            None
        );
    }
}
