//! Figure 8: observed source rates and record-latency distributions across
//! configurations of the Nexmark queries on the Flink personality.

fn main() {
    println!(
        "{}",
        ds2_bench::experiments::accuracy::figure8(120_000_000_000)
    );
}
