//! Figure 9: per-epoch latency CDFs across worker counts on the Timely
//! personality.

fn main() {
    println!(
        "{}",
        ds2_bench::experiments::accuracy::figure9(120_000_000_000)
    );
}
