//! Figure 7: DS2 driving Flink through a dynamic two-phase word count.

fn main() {
    let (_run, report) = ds2_bench::experiments::flink_dynamic::figure7(1_600_000_000_000);
    println!("{report}");
    println!("timeline written to results/fig7_timeline.csv");
}
