//! §4.2.3: DS2 under data skew converges in two steps to the no-skew
//! optimum without over-provisioning.

fn main() {
    let (_o, report) = ds2_bench::experiments::skew::skew_experiment(300_000_000_000);
    println!("{report}");
}
