//! Runs the runtime data-plane throughput baseline and prints the rows
//! (records/s single-op and 3-op keyed chain under live DS2 control, plus
//! the worst rescale pause).
//!
//! Usage: `runtime_pipeline [--duration-s N] [--bench-json PATH]`
//!
//! ```text
//!   --duration-s N    measurement window per row in seconds (default 4)
//!   --bench-json P    also write the rows to P in the bench_guard JSON
//!                     format (the committed BENCH_runtime_pipeline.json)
//! ```
//!
//! The table goes to stdout; progress goes to stderr.

use std::time::{Duration, Instant};

use ds2_bench::output::{fmt_rate, render_table};
use ds2_bench::runtime_pipeline::{run_single_op, run_three_op_keyed, to_bench_json};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: runtime_pipeline [--duration-s N] [--bench-json PATH]");
    std::process::exit(2);
}

fn main() {
    let mut duration = Duration::from_secs(4);
    let mut bench_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration-s" => {
                let v = args.next().unwrap_or_else(|| usage_exit("missing value"));
                let secs: f64 = v.parse().unwrap_or_else(|_| usage_exit("bad --duration-s"));
                duration = Duration::from_secs_f64(secs);
            }
            "--bench-json" => {
                bench_json = Some(args.next().unwrap_or_else(|| usage_exit("missing path")));
            }
            other => usage_exit(&format!("unknown argument: {other}")),
        }
    }

    let t0 = Instant::now();
    eprintln!("runtime_pipeline: single_op ({duration:?})...");
    let single = run_single_op(duration);
    eprintln!("runtime_pipeline: three_op_keyed ({duration:?})...");
    let three = run_three_op_keyed(duration);
    let results = [single, three];

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_rate(r.records_per_s),
                format!("{}", r.records),
                format!("{:.2}s", r.elapsed_s),
                format!("{}", r.rescales),
                format!("{:.1}", r.max_pause_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "bench",
                "records/s",
                "records",
                "window",
                "rescales",
                "max_pause_ms"
            ],
            &rows,
        )
    );

    if let Some(path) = bench_json {
        std::fs::write(&path, to_bench_json(&results)).expect("write bench json");
        eprintln!("runtime_pipeline: wrote {path}");
    }
    eprintln!("runtime_pipeline: done in {:?}", t0.elapsed());
}
