//! Figure 10: instrumentation overhead, vanilla vs instrumented.

fn main() {
    let (_f, _t, report) = ds2_bench::experiments::overhead::figure10(120_000_000_000);
    println!("{report}");
}
