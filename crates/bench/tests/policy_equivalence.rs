//! Refactor-equivalence guard for the dense data plane: on metrics windows
//! produced by real simulated runs of generated scenarios, the workspace
//! path (`evaluate_into`) must produce **bit-identical** plans and
//! estimates to the allocating `evaluate` path — same floats, same
//! ceilings, same errors — with ONE workspace recycled across all of them.

use ds2_core::deployment::Deployment;
use ds2_core::policy::{Ds2Policy, PolicyConfig, PolicyWorkspace};
use ds2_simulator::engine::{EngineConfig, FluidEngine, InstrumentationConfig};
use ds2_simulator::scenarios::{GeneratorConfig, ScenarioSpec};

#[test]
fn evaluate_into_matches_evaluate_on_generated_scenarios() {
    let generator = GeneratorConfig::default();
    let policy = Ds2Policy::with_config(PolicyConfig {
        max_parallelism: Some(64),
        ..Default::default()
    });
    // One workspace across every scenario: cross-scenario reuse must not
    // leak state between windows of *different* graphs either.
    let mut ws = PolicyWorkspace::new();

    let mut evaluated = 0usize;
    for seed in 0..80u64 {
        let spec = ScenarioSpec::generate(seed, &generator);
        let graph = spec.topology.graph.clone();
        let mut engine = FluidEngine::new(
            graph.clone(),
            spec.profiles.clone(),
            spec.sources.clone(),
            spec.initial.clone(),
            EngineConfig {
                instrumentation: InstrumentationConfig::disabled(),
                seed,
                tick_ns: 25_000_000,
                ..Default::default()
            },
        );
        // Two windows: the first warms rates up, the second is evaluated.
        engine.run_for(10_000_000_000);
        let _ = engine.collect_snapshot();
        engine.run_for(10_000_000_000);
        let snap = engine.collect_snapshot();
        let current: Deployment = engine.current_deployment();

        let old_path = policy.evaluate(&graph, &snap, &current);
        let dense_path = policy.evaluate_into(&graph, &snap, &current, &mut ws);

        match (old_path, dense_path) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.plan, b.plan, "seed {seed}: plans diverged");
                for op in graph.operators() {
                    // OperatorEstimate compares f64 fields exactly: this is
                    // the bit-identity claim, not an approximate one.
                    assert_eq!(
                        a.estimates.get(op),
                        b.estimates.get(op),
                        "seed {seed}: estimates diverged at {op}"
                    );
                }
                evaluated += 1;
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed}: errors diverged"),
            (a, b) => panic!("seed {seed}: one path failed: {a:?} vs {b:?}"),
        }
    }
    assert!(
        evaluated >= 50,
        "only {evaluated} scenarios produced evaluable windows (need >= 50)"
    );
}
