//! Proof of the data plane's headline property: after one warm-up call on a
//! fixed graph, [`Ds2Policy::evaluate_into`] performs **zero heap
//! allocations** per evaluation. A counting global allocator wraps `System`
//! and the test asserts the counter does not move across repeated
//! evaluations — which is exactly what makes the policy cheap enough to run
//! on every metrics window (paper §3.2, §6).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use ds2_core::policy::{Ds2Policy, PolicyWorkspace};
use ds2_core::rates::InstanceMetrics;
use ds2_core::snapshot::MetricsSnapshot;

struct CountingAllocator;

thread_local! {
    /// Allocations performed by the *current* thread — per-thread so the
    /// test harness's parallel test threads cannot pollute each other's
    /// measurement windows.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the TLS slot may be mid-teardown during thread exit.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The policy-latency bench's 500-operator chain with 32 instances per
/// operator — the workload the perf acceptance criteria are pinned to.
fn chain_scenario(n: usize, instances: usize) -> (LogicalGraph, MetricsSnapshot, Deployment) {
    let mut b = GraphBuilder::new();
    let mut prev: Option<OperatorId> = None;
    let mut ids = Vec::new();
    for i in 0..n {
        let op = b.operator(format!("op{i}"));
        if let Some(p) = prev {
            b.connect(p, op);
        }
        prev = Some(op);
        ids.push(op);
    }
    let graph = b.build().unwrap();
    let mut snap = MetricsSnapshot::new();
    let mut parallelism = BTreeMap::new();
    for (i, &op) in ids.iter().enumerate() {
        parallelism.insert(op, instances);
        if i == 0 {
            snap.set_source_rate(op, 1_000_000.0);
            snap.insert_instances(
                op,
                vec![
                    InstanceMetrics {
                        records_out: 100_000,
                        useful_ns: 500_000_000,
                        window_ns: 1_000_000_000,
                        ..Default::default()
                    };
                    instances
                ],
            );
        } else {
            snap.insert_instances(
                op,
                vec![
                    InstanceMetrics {
                        records_in: 100_000,
                        records_out: 100_000,
                        useful_ns: 800_000_000,
                        window_ns: 1_000_000_000,
                        ..Default::default()
                    };
                    instances
                ],
            );
        }
    }
    (graph, snap, Deployment::from_map(parallelism))
}

#[test]
fn evaluate_into_is_allocation_free_after_warmup() {
    let (graph, snap, deployment) = chain_scenario(500, 32);
    let policy = Ds2Policy::new();
    let mut ws = PolicyWorkspace::new();

    // Warm-up: sizes the workspace buffers to the graph.
    let warm = policy
        .evaluate_into(&graph, &snap, &deployment, &mut ws)
        .unwrap();
    let expected_plan = warm.plan.clone();

    let before = thread_allocations();
    for _ in 0..100 {
        let out = policy
            .evaluate_into(&graph, &snap, &deployment, &mut ws)
            .unwrap();
        assert_eq!(out.plan, expected_plan);
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "evaluate_into allocated {} times across 100 warm evaluations",
        after - before
    );
}

#[test]
fn workspace_adapts_to_smaller_graph_without_allocating() {
    // A workspace warmed on a large graph must serve smaller graphs with no
    // further allocation (the matrix reuses one workspace across cells of
    // varying operator counts).
    let (big_graph, big_snap, big_dep) = chain_scenario(200, 8);
    let (small_graph, small_snap, small_dep) = chain_scenario(20, 4);
    let policy = Ds2Policy::new();
    let mut ws = PolicyWorkspace::new();
    policy
        .evaluate_into(&big_graph, &big_snap, &big_dep, &mut ws)
        .unwrap();
    policy
        .evaluate_into(&small_graph, &small_snap, &small_dep, &mut ws)
        .unwrap();

    let before = thread_allocations();
    for _ in 0..10 {
        policy
            .evaluate_into(&small_graph, &small_snap, &small_dep, &mut ws)
            .unwrap();
        policy
            .evaluate_into(&big_graph, &big_snap, &big_dep, &mut ws)
            .unwrap();
    }
    let after = thread_allocations();
    assert_eq!(after - before, 0, "alternating graph sizes allocated");
}
