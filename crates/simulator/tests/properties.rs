//! Property-based tests of the fluid engine: conservation laws, ordering,
//! and backpressure monotonicity over randomized chains.

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use ds2_simulator::engine::{EngineConfig, FluidEngine, InstrumentationConfig};
use ds2_simulator::profile::{OperatorProfile, ProfileMap};
use ds2_simulator::queue::EpochQueue;
use ds2_simulator::scenarios::{
    ControllerKind, ControllerSummary, GeneratorConfig, MatrixConfig, NexmarkQuery, ScenarioFamily,
    ScenarioMatrix,
};
use ds2_simulator::source::SourceSpec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ChainScenario {
    /// `(capacity, selectivity, parallelism)` per operator.
    stages: Vec<(f64, f64, usize)>,
    source_rate: f64,
}

fn chain_strategy() -> impl Strategy<Value = ChainScenario> {
    (
        proptest::collection::vec((100.0f64..5_000.0, 0.25f64..3.0, 1usize..=4), 1..=3),
        200.0f64..5_000.0,
    )
        .prop_map(|(stages, source_rate)| ChainScenario {
            stages,
            source_rate,
        })
}

fn build(sc: &ChainScenario) -> (FluidEngine, LogicalGraph, Vec<OperatorId>) {
    let mut b = GraphBuilder::new();
    let src = b.operator("src");
    let mut ids = vec![src];
    for i in 0..sc.stages.len() {
        let op = b.operator(format!("op{i}"));
        b.connect(*ids.last().unwrap(), op);
        ids.push(op);
    }
    let graph = b.build().unwrap();
    let mut profiles = ProfileMap::new();
    let mut deployment = Deployment::uniform(&graph, 1);
    for (i, &(cap, sel, p)) in sc.stages.iter().enumerate() {
        profiles.insert(ids[i + 1], OperatorProfile::with_capacity(cap, sel));
        deployment.set(ids[i + 1], p);
    }
    let mut sources = BTreeMap::new();
    sources.insert(src, SourceSpec::constant(sc.source_rate));
    let engine = FluidEngine::new(
        graph.clone(),
        profiles,
        sources,
        deployment,
        EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            // Small queues so backpressure reaches the source well within
            // each property's warm-up even for adversarial chains.
            per_instance_queue: 500.0,
            ..Default::default()
        },
    );
    (engine, graph, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Record conservation: everything a source emitted is either queued,
    /// buffered, or was processed by the first operator.
    #[test]
    fn records_are_conserved(sc in chain_strategy()) {
        let (mut engine, _graph, ids) = build(&sc);
        let mut emitted_total = 0.0f64;
        for _ in 0..2_000 {
            engine.tick();
            emitted_total += engine.last_tick().emitted.values().sum::<f64>();
        }
        let snap = engine.collect_snapshot();
        let first = snap.operator(ids[1]).unwrap();
        let processed = first.total_records_in() as f64;
        let queued = engine.queue_len(ids[1]);
        let diff = (emitted_total - processed - queued).abs();
        prop_assert!(
            diff <= emitted_total * 0.01 + 2.0,
            "emitted {} != processed {} + queued {}",
            emitted_total, processed, queued
        );
    }

    /// Selectivity conservation: downstream receives upstream output times
    /// selectivity (within rounding), regardless of backpressure.
    #[test]
    fn selectivity_is_respected(sc in chain_strategy()) {
        prop_assume!(sc.stages.len() >= 2);
        let (mut engine, _graph, ids) = build(&sc);
        engine.run_for(20_000_000_000);
        let snap = engine.collect_snapshot();
        let up = snap.operator(ids[1]).unwrap();
        let down = snap.operator(ids[2]).unwrap();
        let produced = up.total_records_out() as f64;
        let received = down.total_records_in() as f64 + engine.queue_len(ids[2]);
        prop_assert!(
            (produced - received).abs() <= produced * 0.01 + 2.0,
            "produced {} vs received {}", produced, received
        );
    }

    /// Throughput is bounded by the weakest stage: the observed source rate
    /// never exceeds offered, and never exceeds any stage's cumulative
    /// capacity limit (adjusted for upstream selectivities).
    #[test]
    fn bottleneck_bounds_throughput(sc in chain_strategy()) {
        let (mut engine, _graph, ids) = build(&sc);
        // Long warm-up so queues reach steady state.
        engine.run_for(120_000_000_000);
        let _ = engine.collect_snapshot();
        engine.run_for(20_000_000_000);
        let snap = engine.collect_snapshot();
        let obs = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        prop_assert!(obs <= sc.source_rate * 1.02 + 1.0);

        // Effective source-rate cap per stage: capacity / product of
        // selectivities upstream of the stage.
        let mut sel_product = 1.0;
        for &(cap, sel, p) in &sc.stages {
            let cap_total = cap * p as f64;
            let stage_cap_in_source_units = cap_total / sel_product;
            prop_assert!(
                obs <= stage_cap_in_source_units * 1.05 + 2.0,
                "obs {} exceeds stage cap {}",
                obs, stage_cap_in_source_units
            );
            sel_product *= sel;
        }
    }

    /// Adding parallelism to the bottleneck never reduces throughput
    /// (monotonicity — the physical basis for DS2's Property 1).
    #[test]
    fn more_parallelism_never_hurts(sc in chain_strategy(), extra in 1usize..=3) {
        let (mut base_engine, _g, ids) = build(&sc);
        base_engine.run_for(90_000_000_000);
        let _ = base_engine.collect_snapshot();
        base_engine.run_for(20_000_000_000);
        let base_obs = base_engine
            .collect_snapshot()
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();

        let mut boosted = sc.clone();
        for stage in &mut boosted.stages {
            stage.2 += extra;
        }
        let (mut boosted_engine, _g, ids2) = build(&boosted);
        boosted_engine.run_for(90_000_000_000);
        let _ = boosted_engine.collect_snapshot();
        boosted_engine.run_for(20_000_000_000);
        let boosted_obs = boosted_engine
            .collect_snapshot()
            .operator(ids2[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        prop_assert!(
            boosted_obs >= base_obs * 0.98 - 1.0,
            "throughput dropped from {} to {} after adding parallelism",
            base_obs, boosted_obs
        );
    }

    /// Every snapshot the engine produces satisfies the model invariants
    /// (`Wu <= W`, waits bounded) for every instance of every operator.
    #[test]
    fn snapshots_always_valid(sc in chain_strategy()) {
        let (mut engine, graph, _ids) = build(&sc);
        for _ in 0..5 {
            engine.run_for(7_000_000_000);
            let snap = engine.collect_snapshot();
            for op in graph.operators() {
                let m = snap.operator(op).unwrap();
                for inst in &m.instances {
                    prop_assert!(inst.validate().is_ok(), "{op}: {inst:?}");
                }
            }
        }
    }

    /// FIFO queues: pops return spans in non-decreasing tag order and
    /// conserve mass.
    #[test]
    fn queue_fifo_and_mass(
        pushes in proptest::collection::vec((0u64..1_000, 0.1f64..100.0), 1..50),
        pop_fraction in 0.1f64..1.5,
    ) {
        let mut q = EpochQueue::new(f64::INFINITY);
        let mut total = 0.0;
        let mut tag = 0u64;
        for (dt, records) in pushes {
            tag += dt;
            q.push(tag, records);
            total += records;
        }
        let spans = q.pop(total * pop_fraction);
        let popped: f64 = spans.iter().map(|s| s.records).sum();
        prop_assert!(popped <= total * 1.0000001);
        prop_assert!((popped + q.len() - total).abs() < 1e-6);
        for w in spans.windows(2) {
            prop_assert!(w[0].emitted_ns <= w[1].emitted_ns, "FIFO violated");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Key-class split weights are a mass-conserving refinement of the
    /// classic skewed weights: for any parallelism, hot share and split
    /// degree the weights sum to 1 (every record lands on exactly one
    /// instance), split 1 reproduces the classic `instance_weights`
    /// **bitwise**, non-splittable profiles ignore the split dimension
    /// entirely, and deepening a split never *raises* the hottest
    /// instance's share (splits only relieve — the merge direction is the
    /// same statement read right to left).
    #[test]
    fn class_splits_conserve_share_mass_and_weights(
        p in 1usize..=64,
        split in 1usize..=96,
        hot in 0.05f64..0.95,
        cap in 100.0f64..5_000.0,
    ) {
        let splittable = OperatorProfile::with_capacity(cap, 1.0).with_splittable_skew(hot);
        let weights = splittable.instance_weights_split(p, split);
        prop_assert_eq!(weights.len(), p);
        let mass: f64 = weights.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {} != 1", mass);
        for &w in &weights {
            prop_assert!(w > 0.0, "dead instance in {:?}", weights);
        }

        // Split 1 *is* the classic model, bit for bit.
        let classic: Vec<u64> = splittable
            .instance_weights(p)
            .iter()
            .map(|w| w.to_bits())
            .collect();
        let at_one: Vec<u64> = splittable
            .instance_weights_split(p, 1)
            .iter()
            .map(|w| w.to_bits())
            .collect();
        prop_assert_eq!(at_one, classic);

        // A non-splittable hot key cannot be split by decree.
        let pinned = OperatorProfile::with_capacity(cap, 1.0).with_skew(hot);
        let pinned_split: Vec<u64> = pinned
            .instance_weights_split(p, split)
            .iter()
            .map(|w| w.to_bits())
            .collect();
        let pinned_classic: Vec<u64> = pinned
            .instance_weights(p)
            .iter()
            .map(|w| w.to_bits())
            .collect();
        prop_assert_eq!(pinned_split, pinned_classic);

        // Splitting deeper is monotone: max share never grows, so the
        // effective capacity never shrinks.
        let max_share = |s: usize| -> f64 {
            splittable
                .instance_weights_split(p, s)
                .iter()
                .cloned()
                .fold(0.0, f64::max)
        };
        let deeper = split.saturating_mul(2);
        prop_assert!(
            max_share(deeper) <= max_share(split) + 1e-12,
            "split {} -> {} raised the max share",
            split,
            deeper
        );
        prop_assert!(
            splittable.effective_capacity_split(p, deeper)
                >= splittable.effective_capacity_split(p, split) - 1e-9,
            "deeper split lost capacity"
        );
    }
}

/// The family-mix pool the partition property draws from: the synthetic
/// family and every nexmark query family.
const FAMILY_POOL: [ScenarioFamily; 7] = [
    ScenarioFamily::Synthetic,
    ScenarioFamily::Nexmark(NexmarkQuery::Q1),
    ScenarioFamily::Nexmark(NexmarkQuery::Q2),
    ScenarioFamily::Nexmark(NexmarkQuery::Q3),
    ScenarioFamily::Nexmark(NexmarkQuery::Q5),
    ScenarioFamily::Nexmark(NexmarkQuery::Q8),
    ScenarioFamily::Nexmark(NexmarkQuery::Q11),
];

proptest! {
    // Matrix runs are whole closed-loop simulations; a handful of randomized
    // mixes suffices to catch a summary that double-counts or drops a slice.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Per-family `MatrixReport` summaries partition the overall summary:
    /// for any family mix (with repetition-weighted draws) and any thread
    /// count, the per-family counts and score sums add up exactly to the
    /// overall `summary()` — no outcome is dropped, duplicated, or
    /// attributed to two families.
    #[test]
    fn family_summaries_partition_the_overall_summary(
        family_picks in proptest::collection::vec(0usize..FAMILY_POOL.len(), 1..6),
        scenarios in 3usize..8,
        threads in 1usize..4,
        seed_offset in 0u64..1_000,
    ) {
        let families: Vec<ScenarioFamily> =
            family_picks.into_iter().map(|i| FAMILY_POOL[i]).collect();
        let config = MatrixConfig {
            scenarios,
            base_seed: 0x9A37 + seed_offset,
            threads,
            controllers: vec![ControllerKind::Ds2, ControllerKind::Threshold],
            generator: GeneratorConfig {
                families,
                run_duration_ns: 120_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = ScenarioMatrix::new(config.clone()).run();
        prop_assert_eq!(report.outcomes.len(), scenarios * 2);

        let families = report.families();
        // Every outcome's family is one of the listed families, and the
        // list is duplicate-free.
        for pair in families.windows(2) {
            prop_assert_ne!(pair[0], pair[1]);
        }
        for kind in [ControllerKind::Ds2, ControllerKind::Threshold] {
            let overall = report.summary(kind);
            let slices: Vec<ControllerSummary> = families
                .iter()
                .map(|f| report.summary_for_family(kind, f))
                .collect();
            // Counts partition exactly.
            prop_assert_eq!(slices.iter().map(|s| s.runs).sum::<usize>(), overall.runs);
            prop_assert_eq!(
                slices.iter().map(|s| s.converged).sum::<usize>(),
                overall.converged
            );
            prop_assert_eq!(
                slices.iter().map(|s| s.within_three_steps).sum::<usize>(),
                overall.within_three_steps
            );
            prop_assert_eq!(
                slices.iter().map(|s| s.underprovisioned_runs).sum::<usize>(),
                overall.underprovisioned_runs
            );
            prop_assert_eq!(
                slices.iter().map(|s| s.total_decisions).sum::<usize>(),
                overall.total_decisions
            );
            prop_assert_eq!(
                slices.iter().map(|s| s.max_steps).max().unwrap_or(0),
                overall.max_steps
            );
            // Score sums partition (means recombine through their weights).
            let steps_sum: f64 = slices
                .iter()
                .map(|s| s.mean_steps * s.converged as f64)
                .sum();
            prop_assert!(
                (steps_sum - overall.mean_steps * overall.converged as f64).abs() < 1e-9,
                "steps sum {} != overall {}",
                steps_sum,
                overall.mean_steps * overall.converged as f64
            );
            let over_sum: f64 = slices
                .iter()
                .map(|s| s.mean_overprovision * s.converged as f64)
                .sum();
            prop_assert!(
                (over_sum - overall.mean_overprovision * overall.converged as f64).abs() < 1e-9,
                "overprovision sum diverged"
            );
            let reversal_sum: f64 = slices
                .iter()
                .map(|s| s.mean_reversals * s.runs as f64)
                .sum();
            prop_assert!(
                (reversal_sum - overall.mean_reversals * overall.runs as f64).abs() < 1e-9,
                "reversal sum diverged"
            );
            // And the fraction recombines from the partitioned counts.
            if overall.runs > 0 {
                prop_assert!(
                    (overall.fraction_within_three
                        - overall.within_three_steps as f64 / overall.runs as f64)
                        .abs()
                        < 1e-12
                );
            }
        }
    }
}
