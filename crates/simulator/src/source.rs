//! Source rate schedules.
//!
//! The offered rate of a source is defined by the application (sensors,
//! market feeds); experiments drive it through a piecewise-constant
//! schedule, e.g. the two-phase word-count workload of §5.3 (2M records/s
//! for ten minutes, then 1M records/s).

/// A piecewise-constant offered-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    /// `(from_ns, records_per_second)` steps, sorted by `from_ns`.
    steps: Vec<(u64, f64)>,
}

impl RateSchedule {
    /// A constant rate from time zero.
    pub fn constant(rate: f64) -> Self {
        Self {
            steps: vec![(0, rate)],
        }
    }

    /// Builds a schedule from `(from_ns, rate)` steps.
    ///
    /// Steps are sorted by start time; the rate before the first step is 0.
    pub fn steps(mut steps: Vec<(u64, f64)>) -> Self {
        steps.sort_by_key(|&(t, _)| t);
        Self { steps }
    }

    /// The offered rate at time `now_ns`, in records/second.
    pub fn rate_at(&self, now_ns: u64) -> f64 {
        let mut rate = 0.0;
        for &(from, r) in &self.steps {
            if from <= now_ns {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// The maximum rate anywhere in the schedule.
    pub fn peak_rate(&self) -> f64 {
        self.steps.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// The first phase boundary strictly after `now_ns`, if any — the time
    /// the offered rate next changes. Fast-forward uses this to bound how
    /// far a steady-state transition remains valid; `None` means the
    /// schedule is constant from `now_ns` on.
    pub fn next_change_after(&self, now_ns: u64) -> Option<u64> {
        self.steps.iter().map(|&(t, _)| t).find(|&t| t > now_ns)
    }

    /// The same phase boundaries with every rate multiplied by `factor` —
    /// how a multi-feed scenario splits one workload schedule across its
    /// sources at fixed rate ratios.
    pub fn scaled(&self, factor: f64) -> RateSchedule {
        RateSchedule {
            steps: self.steps.iter().map(|&(t, r)| (t, r * factor)).collect(),
        }
    }
}

/// Configuration of one source operator in a simulated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Offered-rate schedule.
    pub schedule: RateSchedule,
    /// When `true`, records the source could not emit (backpressure, or the
    /// job being down during redeployment) accumulate in an external
    /// durable buffer — Kafka-style — and are replayed as capacity allows.
    /// When `false`, unemitted offers are simply lost (a rate-limited
    /// generator, as in the Dhalion benchmark).
    pub durable_backlog: bool,
    /// Generation cost per record in nanoseconds, bounding the per-instance
    /// source output capacity (a source is an operator too).
    pub generation_cost_ns: f64,
}

impl SourceSpec {
    /// A constant-rate generator without durable backlog.
    pub fn constant(rate: f64) -> Self {
        Self {
            schedule: RateSchedule::constant(rate),
            durable_backlog: false,
            generation_cost_ns: 0.0,
        }
    }

    /// A constant-rate durable (replayable) source.
    pub fn durable(rate: f64) -> Self {
        Self {
            schedule: RateSchedule::constant(rate),
            durable_backlog: true,
            generation_cost_ns: 0.0,
        }
    }

    /// Sets a phased schedule.
    pub fn with_schedule(mut self, schedule: RateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the per-record generation cost.
    pub fn with_generation_cost(mut self, ns: f64) -> Self {
        self.generation_cost_ns = ns;
        self
    }

    /// This spec with every schedule rate multiplied by `factor` (backlog
    /// semantics and generation cost unchanged).
    pub fn scaled(&self, factor: f64) -> SourceSpec {
        SourceSpec {
            schedule: self.schedule.scaled(factor),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate() {
        let s = RateSchedule::constant(100.0);
        assert_eq!(s.rate_at(0), 100.0);
        assert_eq!(s.rate_at(u64::MAX), 100.0);
        assert_eq!(s.peak_rate(), 100.0);
    }

    #[test]
    fn phased_schedule() {
        // The §5.3 two-phase workload: 2M/s then 1M/s at t = 800 s.
        let s = RateSchedule::steps(vec![(800_000_000_000, 1e6), (0, 2e6)]);
        assert_eq!(s.rate_at(0), 2e6);
        assert_eq!(s.rate_at(799_999_999_999), 2e6);
        assert_eq!(s.rate_at(800_000_000_000), 1e6);
        assert_eq!(s.peak_rate(), 2e6);
    }

    #[test]
    fn rate_before_first_step_is_zero() {
        let s = RateSchedule::steps(vec![(1_000, 5.0)]);
        assert_eq!(s.rate_at(0), 0.0);
        assert_eq!(s.rate_at(1_000), 5.0);
    }

    #[test]
    fn spec_builders() {
        let s = SourceSpec::constant(10.0);
        assert!(!s.durable_backlog);
        let d = SourceSpec::durable(10.0).with_generation_cost(5.0);
        assert!(d.durable_backlog);
        assert_eq!(d.generation_cost_ns, 5.0);
    }
}
