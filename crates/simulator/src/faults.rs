//! Deterministic fault injection for scenario runs.
//!
//! DS2's three-step claim rests on clean instrumentation: every operator
//! reports accurate useful-time metrics and every rescale lands atomically.
//! This module breaks both assumptions on purpose — and does so
//! *deterministically*, so faulted runs stay reproducible and bitwise
//! identical between the fast-forward and `--exact` execution modes.
//!
//! A [`FaultPlan`] is derived from the scenario seed under its own salt
//! ([`FAULT_PLAN_SALT`]), separated from the family-draw and scenario-body
//! streams exactly like the family axis: enabling faults never perturbs the
//! workload, topology, or noise draws of the underlying scenario. Every
//! individual fault decision is a pure function of
//! `(seed, stream, window/decision index, operator, instance)` via a
//! splitmix64 hash — no stateful RNG, so injection is independent of
//! evaluation order and of how the simulator advanced time between windows.
//!
//! Two fault classes are injected:
//!
//! * **Metric faults**, applied to each collected [`MetricsSnapshot`] right
//!   after the window closes: whole-operator dropout (all slots missing),
//!   per-slot dropout, multiplicative counter noise, stale samples (the
//!   previous window's rows delivered again), and sticky stragglers whose
//!   useful time is inflated for the whole run.
//! * **Actuation faults**, applied when the controller's rescale command is
//!   carried out: the command can time out (the job pays the redeploy
//!   downtime but lands back on the old configuration), land partially
//!   (some operators keep their old allocation), or fail silently (nothing
//!   happens — and no acknowledgement ever arrives).
//!
//! Fast-forward equivalence holds by construction: metric faults mutate the
//! snapshot *after* collection, never the engine, and actuation faults are a
//! pure function of the decision index — so as long as the unfaulted
//! snapshot/decision sequence is bitwise identical between modes (the PR 4
//! guarantee), the faulted sequence is too.

use ds2_core::deployment::Deployment;
use ds2_core::graph::LogicalGraph;
use ds2_core::snapshot::MetricsSnapshot;

/// Salt separating the fault stream from the family-draw stream
/// (`FAMILY_DRAW_SALT`) and every family's scenario-body stream.
pub const FAULT_PLAN_SALT: u64 = 0x7A11_5EED_FAB1_0C37;

/// Intensity of the injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// No faults: the paper's clean-instrumentation setting.
    #[default]
    None,
    /// Occasional dropouts, mild noise, few stragglers, rare actuation
    /// failures — a well-run production cluster on a bad day.
    Mild,
    /// Frequent dropouts, heavy noise, many stragglers, common actuation
    /// failures — degraded telemetry as the operating regime.
    Harsh,
}

impl FaultProfile {
    /// CLI name of the profile.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Mild => "mild",
            FaultProfile::Harsh => "harsh",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "none" => Some(FaultProfile::None),
            "mild" => Some(FaultProfile::Mild),
            "harsh" => Some(FaultProfile::Harsh),
            _ => None,
        }
    }

    /// `true` for the fault-free profile.
    pub fn is_none(self) -> bool {
        self == FaultProfile::None
    }

    /// Fault intensities of this profile, `None` for the fault-free one.
    pub fn params(self) -> Option<FaultParams> {
        match self {
            FaultProfile::None => None,
            FaultProfile::Mild => Some(FaultParams::MILD),
            FaultProfile::Harsh => Some(FaultParams::HARSH),
        }
    }
}

/// Per-window / per-decision fault probabilities and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultParams {
    /// Probability per operator-window that *all* of an operator's slots
    /// (and, for sources, the offered rate) go missing.
    pub op_drop: f64,
    /// Probability per instance-window that one slot goes missing.
    pub slot_drop: f64,
    /// Probability per instance-window of multiplicative counter noise.
    pub noise_prob: f64,
    /// Maximum relative amplitude of the counter noise (`0.25` = ±25%).
    pub noise_amp: f64,
    /// Probability per operator-window that the previous window's rows are
    /// delivered again (a stale/delayed sample).
    pub stale_prob: f64,
    /// Fraction of instances that are stragglers for the whole run.
    pub straggler_frac: f64,
    /// Maximum useful-time inflation factor of a straggler.
    pub straggler_mult: f64,
    /// Probability per rescale that the command fails silently (no landing,
    /// no acknowledgement).
    pub act_silent: f64,
    /// Probability per rescale that the command times out: the job pays the
    /// redeploy downtime but stays on the old configuration.
    pub act_timeout: f64,
    /// Probability per rescale of a partial landing (some operators keep
    /// their old allocation).
    pub act_partial: f64,
    /// Fraction of the run, at the end, left fault-free — the recovery
    /// tail. Faults that strike in the last seconds are unrecoverable by
    /// construction (a redeploy's downtime lands inside the scoring
    /// window), so the tail is what makes "converges once faults clear"
    /// a measurable property rather than a coin flip on fault timing.
    pub tail_frac: f64,
}

impl FaultParams {
    /// The `mild` profile's intensities.
    pub const MILD: FaultParams = FaultParams {
        op_drop: 0.02,
        slot_drop: 0.02,
        noise_prob: 0.08,
        noise_amp: 0.20,
        stale_prob: 0.02,
        straggler_frac: 0.08,
        straggler_mult: 3.0,
        act_silent: 0.04,
        act_timeout: 0.02,
        act_partial: 0.02,
        tail_frac: 0.25,
    };

    /// The `harsh` profile's intensities.
    pub const HARSH: FaultParams = FaultParams {
        op_drop: 0.08,
        slot_drop: 0.10,
        noise_prob: 0.20,
        noise_amp: 0.50,
        stale_prob: 0.08,
        straggler_frac: 0.15,
        straggler_mult: 5.0,
        act_silent: 0.12,
        act_timeout: 0.10,
        act_partial: 0.10,
        tail_frac: 0.25,
    };
}

// Stream discriminators keeping the per-fault hash draws independent.
const STREAM_OP_DROP: u64 = 1;
const STREAM_SLOT_DROP: u64 = 2;
const STREAM_NOISE: u64 = 3;
const STREAM_NOISE_AMP: u64 = 4;
const STREAM_STALE: u64 = 5;
const STREAM_STRAGGLER: u64 = 6;
const STREAM_STRAGGLER_MULT: u64 = 7;
const STREAM_ACTUATION: u64 = 8;
const STREAM_PARTIAL: u64 = 9;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a hash (53 mantissa bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded, profile-scaled description of the faults one scenario run
/// experiences. Cheap to copy; all draws are stateless hashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    params: FaultParams,
}

impl FaultPlan {
    /// Derives the fault plan of one scenario; `None` for the fault-free
    /// profile so the unfaulted path stays untouched.
    pub fn new(scenario_seed: u64, profile: FaultProfile) -> Option<Self> {
        profile.params().map(|params| Self {
            seed: scenario_seed,
            profile,
            params,
        })
    }

    /// The profile this plan was derived from.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// The fault intensities in effect.
    pub fn params(&self) -> &FaultParams {
        &self.params
    }

    /// Stateless draw: a pure function of the plan seed, the stream, and
    /// two context indices (window/decision, operator/instance).
    fn mix(&self, stream: u64, a: u64, b: u64) -> u64 {
        let mut h =
            splitmix64(self.seed ^ FAULT_PLAN_SALT ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        h = splitmix64(h ^ a.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        splitmix64(h ^ b)
    }

    fn chance(&self, stream: u64, a: u64, b: u64, p: f64) -> bool {
        p > 0.0 && unit(self.mix(stream, a, b)) < p
    }
}

/// What actually happens when a rescale command is carried out.
#[derive(Debug, Clone, PartialEq)]
pub enum ActuationOutcome {
    /// The given plan lands (possibly a partial version of the request).
    Land(Deployment),
    /// The command times out: the job pays the redeploy downtime but comes
    /// back on its old configuration.
    Timeout,
    /// The command fails silently: nothing happens, nothing is acknowledged.
    Silent,
}

/// Tallies of the faults injected into one run. All-zero when no fault
/// plan is active, so fault-free [`RunResult`]s are unaffected.
///
/// [`RunResult`]: crate::harness::RunResult
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Metric windows where at least one fault was injected.
    pub faulted_windows: u32,
    /// Whole-operator dropouts injected.
    pub dropped_ops: u32,
    /// Individual slot dropouts injected.
    pub dropped_slots: u32,
    /// Instance samples perturbed by counter noise.
    pub noisy_slots: u32,
    /// Operator-windows replaced by the previous window's rows.
    pub stale_ops: u32,
    /// Straggler instance-windows (useful time inflated).
    pub straggler_slots: u32,
    /// Rescale commands that failed silently.
    pub silent_rescales: u32,
    /// Rescale commands that timed out.
    pub timeout_rescales: u32,
    /// Rescale commands that landed partially.
    pub partial_rescales: u32,
}

/// Per-run injector: applies a [`FaultPlan`] to metric snapshots and
/// rescale commands, keeping the window/decision counters and the previous
/// window's pre-fault rows (for stale replay).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    window: u64,
    decisions: u64,
    /// Virtual time after which no new faults are injected (the recovery
    /// tail, [`FaultParams::tail_frac`] of the run).
    cutoff_ns: u64,
    /// Pre-fault rows of the previous window, for stale replay.
    prev: MetricsSnapshot,
    /// Staging buffer for the current window's pre-fault rows.
    prev_scratch: MetricsSnapshot,
    have_prev: bool,
    tally: FaultTally,
}

impl FaultInjector {
    /// Creates an injector for one run of `run_duration_ns` virtual time
    /// (the duration fixes where the fault-free recovery tail starts).
    pub fn new(plan: FaultPlan, run_duration_ns: u64) -> Self {
        let tail = (run_duration_ns as f64 * plan.params.tail_frac.clamp(0.0, 1.0)) as u64;
        Self {
            plan,
            window: 0,
            decisions: 0,
            cutoff_ns: run_duration_ns.saturating_sub(tail),
            prev: MetricsSnapshot::new(),
            prev_scratch: MetricsSnapshot::new(),
            have_prev: false,
            tally: FaultTally::default(),
        }
    }

    /// Faults injected so far.
    pub fn tally(&self) -> FaultTally {
        self.tally
    }

    /// Applies this window's metric faults to a freshly collected snapshot
    /// closed at virtual time `now_ns`. Mutates only the snapshot — the
    /// engine's state is untouched, which is what keeps fast-forward replay
    /// valid under faults. Windows inside the recovery tail pass through
    /// unfaulted.
    pub fn apply_metrics(
        &mut self,
        snapshot: &mut MetricsSnapshot,
        graph: &LogicalGraph,
        deployment: &Deployment,
        now_ns: u64,
    ) {
        self.window += 1;
        if now_ns > self.cutoff_ns {
            return;
        }
        let w = self.window;
        let plan = self.plan;
        let params = plan.params;
        // Keep this window's pre-fault rows: a stale fault next window
        // replays the *true* previous sample, not the faulted one.
        self.prev_scratch.clone_from(snapshot);
        let mut touched = false;
        for op in graph.operators() {
            let oi = op.index() as u64;
            let p = deployment.parallelism(op);
            // Whole-operator dropout: all slots (and the offered rate of a
            // source) vanish from this window.
            if plan.chance(STREAM_OP_DROP, w, oi, params.op_drop) {
                let removed = snapshot.remove_operator(op).is_some();
                let removed_rate = graph.is_source(op) && snapshot.remove_source_rate(op).is_some();
                if removed || removed_rate {
                    self.tally.dropped_ops += 1;
                    touched = true;
                }
                continue;
            }
            // Stale sample: the previous window's rows are delivered again.
            if self.have_prev && plan.chance(STREAM_STALE, w, oi, params.stale_prob) {
                if let Some(old) = self.prev.operator(op) {
                    if old.instances.len() == p {
                        snapshot.insert_instances(op, old.instances.clone());
                        if graph.is_source(op) {
                            if let Some(r) = self.prev.source_rate(op) {
                                snapshot.set_source_rate(op, r);
                            }
                        }
                        self.tally.stale_ops += 1;
                        touched = true;
                        continue;
                    }
                }
            }
            let Some(metrics) = snapshot.operator_mut(op) else {
                continue;
            };
            // Sticky stragglers (window index 0 in the draw: the same
            // instances straggle all run) and per-window counter noise.
            for (k, inst) in metrics.instances.iter_mut().enumerate() {
                let key = (oi << 32) | k as u64;
                if plan.chance(STREAM_STRAGGLER, 0, key, params.straggler_frac) {
                    let f = 1.0
                        + unit(plan.mix(STREAM_STRAGGLER_MULT, 0, key))
                            * (params.straggler_mult - 1.0);
                    inst.useful_ns = (((inst.useful_ns as f64) * f) as u64).min(inst.window_ns);
                    // Keep the sample internally consistent (waits must fit
                    // the non-useful remainder) so stragglers are plausible
                    // — only rate statistics can expose them.
                    let slack = inst.window_ns - inst.useful_ns;
                    inst.wait_input_ns = inst.wait_input_ns.min(slack);
                    inst.wait_output_ns = inst.wait_output_ns.min(slack - inst.wait_input_ns);
                    self.tally.straggler_slots += 1;
                    touched = true;
                }
                if plan.chance(STREAM_NOISE, w, key, params.noise_prob) {
                    let f = 1.0
                        + (unit(plan.mix(STREAM_NOISE_AMP, w, key)) * 2.0 - 1.0) * params.noise_amp;
                    inst.records_in = ((inst.records_in as f64) * f).max(0.0) as u64;
                    inst.records_out = ((inst.records_out as f64) * f).max(0.0) as u64;
                    self.tally.noisy_slots += 1;
                    touched = true;
                }
            }
            // Per-slot dropout: individual rows vanish, leaving the
            // operator's reported parallelism short.
            let mut k = 0u64;
            let before = metrics.instances.len();
            metrics.instances.retain(|_| {
                let key = (oi << 32) | k;
                k += 1;
                !plan.chance(STREAM_SLOT_DROP, w, key, params.slot_drop)
            });
            let dropped = before - metrics.instances.len();
            if dropped > 0 {
                self.tally.dropped_slots += dropped as u32;
                touched = true;
            }
        }
        std::mem::swap(&mut self.prev, &mut self.prev_scratch);
        self.have_prev = true;
        if touched {
            self.tally.faulted_windows += 1;
        }
    }

    /// Decides the fate of one rescale command issued at virtual time
    /// `now_ns`. `requested` is the plan the controller asked for, `current`
    /// the deployment it would replace. Commands inside the recovery tail
    /// always land as requested.
    pub fn actuation(
        &mut self,
        requested: &Deployment,
        current: &Deployment,
        graph: &LogicalGraph,
        now_ns: u64,
    ) -> ActuationOutcome {
        self.decisions += 1;
        if now_ns > self.cutoff_ns {
            return ActuationOutcome::Land(requested.clone());
        }
        let d = self.decisions;
        let plan = self.plan;
        let params = plan.params;
        let u = unit(plan.mix(STREAM_ACTUATION, d, 0));
        if u < params.act_silent {
            self.tally.silent_rescales += 1;
            return ActuationOutcome::Silent;
        }
        if u < params.act_silent + params.act_timeout {
            self.tally.timeout_rescales += 1;
            return ActuationOutcome::Timeout;
        }
        if u < params.act_silent + params.act_timeout + params.act_partial {
            // Partial landing: each changed operator independently keeps its
            // old allocation with probability 1/2.
            let mut landed = requested.clone();
            let mut reverted = false;
            for op in graph.operators() {
                if requested.alloc(op) != current.alloc(op)
                    && plan.chance(STREAM_PARTIAL, d, op.index() as u64, 0.5)
                {
                    landed.set_alloc(op, current.alloc(op));
                    reverted = true;
                }
            }
            if reverted {
                self.tally.partial_rescales += 1;
                return ActuationOutcome::Land(landed);
            }
        }
        ActuationOutcome::Land(requested.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds2_core::graph::GraphBuilder;
    use ds2_core::rates::InstanceMetrics;

    fn graph3() -> LogicalGraph {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let f = b.operator("map");
        let c = b.operator("agg");
        b.connect(s, f);
        b.connect(f, c);
        b.build().unwrap()
    }

    fn snapshot_for(graph: &LogicalGraph, deployment: &Deployment) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for op in graph.operators() {
            let p = deployment.parallelism(op);
            let rows = vec![
                InstanceMetrics {
                    records_in: 1_000,
                    records_out: 1_000,
                    useful_ns: 500_000_000,
                    window_ns: 1_000_000_000,
                    ..Default::default()
                };
                p
            ];
            snap.insert_instances(op, rows);
            if graph.is_source(op) {
                snap.set_source_rate(op, 1_000.0);
            }
        }
        snap
    }

    #[test]
    fn none_profile_yields_no_plan() {
        assert!(FaultPlan::new(42, FaultProfile::None).is_none());
        assert!(FaultPlan::new(42, FaultProfile::Mild).is_some());
    }

    #[test]
    fn profile_names_round_trip() {
        for p in [FaultProfile::None, FaultProfile::Mild, FaultProfile::Harsh] {
            assert_eq!(FaultProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::from_name("bogus"), None);
    }

    #[test]
    fn injection_is_deterministic() {
        let graph = graph3();
        let deployment = Deployment::uniform(&graph, 4);
        let run = |seed: u64| {
            let mut inj =
                FaultInjector::new(FaultPlan::new(seed, FaultProfile::Harsh).unwrap(), 1_000);
            let mut snaps = Vec::new();
            for _ in 0..50 {
                let mut snap = snapshot_for(&graph, &deployment);
                inj.apply_metrics(&mut snap, &graph, &deployment, 0);
                snaps.push(snap);
            }
            (snaps, inj.tally())
        };
        let (a, ta) = run(7);
        let (b, tb) = run(7);
        assert_eq!(a, b, "same seed must regenerate bit-exactly");
        assert_eq!(ta, tb);
        let (c, tc) = run(8);
        assert!(a != c || ta != tc, "different seeds must diverge");
    }

    #[test]
    fn harsh_injects_every_fault_class() {
        let graph = graph3();
        let deployment = Deployment::uniform(&graph, 8);
        let mut inj = FaultInjector::new(FaultPlan::new(3, FaultProfile::Harsh).unwrap(), 1_000);
        for _ in 0..200 {
            let mut snap = snapshot_for(&graph, &deployment);
            inj.apply_metrics(&mut snap, &graph, &deployment, 0);
        }
        let t = inj.tally();
        assert!(t.faulted_windows > 0);
        assert!(t.dropped_ops > 0);
        assert!(t.dropped_slots > 0);
        assert!(t.noisy_slots > 0);
        assert!(t.stale_ops > 0);
        assert!(t.straggler_slots > 0);
    }

    #[test]
    fn faulted_samples_stay_individually_valid_unless_dropped() {
        // Noise and stragglers must keep each surviving sample internally
        // consistent (useful <= window, waits fit): hardening detects them
        // by rate statistics, not by trivially broken invariants.
        let graph = graph3();
        let deployment = Deployment::uniform(&graph, 6);
        let mut inj = FaultInjector::new(FaultPlan::new(11, FaultProfile::Harsh).unwrap(), 1_000);
        for _ in 0..100 {
            let mut snap = snapshot_for(&graph, &deployment);
            inj.apply_metrics(&mut snap, &graph, &deployment, 0);
            for (_, m) in snap.operators() {
                for inst in &m.instances {
                    inst.validate().expect("faulted sample must stay valid");
                }
            }
        }
    }

    #[test]
    fn recovery_tail_is_fault_free() {
        // With tail_frac 0.25 of a 1000 ns run, nothing after 750 ns is
        // faulted: metric windows pass through untouched and every rescale
        // lands as requested.
        let graph = graph3();
        let deployment = Deployment::uniform(&graph, 6);
        let requested = Deployment::uniform(&graph, 9);
        let mut inj = FaultInjector::new(FaultPlan::new(11, FaultProfile::Harsh).unwrap(), 1_000);
        for _ in 0..100 {
            let mut snap = snapshot_for(&graph, &deployment);
            let clean = snap.clone();
            inj.apply_metrics(&mut snap, &graph, &deployment, 800);
            assert_eq!(snap, clean, "tail window was faulted");
            assert_eq!(
                inj.actuation(&requested, &deployment, &graph, 800),
                ActuationOutcome::Land(requested.clone()),
                "tail rescale did not land cleanly"
            );
        }
        assert_eq!(inj.tally(), FaultTally::default());
        // The same injector still faults windows before the tail.
        let mut snap = snapshot_for(&graph, &deployment);
        inj.apply_metrics(&mut snap, &graph, &deployment, 0);
        let mut more = 0;
        for _ in 0..50 {
            let mut snap = snapshot_for(&graph, &deployment);
            inj.apply_metrics(&mut snap, &graph, &deployment, 0);
            more += 1;
        }
        assert!(more > 0 && inj.tally().faulted_windows > 0);
    }

    #[test]
    fn actuation_outcomes_are_deterministic_and_cover_all_kinds() {
        let graph = graph3();
        let current = Deployment::uniform(&graph, 2);
        let requested = Deployment::uniform(&graph, 6);
        let run = || {
            let mut inj =
                FaultInjector::new(FaultPlan::new(5, FaultProfile::Harsh).unwrap(), 1_000);
            (0..400)
                .map(|_| inj.actuation(&requested, &current, &graph, 0))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "actuation stream must be reproducible");
        assert!(a.iter().any(|o| matches!(o, ActuationOutcome::Silent)));
        assert!(a.iter().any(|o| matches!(o, ActuationOutcome::Timeout)));
        assert!(a
            .iter()
            .any(|o| matches!(o, ActuationOutcome::Land(p) if *p != requested)));
        assert!(a
            .iter()
            .any(|o| matches!(o, ActuationOutcome::Land(p) if *p == requested)));
        // A partial landing only ever reverts operators towards `current`.
        for o in &a {
            if let ActuationOutcome::Land(p) = o {
                for op in graph.operators() {
                    assert!(
                        p.parallelism(op) == requested.parallelism(op)
                            || p.parallelism(op) == current.parallelism(op)
                    );
                }
            }
        }
    }
}
