//! # ds2-simulator — deterministic streaming-engine simulation
//!
//! The DS2 paper evaluates its controller against three real stream
//! processors (Apache Flink, Apache Heron, Timely Dataflow) on a cluster.
//! This crate substitutes those engines with a deterministic, virtual-time
//! *fluid queueing simulation* that reproduces every observable DS2 and the
//! baseline controllers consume: observed/true rates, useful vs. waiting
//! time, backpressure, queue growth, record latency, epoch latency, and
//! stop-the-world rescaling.
//!
//! * [`profile`] — per-operator cost models (instrumented cost, hidden
//!   overhead, sub-linear scaling curves, skew, windowed output);
//! * [`queue`] — FIFO fluid queues tagged with source emission time;
//! * [`source`] — offered-rate schedules and source specs;
//! * [`engine`] — the fluid engine with Flink/Heron/Timely personalities;
//! * [`fastforward`] — macro-tick steady-state detection and exact replay
//!   (the engine skips provably identical ticks between workload phases
//!   and control decisions);
//! * [`latency`] — record-latency and epoch-latency accounting;
//! * [`harness`] — the closed control loop driving any
//!   [`ScalingController`](ds2_core::controller::ScalingController) against
//!   the engine;
//! * [`faults`] — deterministic, seeded fault injection (degraded metric
//!   snapshots, failed/partial/timed-out rescales) layered onto the loop;
//! * [`scenarios`] — seeded random scenario generation (topologies,
//!   workloads, profiles) and the scenario-matrix runner scoring
//!   steps-to-convergence, provisioning accuracy and stability for DS2 and
//!   every baseline controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fastforward;
pub mod faults;
pub mod harness;
pub mod latency;
pub mod profile;
pub mod queue;
pub mod scenarios;
pub mod source;

pub use engine::{
    EngineConfig, EngineMode, FluidEngine, InstrumentationConfig, TickEvents, TickStats,
};
pub use fastforward::FastForwardStats;
pub use faults::{
    ActuationOutcome, FaultInjector, FaultParams, FaultPlan, FaultProfile, FaultTally,
};
pub use harness::{ClosedLoop, HarnessConfig, RunResult, TimelinePoint};
pub use latency::{EpochTracker, LatencyRecorder};
pub use profile::{OperatorProfile, OutputMode, ProfileMap, ScalingCurve};
pub use queue::{EpochQueue, Span};
pub use scenarios::{
    ControllerKind, GeneratorConfig, MatrixConfig, MatrixReport, ScenarioMatrix, ScenarioSpec,
    TopologyShape, WorkloadShape,
};
pub use source::{RateSchedule, SourceSpec};
