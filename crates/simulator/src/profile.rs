//! Operator cost profiles: how much virtual time an operator instance
//! spends per record, and how that cost changes with parallelism.
//!
//! A profile models three cost components:
//!
//! * **instrumented cost** — deserialization + processing + serialization
//!   per record. This is what the §4.1 counters see, i.e. what contributes
//!   to *useful time* and therefore to the true rates DS2 measures.
//! * **scaling overhead** — growth of the instrumented cost with
//!   parallelism (state repartitioning, more channels, coordination). This
//!   makes true rates *sub-linear* in the instance count, which is why DS2
//!   sometimes needs a second step that "refines the decision with a more
//!   accurate measurement" (§3.4, §5.4).
//! * **hidden overhead** — per-record cost *invisible* to instrumentation
//!   (network stack, channel selection outside the measured sections). DS2
//!   compensates for it through the Scaling Manager's target-rate-ratio
//!   mechanism (§4.2.1), which is the paper's typical third step.

use ds2_core::graph::OperatorId;
use std::collections::BTreeMap;

/// How the per-record instrumented cost grows with operator parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingCurve {
    /// Perfect scaling: cost independent of parallelism (the model's ideal).
    Linear,
    /// Cost multiplier `1 + alpha * (p - 1)`: unbounded sub-linear scaling.
    Sublinear {
        /// Per-added-instance fractional cost growth.
        alpha: f64,
    },
    /// Cost multiplier `1 + alpha * (1 - exp(-(p-1)/knee))`: overhead that
    /// saturates at `1 + alpha`, modelling coordination costs that stop
    /// growing once the communication fabric is saturated.
    Saturating {
        /// Asymptotic fractional cost growth.
        alpha: f64,
        /// Parallelism scale over which the overhead develops.
        knee: f64,
    },
    /// Cost multiplier `1 + alpha / (1 + exp(-(p - knee) / width))`: a
    /// logistic step developing around `knee`, modelling the overhead jump
    /// when instances spill across a machine/NUMA boundary (local exchange
    /// becomes network shuffle). Flat well above the knee — so the policy
    /// has a unique fixed point approached identically from above — while
    /// configurations far below the knee measure optimistic capacities and
    /// need an extra refinement step, reproducing the paper's 2–3 step
    /// convergence for far-from-optimal starts (§5.4).
    Sigmoid {
        /// Asymptotic fractional cost growth.
        alpha: f64,
        /// Parallelism at the centre of the step.
        knee: f64,
        /// Width of the step.
        width: f64,
    },
}

impl ScalingCurve {
    /// Cost multiplier at parallelism `p >= 1`.
    pub fn multiplier(&self, p: usize) -> f64 {
        let p = p.max(1) as f64;
        match *self {
            ScalingCurve::Linear => 1.0,
            ScalingCurve::Sublinear { alpha } => 1.0 + alpha * (p - 1.0),
            ScalingCurve::Saturating { alpha, knee } => {
                1.0 + alpha * (1.0 - (-(p - 1.0) / knee.max(1e-9)).exp())
            }
            ScalingCurve::Sigmoid { alpha, knee, width } => {
                1.0 + alpha / (1.0 + (-(p - knee) / width.max(1e-9)).exp())
            }
        }
    }
}

/// Output behaviour of an operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputMode {
    /// Emits `selectivity` records per input record, continuously.
    PerRecord {
        /// Output records per input record.
        selectivity: f64,
    },
    /// Buffers input and emits at window boundaries (naive tumbling window,
    /// §4.2.1 "non-incremental tumbling windows"): between firings the
    /// operator emits nothing, at each firing it flushes the accumulated
    /// output in a burst. `selectivity` applies to the buffered volume.
    Windowed {
        /// Output records per buffered input record at firing time.
        selectivity: f64,
        /// Window length in nanoseconds.
        period_ns: u64,
    },
}

impl OutputMode {
    /// The long-run average selectivity.
    pub fn average_selectivity(&self) -> f64 {
        match *self {
            OutputMode::PerRecord { selectivity } => selectivity,
            OutputMode::Windowed { selectivity, .. } => selectivity,
        }
    }
}

/// The state-size model of one operator: how many bytes of operator state
/// the instances carry as a function of the offered source rate, and what
/// happens when an instance's share exceeds its budget.
///
/// Total operator state is `base_bytes + bytes_per_source_rate × rate`
/// (rate = total offered source rate in records/s), divided evenly across
/// the instances. When the per-instance share exceeds the budget the
/// operator *spills*: its per-record cost is multiplied by
/// `spill_cost_multiplier` — the Justin-style memory-pressure failure mode
/// a rate-only model cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateProfile {
    /// Rate-independent state, in bytes.
    pub base_bytes: f64,
    /// Additional state per unit of offered source rate, in bytes per
    /// (record/second). Any dataflow dilution (selectivity of upstream
    /// operators) is folded in by the generator, so the engine only needs
    /// the total offered source rate.
    pub bytes_per_source_rate: f64,
    /// Per-record cost multiplier while spilling (> 1).
    pub spill_cost_multiplier: f64,
    /// Default per-instance budget in bytes when the deployment does not
    /// set one (∞ = unbudgeted).
    pub budget_per_instance_bytes: f64,
}

impl Default for StateProfile {
    fn default() -> Self {
        Self {
            base_bytes: 0.0,
            bytes_per_source_rate: 0.0,
            spill_cost_multiplier: 1.0,
            budget_per_instance_bytes: f64::INFINITY,
        }
    }
}

impl StateProfile {
    /// Total operator state at offered source rate `rate`, in bytes.
    pub fn total_bytes(&self, rate: f64) -> f64 {
        self.base_bytes + self.bytes_per_source_rate * rate
    }
}

/// The full cost model of one logical operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorProfile {
    /// Deserialization cost per input record, in nanoseconds (instrumented).
    pub deser_ns: f64,
    /// Processing cost per input record, in nanoseconds (instrumented).
    pub proc_ns: f64,
    /// Serialization cost per *output* record, in nanoseconds (instrumented).
    pub ser_ns: f64,
    /// Output behaviour (selectivity and windowing).
    pub output: OutputMode,
    /// Growth of the instrumented cost with parallelism.
    pub scaling: ScalingCurve,
    /// Per-record cost invisible to instrumentation, in nanoseconds.
    pub hidden_ns: f64,
    /// Growth of the hidden cost with parallelism.
    pub hidden_scaling: ScalingCurve,
    /// Fraction of input routed to instance 0 (hot key), `None` for uniform
    /// distribution. Models the §4.2.3 skew experiment: with `Some(0.5)` at
    /// parallelism 4, instance 0 receives 50% of the records and the rest
    /// share the remainder evenly.
    pub skew_hot_fraction: Option<f64>,
    /// Whether the hot key class can be split across instances
    /// (`key_classes > 1` in a [`ResourceAlloc`]): true when the skew comes
    /// from a *class* of keys rather than one indivisible key. Splitting an
    /// unsplittable hot key is a no-op.
    ///
    /// [`ResourceAlloc`]: ds2_core::deployment::ResourceAlloc
    pub skew_splittable: bool,
    /// State-size model (`None` = stateless: no bytes, no spill).
    pub state: Option<StateProfile>,
}

impl Default for OperatorProfile {
    fn default() -> Self {
        Self {
            deser_ns: 0.0,
            proc_ns: 1_000.0,
            ser_ns: 0.0,
            output: OutputMode::PerRecord { selectivity: 1.0 },
            scaling: ScalingCurve::Linear,
            hidden_ns: 0.0,
            hidden_scaling: ScalingCurve::Linear,
            skew_hot_fraction: None,
            skew_splittable: false,
            state: None,
        }
    }
}

impl OperatorProfile {
    /// A simple profile: `proc_ns` per record, fixed `selectivity`.
    pub fn simple(proc_ns: f64, selectivity: f64) -> Self {
        Self {
            proc_ns,
            output: OutputMode::PerRecord { selectivity },
            ..Default::default()
        }
    }

    /// A profile sized by capacity: `capacity` records/second per instance.
    pub fn with_capacity(capacity: f64, selectivity: f64) -> Self {
        Self::simple(1e9 / capacity, selectivity)
    }

    /// Adds (de)serialization costs.
    pub fn with_serde(mut self, deser_ns: f64, ser_ns: f64) -> Self {
        self.deser_ns = deser_ns;
        self.ser_ns = ser_ns;
        self
    }

    /// Sets the instrumented scaling curve.
    pub fn with_scaling(mut self, scaling: ScalingCurve) -> Self {
        self.scaling = scaling;
        self
    }

    /// Sets the hidden per-record overhead and its scaling curve.
    pub fn with_hidden(mut self, hidden_ns: f64, scaling: ScalingCurve) -> Self {
        self.hidden_ns = hidden_ns;
        self.hidden_scaling = scaling;
        self
    }

    /// Sets a hot-key skew fraction.
    pub fn with_skew(mut self, hot_fraction: f64) -> Self {
        self.skew_hot_fraction = Some(hot_fraction);
        self
    }

    /// Sets a *splittable* hot-key skew fraction: the hot share comes from
    /// a class of keys a `key_classes` split can spread across instances.
    pub fn with_splittable_skew(mut self, hot_fraction: f64) -> Self {
        self.skew_hot_fraction = Some(hot_fraction);
        self.skew_splittable = true;
        self
    }

    /// Sets the state-size model.
    pub fn with_state(mut self, state: StateProfile) -> Self {
        self.state = Some(state);
        self
    }

    /// Makes the output windowed with the given period.
    pub fn windowed(mut self, period_ns: u64) -> Self {
        let sel = self.output.average_selectivity();
        self.output = OutputMode::Windowed {
            selectivity: sel,
            period_ns,
        };
        self
    }

    /// Instrumented cost per input record at parallelism `p`, in ns.
    ///
    /// Serialization cost is charged per output record and folded in via
    /// the average selectivity.
    pub fn instrumented_cost_ns(&self, p: usize) -> f64 {
        let base = self.deser_ns + self.proc_ns + self.ser_ns * self.output.average_selectivity();
        base * self.scaling.multiplier(p)
    }

    /// Hidden (uninstrumented) cost per input record at parallelism `p`.
    pub fn hidden_cost_ns(&self, p: usize) -> f64 {
        self.hidden_ns * self.hidden_scaling.multiplier(p)
    }

    /// Real cost per record at parallelism `p`: instrumented + hidden.
    pub fn real_cost_ns(&self, p: usize) -> f64 {
        self.instrumented_cost_ns(p) + self.hidden_cost_ns(p)
    }

    /// True per-instance processing capacity at parallelism `p`, records/s,
    /// as instrumentation would measure it (excluding hidden overheads).
    pub fn measured_capacity(&self, p: usize) -> f64 {
        1e9 / self.instrumented_cost_ns(p)
    }

    /// Real per-instance processing capacity at parallelism `p`, records/s.
    pub fn real_capacity(&self, p: usize) -> f64 {
        1e9 / self.real_cost_ns(p)
    }

    /// Per-instance input shares at parallelism `p` (sums to 1).
    pub fn instance_weights(&self, p: usize) -> Vec<f64> {
        self.instance_weights_split(p, 1)
    }

    /// Per-instance input shares at parallelism `p` with the hot key class
    /// split across `split` instances (sums to 1).
    ///
    /// `split = 1` is classic hash partitioning and reproduces
    /// [`OperatorProfile::instance_weights`] bitwise. With `split = s > 1`
    /// the hot share is spread evenly over instances `0..s` (each receives
    /// `hot/s`) and the remaining `p - s` instances split the cold share
    /// evenly; `s >= p` degenerates to the uniform distribution. Profiles
    /// without [`OperatorProfile::skew_splittable`] ignore the split — the
    /// hot key is a single indivisible key.
    pub fn instance_weights_split(&self, p: usize, split: usize) -> Vec<f64> {
        let p = p.max(1);
        let s = if self.skew_splittable || split <= 1 {
            split.max(1)
        } else {
            1
        };
        match self.skew_hot_fraction {
            None => vec![1.0 / p as f64; p],
            Some(hot) => {
                if p == 1 {
                    return vec![1.0];
                }
                if s >= p {
                    return vec![1.0 / p as f64; p];
                }
                // The hot class receives max(hot, its fair share) spread
                // over s instances; the rest split the remainder evenly.
                // At s = 1 every operation below is bitwise identical to
                // the classic single-hot-instance formula.
                let hot = hot.clamp(0.0, 1.0).max(s as f64 / p as f64);
                let mut w = vec![(1.0 - hot) / ((p - s) as f64); p];
                let hot_each = hot / s as f64;
                for wi in w.iter_mut().take(s) {
                    *wi = hot_each;
                }
                w
            }
        }
    }

    /// Maximum sustainable aggregate input rate at parallelism `p` given the
    /// skew-adjusted instance shares: `R` such that the hottest instance
    /// processes `max_share * R <= real_capacity`.
    pub fn effective_capacity(&self, p: usize) -> f64 {
        self.effective_capacity_split(p, 1)
    }

    /// [`OperatorProfile::effective_capacity`] with the hot class split
    /// across `split` instances.
    pub fn effective_capacity_split(&self, p: usize, split: usize) -> f64 {
        let max_share = self
            .instance_weights_split(p, split)
            .into_iter()
            .fold(0.0f64, f64::max);
        self.real_capacity(p) / max_share
    }

    /// Per-instance state size at parallelism `p` and offered source rate
    /// `rate`, in bytes (0 for stateless operators).
    pub fn state_bytes(&self, p: usize, rate: f64) -> f64 {
        match &self.state {
            None => 0.0,
            Some(s) => s.total_bytes(rate) / p.max(1) as f64,
        }
    }
}

/// A profile set for a whole dataflow.
pub type ProfileMap = BTreeMap<OperatorId, OperatorProfile>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_curve_is_flat() {
        for p in [1, 2, 16, 100] {
            assert_eq!(ScalingCurve::Linear.multiplier(p), 1.0);
        }
    }

    #[test]
    fn sublinear_curve_grows() {
        let c = ScalingCurve::Sublinear { alpha: 0.1 };
        assert_eq!(c.multiplier(1), 1.0);
        assert!((c.multiplier(11) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_curve_caps() {
        let c = ScalingCurve::Saturating {
            alpha: 0.5,
            knee: 4.0,
        };
        assert_eq!(c.multiplier(1), 1.0);
        assert!(c.multiplier(8) < 1.5);
        assert!(c.multiplier(1000) <= 1.5 + 1e-9);
        assert!(c.multiplier(4) < c.multiplier(8));
    }

    #[test]
    fn sigmoid_curve_steps_at_knee() {
        let c = ScalingCurve::Sigmoid {
            alpha: 0.4,
            knee: 11.0,
            width: 1.5,
        };
        assert!(c.multiplier(2) < 1.01);
        assert!((c.multiplier(11) - 1.2).abs() < 1e-9);
        assert!(c.multiplier(20) > 1.39);
        // Flat above the knee: unique fixed point from above.
        assert!((c.multiplier(36) - c.multiplier(20)).abs() < 0.01);
    }

    #[test]
    fn capacity_roundtrip() {
        let p = OperatorProfile::with_capacity(2_000.0, 1.5);
        assert!((p.measured_capacity(1) - 2_000.0).abs() < 1e-6);
        assert!((p.real_capacity(1) - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn serde_costs_fold_selectivity() {
        let p = OperatorProfile::simple(100.0, 2.0).with_serde(10.0, 20.0);
        // 10 deser + 100 proc + 2*20 ser = 150 ns.
        assert!((p.instrumented_cost_ns(1) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn hidden_cost_reduces_real_capacity_only() {
        let p = OperatorProfile::simple(100.0, 1.0).with_hidden(50.0, ScalingCurve::Linear);
        assert!((p.measured_capacity(1) - 1e7).abs() < 1.0);
        assert!((p.real_capacity(1) - 1e9 / 150.0).abs() < 1.0);
    }

    #[test]
    fn sublinear_scaling_reduces_measured_capacity() {
        let p = OperatorProfile::simple(100.0, 1.0)
            .with_scaling(ScalingCurve::Sublinear { alpha: 0.05 });
        assert!(p.measured_capacity(10) < p.measured_capacity(1));
        let expected = 1e9 / (100.0 * 1.45);
        assert!((p.measured_capacity(10) - expected).abs() < 1e-6);
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let p = OperatorProfile::default();
        for n in 1..10 {
            let w = p.instance_weights(n);
            assert_eq!(w.len(), n);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_weights() {
        let p = OperatorProfile::default().with_skew(0.5);
        let w = p.instance_weights(4);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5 / 3.0).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Skew below the fair share degrades to uniform.
        let p = OperatorProfile::default().with_skew(0.1);
        let w = p.instance_weights(4);
        assert!((w[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn effective_capacity_limited_by_hot_instance() {
        let p = OperatorProfile::with_capacity(100.0, 1.0).with_skew(0.5);
        // 4 instances, hot share 0.5: R_max = 100 / 0.5 = 200, not 400.
        assert!((p.effective_capacity(4) - 200.0).abs() < 1e-9);
        let uniform = OperatorProfile::with_capacity(100.0, 1.0);
        assert!((uniform.effective_capacity(4) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn split_one_is_bitwise_identical_to_classic_weights() {
        for hot in [0.05, 0.3, 0.5, 0.9] {
            let p = OperatorProfile::default().with_splittable_skew(hot);
            for n in 1..=16 {
                let classic = p.instance_weights(n);
                let split = p.instance_weights_split(n, 1);
                assert_eq!(classic.len(), split.len());
                for (a, b) in classic.iter().zip(&split) {
                    assert_eq!(a.to_bits(), b.to_bits(), "hot={hot} p={n}");
                }
            }
        }
    }

    #[test]
    fn split_spreads_hot_share_and_conserves_mass() {
        let p = OperatorProfile::default().with_splittable_skew(0.6);
        let w = p.instance_weights_split(6, 3);
        assert!((w[0] - 0.2).abs() < 1e-12);
        assert!((w[1] - 0.2).abs() < 1e-12);
        assert!((w[2] - 0.2).abs() < 1e-12);
        assert!((w[3] - 0.4 / 3.0).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Splitting over every instance is uniform.
        let w = p.instance_weights_split(4, 4);
        assert!(w.iter().all(|x| (x - 0.25).abs() < 1e-12));
        // Splitting over more instances than exist is also uniform.
        let w = p.instance_weights_split(4, 9);
        assert!(w.iter().all(|x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn unsplittable_skew_ignores_the_split() {
        let p = OperatorProfile::default().with_skew(0.5);
        let w1 = p.instance_weights_split(4, 1);
        let w2 = p.instance_weights_split(4, 2);
        assert_eq!(w1, w2, "an indivisible hot key cannot be split");
    }

    #[test]
    fn split_raises_effective_capacity() {
        let p = OperatorProfile::with_capacity(100.0, 1.0).with_splittable_skew(0.5);
        // Unsplit: hot instance takes 0.5 → R_max = 200 regardless of p.
        assert!((p.effective_capacity_split(8, 1) - 200.0).abs() < 1e-9);
        // Split over 2: hottest share 0.25 → R_max = 400.
        assert!((p.effective_capacity_split(8, 2) - 400.0).abs() < 1e-9);
        // Full split: uniform → R_max = 800.
        assert!((p.effective_capacity_split(8, 8) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn state_bytes_divides_across_instances() {
        let p = OperatorProfile::default().with_state(StateProfile {
            base_bytes: 1e6,
            bytes_per_source_rate: 1e3,
            spill_cost_multiplier: 3.0,
            budget_per_instance_bytes: f64::INFINITY,
        });
        // 1e6 + 1e3 * 2000 = 3e6 total, over 4 instances.
        assert!((p.state_bytes(4, 2_000.0) - 7.5e5).abs() < 1e-6);
        let stateless = OperatorProfile::default();
        assert_eq!(stateless.state_bytes(4, 2_000.0), 0.0);
    }

    #[test]
    fn windowed_output_mode() {
        let p = OperatorProfile::simple(10.0, 0.1).windowed(1_000_000_000);
        match p.output {
            OutputMode::Windowed {
                selectivity,
                period_ns,
            } => {
                assert!((selectivity - 0.1).abs() < 1e-12);
                assert_eq!(period_ns, 1_000_000_000);
            }
            _ => panic!("expected windowed output"),
        }
        assert!((p.output.average_selectivity() - 0.1).abs() < 1e-12);
    }
}
