//! Macro-tick fast-forward: steady-state detection and replay bookkeeping
//! for the [`FluidEngine`](crate::engine::FluidEngine).
//!
//! The scenario matrix's workloads are piecewise-constant, so between
//! workload phases and control decisions the dataflow spends most of its
//! virtual time in a *steady state* where every tick performs exactly the
//! same work as the one before. This module holds the machinery that lets
//! the engine prove that and skip the structural work:
//!
//! * **Fixed-point detection.** A tick is a *shift step* when the post-tick
//!   fluid state equals the pre-tick state with every queued span's
//!   emission tag advanced by exactly one tick: span counts, record totals,
//!   durable backlogs, window buffers and the Heron backpressure signal are
//!   bitwise unchanged, and every tag moved by `tick_ns`. Because the tick
//!   function is *shift-equivariant* while its external inputs are frozen
//!   (no pending rescale, no windowed operators, zero service noise, and
//!   every source schedule inside a constant phase), one confirmed shift
//!   step proves that **all** subsequent ticks up to the next phase
//!   boundary repeat the identical float operations.
//!
//! * **Exact replay.** A replayed tick therefore performs only the
//!   operations whose *results* accumulate: the per-instance counter
//!   additions (with the addends captured from the probe tick — the same
//!   `acc += addend` the full tick would execute, so the sums are bitwise
//!   identical to tick-by-tick execution), the sink latency samples, and
//!   the epoch-frontier advance. All queue drains, span routing, flow
//!   control and scans are skipped; span tags are shifted lazily in one
//!   batch when the engine next needs them.
//!
//! Skipped ticks are exact *by construction* — the engine never
//! approximates. Anything it cannot prove (a filling queue, a span list at
//! its merge bound, an oscillating Heron spout) simply fails the shift
//! check and keeps executing full ticks, with an exponential probe backoff
//! bounding the detection overhead.
//!
//! The multi-dimensional resource model composes with this for free:
//! key-class topology changes deploy through the engine's rescale request,
//! which invalidates any armed transition exactly like a parallelism
//! rescale, and a spill multiplier is a pure function of the (bitwise
//! phase-constant) offered rate and the deployment — so it cannot change
//! inside a replayable window, whose boundaries already stop at phase
//! changes. A class split thus cancels replay, redeploys, and re-probes
//! bitwise-identically to exact execution.

use crate::engine::InstanceAcc;
use crate::queue::Span;

/// Counters describing how much work fast-forward saved (and spent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    /// Fully executed ticks (including probe ticks).
    pub full_ticks: u64,
    /// Probe attempts (full ticks run with delta capture enabled).
    pub probes: u64,
    /// Probes whose post-state was not a shift of the pre-state.
    pub probe_failures: u64,
    /// Ticks replayed from a confirmed fixed point.
    pub replayed_ticks: u64,
}

/// Compact copy of the engine's structural fluid state, captured before a
/// probe tick and compared (shifted) against the state after it.
///
/// Buffers are recycled across probes; a capture never allocates once the
/// vectors have grown to the dataflow's size.
#[derive(Debug, Default)]
pub(crate) struct Fingerprint {
    /// `(span_count, total_records)` per queue, in engine walk order.
    pub(crate) queues: Vec<(u32, f64)>,
    /// All spans, concatenated in the same walk order.
    pub(crate) spans: Vec<Span>,
    /// Durable backlog per operator id.
    pub(crate) backlog: Vec<f64>,
    /// Buffered window output per operator id.
    pub(crate) window_pending: Vec<f64>,
    /// Heron spout-pausing signal.
    pub(crate) heron_backpressure: bool,
}

impl Fingerprint {
    pub(crate) fn clear(&mut self) {
        self.queues.clear();
        self.spans.clear();
        self.backlog.clear();
        self.window_pending.clear();
        self.heron_backpressure = false;
    }
}

/// Total-span budget for one fingerprint: a capture walking more spans
/// than this aborts. Well-provisioned fixed points keep one span per
/// upstream path; *saturated* fixed points (a permanently backpressured
/// queue in equilibrium pops exactly one span per tick and appends one) sit
/// at the queue's 256-span merge bound, so the budget must admit a few
/// full queues while still bounding the cost of hopeless probes.
pub(crate) const MAX_FINGERPRINT_SPANS: usize = 8_192;

/// Failed probes back off exponentially up to this many ticks, bounding
/// detection overhead during transients to a few percent while costing at
/// most this many full ticks of missed replay once a steady state forms.
pub(crate) const MAX_PROBE_COOLDOWN: u32 = 32;

/// The fast-forward state machine owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct FastForward {
    /// `true` when a shift step has been confirmed and not yet invalidated.
    armed: bool,
    /// First tick *start* time at which the confirmed transition no longer
    /// applies (the next source-schedule phase boundary).
    valid_until_ns: u64,
    /// Captured per-class addends, flat in engine walk order (the probe
    /// tick runs with accumulators zeroed, so each addend is exactly what
    /// the tick applied).
    pub(crate) deltas: Vec<InstanceAcc>,
    /// Accumulator values saved while a probe tick runs from zero.
    pub(crate) saved: Vec<InstanceAcc>,
    /// Latency samples the probe tick appended (one tick's worth).
    pub(crate) latency: Vec<(u64, f64)>,
    /// `now - frontier` at the probe tick's end; `None` when the dataflow
    /// was fully drained. The offset is shift-invariant, so the replayed
    /// frontier is `now - offset` each tick.
    pub(crate) frontier_offset: Option<u64>,
    /// Pre-probe structural state (recycled buffer).
    pub(crate) fingerprint: Fingerprint,
    /// Full ticks to wait before the next probe attempt.
    cooldown: u32,
    /// Next cooldown on failure (exponential, capped).
    next_cooldown: u32,
    /// Work counters.
    pub(crate) stats: FastForwardStats,
}

impl FastForward {
    /// Whether a confirmed transition covers a tick starting at `now_ns`.
    pub(crate) fn can_replay(&self, now_ns: u64) -> bool {
        self.armed && now_ns < self.valid_until_ns
    }

    /// How many consecutive ticks starting at `now_ns` are replayable: each
    /// must *end* at or before `horizon_ns` and *start* inside the armed
    /// phase (strictly before `valid_until_ns`).
    pub(crate) fn replayable_ticks(&self, now_ns: u64, tick_ns: u64, horizon_ns: u64) -> u64 {
        if !self.can_replay(now_ns) {
            return 0;
        }
        let by_horizon = horizon_ns.saturating_sub(now_ns) / tick_ns;
        let by_phase = (self.valid_until_ns - now_ns).div_ceil(tick_ns);
        by_horizon.min(by_phase)
    }

    /// Whether the engine should attempt a probe this tick. Counts down
    /// the failure cooldown as a side effect.
    pub(crate) fn should_probe(&mut self) -> bool {
        if self.armed {
            return false;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        true
    }

    /// Arms replay after a confirmed shift step, valid for ticks starting
    /// before `valid_until_ns`.
    pub(crate) fn arm(&mut self, valid_until_ns: u64) {
        self.armed = true;
        self.valid_until_ns = valid_until_ns;
        self.cooldown = 0;
        self.next_cooldown = 1;
    }

    /// Records a failed probe and backs off.
    pub(crate) fn probe_failed(&mut self) {
        self.stats.probe_failures += 1;
        let cooldown = self.next_cooldown.max(1);
        self.cooldown = cooldown;
        self.next_cooldown = (cooldown * 2).min(MAX_PROBE_COOLDOWN);
    }

    /// Drops any confirmed transition (rescale requested, phase boundary
    /// reached, or an externally driven exact tick). Probing restarts
    /// immediately: invalidation means the world changed, not that the
    /// search was failing.
    pub(crate) fn invalidate(&mut self) {
        self.armed = false;
        self.cooldown = 0;
        self.next_cooldown = 1;
    }

    /// `true` while replay is armed (for tests and diagnostics).
    pub(crate) fn is_armed(&self) -> bool {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooldown_backs_off_and_caps() {
        let mut ff = FastForward::default();
        assert!(ff.should_probe(), "first probe is immediate");
        ff.probe_failed();
        assert!(!ff.should_probe(), "cooldown 1 blocks the next tick");
        assert!(ff.should_probe());
        ff.probe_failed(); // cooldown 2
        assert!(!ff.should_probe());
        assert!(!ff.should_probe());
        assert!(ff.should_probe());
        for _ in 0..10 {
            ff.probe_failed();
        }
        let mut blocked = 0;
        while !ff.should_probe() {
            blocked += 1;
        }
        assert_eq!(blocked, MAX_PROBE_COOLDOWN, "cooldown capped");
    }

    #[test]
    fn arm_and_invalidate() {
        let mut ff = FastForward::default();
        ff.arm(1_000);
        assert!(ff.can_replay(999));
        assert!(!ff.can_replay(1_000), "valid_until is exclusive");
        assert!(!ff.should_probe(), "armed state never probes");
        ff.invalidate();
        assert!(!ff.can_replay(0));
        assert!(ff.should_probe(), "invalidation resets the cooldown");
    }
}
