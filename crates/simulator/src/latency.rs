//! Latency accounting: weighted per-record latency samples (Flink-style,
//! Fig. 8) and per-epoch completion latencies (Timely-style, Fig. 9).

use std::sync::Mutex;

/// Sorted-order cache for distribution queries.
///
/// `sorted` holds the first `clean_len` samples ordered by latency. Queries
/// fold any samples recorded since the last rebuild into the cache, so a
/// burst of `quantile`/`median` calls between inserts sorts at most once —
/// previously every call cloned and re-sorted the full sample vector.
#[derive(Debug, Default)]
struct SortCache {
    sorted: Vec<(u64, f64)>,
    clean_len: usize,
}

/// Collects weighted latency samples and answers distribution queries.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    /// `(latency_ns, weight)` samples; weight is a record count.
    samples: Vec<(u64, f64)>,
    /// Lazily maintained sorted view (interior mutability keeps the query
    /// methods `&self`; the mutex is uncontended in practice — recorders
    /// live on one thread).
    cache: Mutex<SortCache>,
}

impl Clone for LatencyRecorder {
    fn clone(&self) -> Self {
        Self {
            samples: self.samples.clone(),
            cache: Mutex::new(SortCache::default()),
        }
    }
}

/// Two recorders are equal when they hold the same samples in the same
/// order (the sort cache is derived state). This is deliberately exact —
/// the fast-forward equivalence tests compare whole run results bitwise.
impl PartialEq for LatencyRecorder {
    fn eq(&self, other: &Self) -> bool {
        self.samples.len() == other.samples.len()
            && self
                .samples
                .iter()
                .zip(&other.samples)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `weight` records experiencing `latency_ns`.
    pub fn record(&mut self, latency_ns: u64, weight: f64) {
        if weight > 0.0 {
            self.samples.push((latency_ns, weight));
        }
    }

    /// Runs `f` over the samples sorted by latency, refreshing the cache
    /// first if samples arrived since the last query.
    fn with_sorted<R>(&self, f: impl FnOnce(&[(u64, f64)]) -> R) -> R {
        let mut cache = self.cache.lock().expect("latency cache poisoned");
        if cache.clean_len < self.samples.len() {
            let from = cache.clean_len;
            cache.sorted.extend_from_slice(&self.samples[from..]);
            cache.sorted.sort_unstable_by_key(|&(l, _)| l);
            cache.clean_len = self.samples.len();
        }
        f(&cache.sorted)
    }

    /// Number of sample entries (not total weight).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw `(latency_ns, weight)` samples in recording order. The
    /// fast-forward probe captures one tick's worth (everything recorded
    /// past a remembered length) so replayed ticks can append the exact
    /// same samples a full tick would.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total record weight observed.
    pub fn total_weight(&self) -> f64 {
        self.samples.iter().map(|&(_, w)| w).sum()
    }

    /// Weighted quantile (`q` in `[0, 1]`) of the latency distribution.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let total = self.total_weight();
        let threshold = total * q.clamp(0.0, 1.0);
        self.with_sorted(|sorted| {
            let mut acc = 0.0;
            for &(l, w) in sorted {
                acc += w;
                if acc >= threshold {
                    return Some(l);
                }
            }
            sorted.last().map(|&(l, _)| l)
        })
    }

    /// Median latency.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Weighted mean latency in nanoseconds.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total_weight();
        if total <= 0.0 {
            return None;
        }
        Some(self.samples.iter().map(|&(l, w)| l as f64 * w).sum::<f64>() / total)
    }

    /// Fraction of weight with latency strictly above `threshold_ns`.
    pub fn fraction_above(&self, threshold_ns: u64) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            return 0.0;
        }
        let above: f64 = self
            .samples
            .iter()
            .filter(|&&(l, _)| l > threshold_ns)
            .map(|&(_, w)| w)
            .sum();
        above / total
    }

    /// The empirical CDF evaluated at `points` latencies: for each point,
    /// the fraction of weight at or below it.
    pub fn cdf(&self, points: &[u64]) -> Vec<(u64, f64)> {
        let total = self.total_weight();
        points
            .iter()
            .map(|&p| {
                let below: f64 = self
                    .samples
                    .iter()
                    .filter(|&&(l, _)| l <= p)
                    .map(|&(_, w)| w)
                    .sum();
                (p, if total > 0.0 { below / total } else { 0.0 })
            })
            .collect()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Tracks per-epoch completion latency (Timely-style, §5.5).
///
/// Source time is divided into fixed epochs (1 s of data in the paper).
/// An epoch completes when every record emitted during it has left the
/// dataflow; its latency is `completion_time - epoch_end_time`. The tracker
/// is fed the global *frontier* — the oldest source-emission timestamp still
/// present in any queue or in flight.
#[derive(Debug, Clone)]
pub struct EpochTracker {
    epoch_ns: u64,
    /// Next epoch index awaiting completion.
    next_epoch: u64,
    /// `(epoch_index, latency_ns)` for completed epochs.
    completed: Vec<(u64, u64)>,
}

impl EpochTracker {
    /// Creates a tracker with the given epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_ns` is zero.
    pub fn new(epoch_ns: u64) -> Self {
        assert!(epoch_ns > 0, "epoch length must be positive");
        Self {
            epoch_ns,
            next_epoch: 0,
            completed: Vec::new(),
        }
    }

    /// Advances the tracker: at time `now_ns` the oldest unprocessed source
    /// timestamp is `frontier_ns` (`None` when the dataflow is fully
    /// drained). Completes every epoch that ends strictly before the
    /// frontier — and before `now_ns`, since an epoch cannot complete before
    /// its own data finished being emitted.
    pub fn advance(&mut self, now_ns: u64, frontier_ns: Option<u64>) {
        let frontier = frontier_ns.unwrap_or(now_ns);
        loop {
            let epoch_end = (self.next_epoch + 1) * self.epoch_ns;
            if epoch_end <= frontier && epoch_end <= now_ns {
                let latency = now_ns - epoch_end;
                self.completed.push((self.next_epoch, latency));
                self.next_epoch += 1;
            } else {
                break;
            }
        }
    }

    /// Completed epochs as `(epoch_index, latency_ns)`.
    pub fn completed(&self) -> &[(u64, u64)] {
        &self.completed
    }

    /// Latencies of completed epochs as a recorder (weight 1 per epoch).
    pub fn recorder(&self) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &(_, l) in &self.completed {
            r.record(l, 1.0);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_weighted() {
        let mut r = LatencyRecorder::new();
        r.record(100, 9.0);
        r.record(1_000, 1.0);
        assert_eq!(r.median(), Some(100));
        assert_eq!(r.quantile(0.95), Some(1_000));
        assert!((r.mean().unwrap() - 190.0).abs() < 1e-9);
        assert!((r.fraction_above(100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.median(), None);
        assert_eq!(r.mean(), None);
        assert_eq!(r.fraction_above(0), 0.0);
        assert_eq!(r.cdf(&[10])[0].1, 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let mut r = LatencyRecorder::new();
        for l in [10u64, 20, 30, 40, 50] {
            r.record(l, 1.0);
        }
        let cdf = r.cdf(&[5, 10, 25, 50, 100]);
        assert_eq!(cdf[0].1, 0.0);
        assert!((cdf[1].1 - 0.2).abs() < 1e-12);
        assert!((cdf[2].1 - 0.4).abs() < 1e-12);
        assert!((cdf[3].1 - 1.0).abs() < 1e-12);
        assert!((cdf[4].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_quantiles_are_identical_and_track_inserts() {
        // Regression: quantile used to clone + re-sort the sample vector on
        // every call; the sorted order is now cached. Repeated calls must
        // return identical values, and the cache must fold in samples
        // recorded between calls (matching a freshly built recorder).
        let mut r = LatencyRecorder::new();
        let latencies = [900u64, 100, 500, 300, 700, 200, 800, 400, 600, 1_000];
        let mut fresh = LatencyRecorder::new();
        for (i, &l) in latencies.iter().enumerate() {
            r.record(l, 1.0 + (i % 3) as f64);
            fresh.record(l, 1.0 + (i % 3) as f64);
            // Query after every insert: the cache is rebuilt mid-stream.
            for q in [0.1, 0.5, 0.9, 0.99] {
                let a = r.quantile(q);
                assert_eq!(a, r.quantile(q), "repeated call differs at q={q}");
                // A recorder that never answered a query agrees.
                let clean: LatencyRecorder = fresh.clone();
                assert_eq!(a, clean.quantile(q), "cache diverged at q={q}");
            }
        }
        assert_eq!(r.quantile(0.0), Some(100));
        assert_eq!(r.quantile(1.0), Some(1_000));
        // Cloning drops the cache but not the samples.
        let c = r.clone();
        assert_eq!(c.median(), r.median());
    }

    #[test]
    fn merge_recorders() {
        let mut a = LatencyRecorder::new();
        a.record(10, 1.0);
        let mut b = LatencyRecorder::new();
        b.record(20, 3.0);
        a.merge(&b);
        assert_eq!(a.total_weight(), 4.0);
        assert_eq!(a.median(), Some(20));
    }

    #[test]
    fn epochs_complete_behind_frontier() {
        let mut t = EpochTracker::new(1_000);
        // At t=2500 the frontier is at 2100: epochs 0 ([0,1000)) and 1 are
        // fully drained.
        t.advance(2_500, Some(2_100));
        assert_eq!(t.completed().len(), 2);
        assert_eq!(t.completed()[0], (0, 1_500));
        assert_eq!(t.completed()[1], (1, 500));
        // No double-completion.
        t.advance(2_600, Some(2_100));
        assert_eq!(t.completed().len(), 2);
    }

    #[test]
    fn drained_dataflow_completes_up_to_now() {
        let mut t = EpochTracker::new(1_000);
        t.advance(3_000, None);
        // Epochs 0,1,2 end at 1000,2000,3000 <= now.
        assert_eq!(t.completed().len(), 3);
        assert_eq!(t.completed()[2], (2, 0));
    }

    #[test]
    fn epoch_cannot_complete_before_it_ends() {
        let mut t = EpochTracker::new(1_000);
        t.advance(500, None);
        assert!(t.completed().is_empty());
    }

    #[test]
    fn recorder_from_epochs() {
        let mut t = EpochTracker::new(1_000);
        t.advance(2_500, Some(2_100));
        let r = t.recorder();
        assert_eq!(r.total_weight(), 2.0);
        assert_eq!(r.quantile(1.0), Some(1_500));
    }
}
