//! Scenario matrix: seeded generation of random dataflow scenarios and a
//! runner that drives every controller over every scenario.
//!
//! The paper's headline claim — convergence to the optimal parallelism in
//! at most **three scaling steps** — is easy to demonstrate on a
//! hand-picked word count and easy to break on an adversarial topology.
//! This module makes the claim falsifiable at scale:
//!
//! * [`topology`] — random DAG shapes (chains, diamonds, fan-in/fan-out,
//!   layered, multi-source ingestion) of 2–12 operators;
//! * [`workload`] — offered-rate shapes (constant, step, diurnal sine,
//!   spike, sawtooth ramp cycles, flash crowds) plus hot-key skew, alone
//!   and correlated with a rate spike;
//! * [`generator`] — seeded assembly of complete scenarios with analytic
//!   ground-truth optimal parallelism;
//! * [`nexmark`] — the paper's real query dataflows (Nexmark Q1/Q2/Q3/Q5/
//!   Q8/Q11, §5.1) lowered into matrix scenarios: windowed mains, keyed
//!   hot-key classes, multi-feed ingestion at Table 3 rate ratios;
//! * [`matrix`] — the cross-product runner scoring steps-to-convergence,
//!   over/under-provisioning and SASO-style stability for DS2 and each
//!   baseline controller, sharded over worker threads with bit-identical
//!   results for any thread count, reported overall and per family.
//!
//! Everything is a pure function of the seed: scenario `i` of a matrix
//! uses seed `base_seed + i`, each cell's engine RNG derives from that
//! seed, and a failing scenario is reported as its seed and regenerates
//! bit-for-bit.
//!
//! ```
//! use ds2_simulator::scenarios::{
//!     ControllerKind, GeneratorConfig, MatrixConfig, ScenarioMatrix,
//! };
//!
//! let report = ScenarioMatrix::new(MatrixConfig {
//!     scenarios: 2,
//!     controllers: vec![ControllerKind::Ds2],
//!     generator: GeneratorConfig {
//!         operators: (2, 4),
//!         run_duration_ns: 120_000_000_000,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! })
//! .run();
//! assert_eq!(report.outcomes.len(), 2);
//! let summary = report.summary(ControllerKind::Ds2);
//! assert_eq!(summary.runs, 2);
//! ```

pub mod generator;
pub mod matrix;
pub mod nexmark;
pub mod topology;
pub mod workload;

pub use crate::faults::FaultProfile;
pub use generator::{GeneratorConfig, ScenarioSpec};
pub use matrix::{
    parallelism_sequences, CellArena, ControllerKind, ControllerSummary, MatrixConfig,
    MatrixReport, ScenarioMatrix, ScenarioOutcome,
};
pub use nexmark::{NexmarkQuery, ScenarioFamily};
pub use topology::{Topology, TopologyShape};
pub use workload::{Workload, WorkloadShape};
