//! Random dataflow topologies for the scenario matrix.
//!
//! Every shape is a DAG of 2–12 operators, mirroring the structures the
//! paper evaluates (word-count chains, Nexmark joins with fan-in,
//! multi-output pipelines with fan-out) plus layered "diamond"
//! compositions that exercise the policy's topological traversal on
//! non-trivial in/out degrees, and multi-source ingestion graphs (several
//! independent feeds merging into one pipeline — the Kafka-multi-topic
//! shape). All families except [`TopologyShape::MultiSource`] have exactly
//! one source.

use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use rand::rngs::SmallRng;
use rand::Rng;

/// The family a generated topology belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyShape {
    /// `src -> op1 -> op2 -> …` — the word-count shape.
    Chain,
    /// A chain that splits into parallel branches and re-joins — the
    /// Nexmark Q3/Q8 join shape.
    Diamond,
    /// One upstream stage feeding several independent downstream chains.
    FanOut,
    /// Several parallel chains merging into one downstream stage.
    FanIn,
    /// Random layered DAG: every operator connects to one or more operators
    /// of the next layer.
    Layered,
    /// Several independent sources merging into one downstream pipeline —
    /// multi-topic ingestion, where the merge stage sees the *sum* of all
    /// feeds.
    MultiSource,
}

impl TopologyShape {
    /// All shapes, in matrix iteration order.
    pub const ALL: [TopologyShape; 6] = [
        TopologyShape::Chain,
        TopologyShape::Diamond,
        TopologyShape::FanOut,
        TopologyShape::FanIn,
        TopologyShape::Layered,
        TopologyShape::MultiSource,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyShape::Chain => "chain",
            TopologyShape::Diamond => "diamond",
            TopologyShape::FanOut => "fan_out",
            TopologyShape::FanIn => "fan_in",
            TopologyShape::Layered => "layered",
            TopologyShape::MultiSource => "multi_source",
        }
    }

    /// Parses a short name as printed in reports.
    pub fn from_name(name: &str) -> Option<TopologyShape> {
        TopologyShape::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A generated topology: the logical graph plus its operators in creation
/// order (`ids` starts with the sources; every family except
/// [`TopologyShape::MultiSource`] has exactly one).
#[derive(Debug, Clone)]
pub struct Topology {
    /// The family this graph was drawn from.
    pub shape: TopologyShape,
    /// The built dataflow graph.
    pub graph: LogicalGraph,
    /// All operators, sources first.
    pub ids: Vec<OperatorId>,
}

impl Topology {
    /// Generates a topology of `n_ops` total operators (including the
    /// source; `n_ops >= 2`) of the given shape.
    pub fn generate(shape: TopologyShape, n_ops: usize, rng: &mut SmallRng) -> Topology {
        let n_ops = n_ops.max(2);
        let mut b = GraphBuilder::new();
        let src = b.operator("source");
        let mut ids = vec![src];
        let workers = n_ops - 1;

        match shape {
            TopologyShape::Chain => {
                let mut prev = src;
                for i in 0..workers {
                    let op = b.operator(format!("op{i}"));
                    b.connect(prev, op);
                    ids.push(op);
                    prev = op;
                }
            }
            TopologyShape::Diamond if workers < 4 => {
                // A diamond needs split + 2 branches + join; below that
                // budget, degrade to a chain so the requested operator
                // count is honoured exactly.
                let mut prev = src;
                for i in 0..workers {
                    let op = b.operator(format!("op{i}"));
                    b.connect(prev, op);
                    ids.push(op);
                    prev = op;
                }
            }
            TopologyShape::Diamond => {
                // src -> split -> {branches…} -> join [-> tail…]
                let split = b.operator("split");
                b.connect(src, split);
                ids.push(split);
                let branch_budget = workers - 2;
                let branches = rng.gen_range(2..=branch_budget.min(3));
                let mut branch_ends = Vec::new();
                let mut used = 1; // split
                for bi in 0..branches {
                    let op = b.operator(format!("branch{bi}"));
                    b.connect(split, op);
                    ids.push(op);
                    branch_ends.push(op);
                    used += 1;
                }
                let join = b.operator("join");
                for &e in &branch_ends {
                    b.connect(e, join);
                }
                ids.push(join);
                used += 1;
                let mut prev = join;
                for i in used..workers {
                    let op = b.operator(format!("tail{i}"));
                    b.connect(prev, op);
                    ids.push(op);
                    prev = op;
                }
            }
            TopologyShape::FanOut if workers < 2 => {
                // Not enough operators to fan out; a single worker keeps
                // the requested count exact.
                let op = b.operator("op0");
                b.connect(src, op);
                ids.push(op);
            }
            TopologyShape::FanOut => {
                // src -> head -> {independent chains}
                let head = b.operator("head");
                b.connect(src, head);
                ids.push(head);
                let rest = workers - 1;
                let chains = rng.gen_range(2..=rest.clamp(2, 3));
                // Distribute the remaining operators over the chains.
                let mut prev: Vec<OperatorId> = (0..chains).map(|_| head).collect();
                for i in 0..rest {
                    let lane = i % chains;
                    let op = b.operator(format!("lane{lane}_{i}"));
                    b.connect(prev[lane], op);
                    ids.push(op);
                    prev[lane] = op;
                }
            }
            TopologyShape::FanIn if workers < 2 => {
                // Not enough operators to merge; a single worker keeps the
                // requested count exact.
                let op = b.operator("op0");
                b.connect(src, op);
                ids.push(op);
            }
            TopologyShape::FanIn => {
                // src -> {parallel chains} -> merge [-> tail]
                let rest = workers - 1;
                let chains = rng.gen_range(2..=rest.clamp(2, 3));
                let mut prev: Vec<OperatorId> = (0..chains).map(|_| src).collect();
                for i in 0..rest {
                    let lane = i % chains;
                    let op = b.operator(format!("lane{lane}_{i}"));
                    b.connect(prev[lane], op);
                    ids.push(op);
                    prev[lane] = op;
                }
                let merge = b.operator("merge");
                for &p in prev.iter() {
                    if p != src {
                        b.connect(p, merge);
                    }
                }
                // Degenerate case: no chain got an operator (rest < chains
                // cannot happen, but guard anyway).
                if prev.iter().all(|&p| p == src) {
                    b.connect(src, merge);
                }
                ids.push(merge);
            }
            TopologyShape::MultiSource if workers < 2 => {
                // Not enough operators for a second source + merge; a chain
                // keeps the requested count exact.
                let op = b.operator("op0");
                b.connect(src, op);
                ids.push(op);
            }
            TopologyShape::MultiSource => {
                // {src0, src1[, src2]} -> merge [-> tail…]. Extra sources
                // count against the operator budget; every source feeds the
                // merge stage, which therefore sees the sum of all feeds.
                let extra = rng.gen_range(1..=(workers - 1).min(2));
                let mut extra_sources = Vec::with_capacity(extra);
                for si in 0..extra {
                    let s = b.operator(format!("source{}", si + 1));
                    ids.push(s);
                    extra_sources.push(s);
                }
                let merge = b.operator("merge");
                b.connect(src, merge);
                for &s in &extra_sources {
                    b.connect(s, merge);
                }
                ids.push(merge);
                let mut prev = merge;
                for i in (extra + 1)..workers {
                    let op = b.operator(format!("tail{i}"));
                    b.connect(prev, op);
                    ids.push(op);
                    prev = op;
                }
            }
            TopologyShape::Layered => {
                // Random layer widths summing to `workers`.
                let mut layers: Vec<usize> = Vec::new();
                let mut remaining = workers;
                while remaining > 0 {
                    let w = rng.gen_range(1..=remaining.min(3));
                    layers.push(w);
                    remaining -= w;
                }
                let mut prev_layer = vec![src];
                let mut connected = std::collections::BTreeSet::new();
                for (li, &w) in layers.iter().enumerate() {
                    let mut layer = Vec::with_capacity(w);
                    for i in 0..w {
                        let op = b.operator(format!("l{li}_{i}"));
                        ids.push(op);
                        layer.push(op);
                    }
                    // Every new operator gets at least one upstream parent;
                    // every parent gets at least one child.
                    for (i, &op) in layer.iter().enumerate() {
                        let parent = prev_layer[i % prev_layer.len()];
                        if connected.insert((parent, op)) {
                            b.connect(parent, op);
                        }
                    }
                    for (i, &parent) in prev_layer.iter().enumerate() {
                        if i >= layer.len() {
                            let child = layer[i % layer.len()];
                            if connected.insert((parent, child)) {
                                b.connect(parent, child);
                            }
                        }
                    }
                    // A few extra random edges for higher in-degrees.
                    for &op in &layer {
                        if prev_layer.len() > 1 && rng.gen_bool(0.3) {
                            let extra = prev_layer[rng.gen_range(0..prev_layer.len())];
                            if connected.insert((extra, op)) {
                                b.connect(extra, op);
                            }
                        }
                    }
                    prev_layer = layer;
                }
            }
        }

        let graph = b.build().expect("generated topology is a valid DAG");
        debug_assert!(graph.sources().contains(&src));
        debug_assert!(shape == TopologyShape::MultiSource || graph.sources() == [src]);
        Topology { shape, graph, ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_shapes_build_valid_dags() {
        let mut rng = SmallRng::seed_from_u64(7);
        for shape in TopologyShape::ALL {
            for n in 2..=12 {
                let t = Topology::generate(shape, n, &mut rng);
                let n_sources = t.graph.sources().len();
                if shape == TopologyShape::MultiSource && n >= 3 {
                    assert!((2..=3).contains(&n_sources), "{shape:?} n={n}");
                } else {
                    assert_eq!(n_sources, 1, "{shape:?} n={n}");
                }
                // Sources lead the creation-order id list.
                assert_eq!(&t.ids[..n_sources], t.graph.sources(), "{shape:?} n={n}");
                assert_eq!(t.graph.len(), t.ids.len(), "{shape:?} n={n}");
                assert_eq!(t.graph.len(), n, "{shape:?} must honour n_ops exactly");
                // Every non-source operator is reachable (has upstream).
                for op in t.graph.operators() {
                    if !t.graph.is_source(op) {
                        assert!(
                            t.graph.upstream_edges(op).next().is_some(),
                            "{shape:?} n={n}: {op} unreachable"
                        );
                    }
                }
                // Topological order covers every operator (acyclic).
                assert_eq!(t.graph.topological_order().count(), t.graph.len());
            }
        }
    }

    #[test]
    fn every_shape_respects_exact_operator_count() {
        let mut rng = SmallRng::seed_from_u64(3);
        for shape in TopologyShape::ALL {
            for n in 2..=12 {
                let t = Topology::generate(shape, n, &mut rng);
                assert_eq!(t.graph.len(), n, "{shape:?} n={n}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for shape in TopologyShape::ALL {
            for n in [3, 6, 9, 12] {
                let a = Topology::generate(shape, n, &mut SmallRng::seed_from_u64(11));
                let b = Topology::generate(shape, n, &mut SmallRng::seed_from_u64(11));
                assert_eq!(a.ids, b.ids, "{shape:?} n={n}");
                assert_eq!(a.graph.edges(), b.graph.edges(), "{shape:?} n={n}");
            }
        }
    }

    #[test]
    fn multi_source_merges_every_feed() {
        let mut rng = SmallRng::seed_from_u64(13);
        for n in 3..=12 {
            let t = Topology::generate(TopologyShape::MultiSource, n, &mut rng);
            let sources = t.graph.sources().to_vec();
            assert!(sources.len() >= 2, "n={n}");
            // Every source feeds the same merge operator.
            let merge_targets: std::collections::BTreeSet<_> = sources
                .iter()
                .flat_map(|&s| t.graph.downstream_edges(s).map(|e| e.to))
                .collect();
            assert_eq!(merge_targets.len(), 1, "n={n}: sources must share a merge");
            let merge = *merge_targets.iter().next().unwrap();
            assert_eq!(
                t.graph.upstream_edges(merge).count(),
                sources.len(),
                "n={n}"
            );
        }
    }
}
