//! Seeded generation of complete scenarios: topology × workload × operator
//! profiles × initial deployment.
//!
//! A [`ScenarioSpec`] is everything needed to run one closed-loop
//! experiment, plus the analytic ground truth (optimal parallelism per
//! operator) the matrix scores outcomes against. Generation is a pure
//! function of the seed, which is what makes the matrix reproducible: a
//! failing scenario is reported as its seed and can be regenerated
//! bit-for-bit.

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::OperatorId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{OperatorProfile, ProfileMap, ScalingCurve, StateProfile};
use crate::source::SourceSpec;

use super::nexmark::{self, ScenarioFamily};
use super::topology::{Topology, TopologyShape};
use super::workload::{Workload, WorkloadShape};

/// Knobs for scenario generation.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Scenario families to draw from: the synthetic generator and/or
    /// Nexmark query dataflows. Repetition weights the draw (e.g.
    /// [`ScenarioFamily::headline_mix`] — six `Synthetic` entries plus
    /// [`ScenarioFamily::ALL_NEXMARK`] — yields a 50/50 synthetic/nexmark
    /// mix). The family draw runs on its own RNG stream and the scenario
    /// body on a `(seed, family)`-derived one, so a `(seed, family)` pair
    /// generates bit-identically under any list — and synthetic-only
    /// configs generate bit-identical scenarios to configs predating the
    /// family axis.
    pub families: Vec<ScenarioFamily>,
    /// Topology families to draw from (synthetic scenarios only).
    pub shapes: Vec<TopologyShape>,
    /// Workload families to draw from.
    pub workloads: Vec<WorkloadShape>,
    /// Inclusive range of total operator counts (including the source).
    pub operators: (usize, usize),
    /// Offered-rate range in records/second.
    pub rate_range: (f64, f64),
    /// Per-instance capacity range in records/second.
    pub capacity_range: (f64, f64),
    /// Per-operator selectivity range (clamped so the cumulative product
    /// along any path stays within [0.2, 4]).
    pub selectivity_range: (f64, f64),
    /// Probability that an operator's cost grows with parallelism
    /// (saturating or sigmoid curve) rather than scaling perfectly.
    pub nonlinear_probability: f64,
    /// Probability that an operator carries hidden (uninstrumented)
    /// overhead, the paper's third-step driver.
    pub hidden_probability: f64,
    /// Initial parallelism range for non-source operators.
    pub initial_parallelism: (usize, usize),
    /// Run length the workload schedule is laid out over.
    pub run_duration_ns: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            families: vec![ScenarioFamily::Synthetic],
            shapes: TopologyShape::ALL.to_vec(),
            workloads: WorkloadShape::ALL.to_vec(),
            operators: (2, 12),
            rate_range: (600.0, 4_000.0),
            capacity_range: (400.0, 2_500.0),
            selectivity_range: (0.3, 2.0),
            nonlinear_probability: 0.3,
            hidden_probability: 0.25,
            initial_parallelism: (1, 8),
            run_duration_ns: 300_000_000_000,
        }
    }
}

/// Seed salt of the family-draw RNG stream (distinct from every scenario
/// body stream).
const FAMILY_DRAW_SALT: u64 = 0xFA31_11D8_2B5C_6E93;

/// One fully specified experiment.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The seed this scenario was generated from (reproduces it exactly).
    pub seed: u64,
    /// The family this scenario was drawn from.
    pub family: ScenarioFamily,
    /// The generated topology.
    pub topology: Topology,
    /// The generated workload.
    pub workload: Workload,
    /// Per-operator cost profiles (non-source operators).
    pub profiles: ProfileMap,
    /// Source specifications.
    pub sources: BTreeMap<OperatorId, SourceSpec>,
    /// Initial deployment the controller starts from.
    pub initial: Deployment,
}

impl ScenarioSpec {
    /// Generates the scenario for `seed` under `config`.
    ///
    /// The family is drawn on its own RNG stream and the scenario *body*
    /// generates from a `(seed, family)`-derived stream, so a given pair
    /// produces the identical scenario under **any** family list: a
    /// failing cell of a multi-family matrix regenerates bit-exactly from
    /// a single-family config (`--seed <seed> --family <family>`, with
    /// matching workload/duration knobs). Synthetic bodies read the raw
    /// seed stream — salt 0 — exactly as before the family axis existed.
    pub fn generate(seed: u64, config: &GeneratorConfig) -> ScenarioSpec {
        let family = match config.families.len() {
            0 => ScenarioFamily::Synthetic,
            1 => config.families[0],
            // The draw's own stream: consuming it must not shift the body.
            n => {
                let mut family_rng = SmallRng::seed_from_u64(seed ^ FAMILY_DRAW_SALT);
                config.families[family_rng.gen_range(0..n)]
            }
        };
        let mut rng = SmallRng::seed_from_u64(seed ^ family.scenario_salt());
        match family {
            ScenarioFamily::Synthetic => Self::generate_synthetic(seed, config, rng),
            ScenarioFamily::Nexmark(query) => {
                let workload_shape = config.workloads[rng.gen_range(0..config.workloads.len())];
                let workload = Workload::generate(
                    workload_shape,
                    config.run_duration_ns,
                    config.rate_range,
                    &mut rng,
                );
                let (topology, profiles, sources, initial) =
                    nexmark::lower(query, &workload, config, &mut rng);
                ScenarioSpec {
                    seed,
                    family,
                    topology,
                    workload,
                    profiles,
                    sources,
                    initial,
                }
            }
            ScenarioFamily::HotKey => Self::generate_hot_key(seed, config, rng),
            ScenarioFamily::StatePressure => Self::generate_state_pressure(seed, config, rng),
        }
    }

    /// The original synthetic generator: random topology × workload ×
    /// profiles × initial deployment.
    fn generate_synthetic(seed: u64, config: &GeneratorConfig, mut rng: SmallRng) -> ScenarioSpec {
        let shape = config.shapes[rng.gen_range(0..config.shapes.len())];
        let workload_shape = config.workloads[rng.gen_range(0..config.workloads.len())];
        let n_ops = rng.gen_range(config.operators.0..=config.operators.1);
        let topology = Topology::generate(shape, n_ops, &mut rng);
        let workload = Workload::generate(
            workload_shape,
            config.run_duration_ns,
            config.rate_range,
            &mut rng,
        );

        // Cumulative flow into/out of each operator as a multiple of the
        // source rate (fan-in *sums* parent flows, so a max-path bound
        // would still let flow compound through deep layered graphs), used
        // to clamp per-operator selectivity so rates neither vanish nor
        // explode.
        let mut cum_sel: BTreeMap<OperatorId, f64> = BTreeMap::new();
        let mut profiles = ProfileMap::new();
        let graph = &topology.graph;
        // One randomly chosen non-source operator carries the hot key in
        // skewed scenarios (KeySkew, SpikeSkew).
        let non_source: Vec<OperatorId> = graph
            .operators()
            .filter(|&op| !graph.is_source(op))
            .collect();
        let skew_victim = non_source[rng.gen_range(0..non_source.len())];

        for op in graph.topological_order().collect::<Vec<_>>() {
            if graph.is_source(op) {
                cum_sel.insert(op, 1.0);
                continue;
            }
            let upstream_cum = graph
                .upstream_edges(op)
                .map(|e| cum_sel[&e.from])
                .sum::<f64>()
                .max(1e-6);
            let (slo, shi) = config.selectivity_range;
            // Keep every operator's output flow within [0.25, 2] source
            // rates: fan-in sums and deep chains must not drive target
            // rates (hence optimal parallelism and simulation cost) beyond
            // the matrix budget.
            let sel = rng
                .gen_range(slo..shi)
                .clamp(0.25 / upstream_cum, 2.0 / upstream_cum)
                .clamp(0.05, 8.0);
            cum_sel.insert(op, upstream_cum * sel);

            let capacity = rng.gen_range(config.capacity_range.0..config.capacity_range.1);
            let mut profile = OperatorProfile::with_capacity(capacity, sel);
            if rng.gen_bool(config.nonlinear_probability) {
                profile = profile.with_scaling(if rng.gen_bool(0.5) {
                    ScalingCurve::Saturating {
                        alpha: rng.gen_range(0.05..0.3),
                        knee: rng.gen_range(2.0..8.0),
                    }
                } else {
                    ScalingCurve::Sigmoid {
                        alpha: rng.gen_range(0.05..0.25),
                        knee: rng.gen_range(4.0..12.0),
                        width: rng.gen_range(1.0..3.0),
                    }
                });
            }
            if rng.gen_bool(config.hidden_probability) {
                // Hidden overhead up to 15% of the instrumented cost.
                let hidden = profile.instrumented_cost_ns(1) * rng.gen_range(0.03..0.15);
                profile = profile.with_hidden(hidden, ScalingCurve::Linear);
            }
            if let Some(hot) = workload.skew_hot_fraction {
                if op == skew_victim {
                    profile = profile.with_skew(hot);
                }
            }
            profiles.insert(op, profile);
        }

        // Every source runs the full workload schedule: a multi-source
        // topology's merge stage sees `n_sources` times the per-feed rate,
        // which is exactly what `target_rates` assumes.
        let mut sources = BTreeMap::new();
        for &src in graph.sources() {
            sources.insert(src, workload.spec.clone());
        }

        let mut initial = Deployment::uniform(graph, 1);
        let (plo, phi) = config.initial_parallelism;
        for &op in &non_source {
            initial.set(op, rng.gen_range(plo..=phi));
        }

        ScenarioSpec {
            seed,
            family: ScenarioFamily::Synthetic,
            topology,
            workload,
            profiles,
            sources,
            initial,
        }
    }

    /// Hot-key family: one operator carries a *splittable* hot key class
    /// whose rate is 2–6× a single instance's capacity, so no parallelism
    /// alone keeps up (the hot instance saturates at any p) — but splitting
    /// the hot class across instances does. Parallelism-only controllers
    /// plateau; the multi-dimensional controller converges.
    fn generate_hot_key(seed: u64, config: &GeneratorConfig, mut rng: SmallRng) -> ScenarioSpec {
        let shape = config.shapes[rng.gen_range(0..config.shapes.len())];
        let n_ops = rng.gen_range(config.operators.0..=config.operators.1);
        let topology = Topology::generate(shape, n_ops, &mut rng);
        let base = rng.gen_range(config.rate_range.0..config.rate_range.1);
        let hot = rng.gen_range(0.4..0.7);
        let workload = Workload {
            shape: WorkloadShape::KeySkew,
            spec: SourceSpec::constant(base),
            final_rate: base,
            peak_rate: base,
            last_change_ns: 0,
            skew_hot_fraction: Some(hot),
        };

        let mut cum_sel: BTreeMap<OperatorId, f64> = BTreeMap::new();
        let mut profiles = ProfileMap::new();
        let graph = &topology.graph;
        let non_source: Vec<OperatorId> = graph
            .operators()
            .filter(|&op| !graph.is_source(op))
            .collect();
        let victim = non_source[rng.gen_range(0..non_source.len())];
        // How many single-instance capacities the hot class alone offers:
        // the skew plateau sits this far below the victim's target rate.
        let overload = rng.gen_range(2.0..6.0);

        for op in graph.topological_order().collect::<Vec<_>>() {
            if graph.is_source(op) {
                cum_sel.insert(op, 1.0);
                continue;
            }
            let upstream_cum = graph
                .upstream_edges(op)
                .map(|e| cum_sel[&e.from])
                .sum::<f64>()
                .max(1e-6);
            let (slo, shi) = config.selectivity_range;
            let sel = rng
                .gen_range(slo..shi)
                .clamp(0.25 / upstream_cum, 2.0 / upstream_cum)
                .clamp(0.05, 8.0);
            cum_sel.insert(op, upstream_cum * sel);

            let profile = if op == victim {
                // Pin the hot class at `overload` instance-capacities of the
                // victim's target rate; the profile stays linear so the
                // plateau is purely the key distribution's fault.
                let target = upstream_cum * base;
                let capacity = (hot * target / overload).max(30.0);
                OperatorProfile::with_capacity(capacity, sel).with_splittable_skew(hot)
            } else {
                let capacity = rng.gen_range(config.capacity_range.0..config.capacity_range.1);
                OperatorProfile::with_capacity(capacity, sel)
            };
            profiles.insert(op, profile);
        }

        let mut sources = BTreeMap::new();
        for &src in graph.sources() {
            sources.insert(src, workload.spec.clone());
        }
        let mut initial = Deployment::uniform(graph, 1);
        let (plo, phi) = config.initial_parallelism;
        for &op in &non_source {
            initial.set(op, rng.gen_range(plo..=phi));
        }

        ScenarioSpec {
            seed,
            family: ScenarioFamily::HotKey,
            topology,
            workload,
            profiles,
            sources,
            initial,
        }
    }

    /// State-pressure family: one stateful operator's total state grows
    /// with the offered rate, and as a `state_ramp`/`state_spike` workload
    /// elevates the rate, the per-instance state at the rate-optimal
    /// parallelism overshoots the memory budget by 1.5–3×. Running over
    /// budget spills (a 2–4× cost multiplier), so the true optimum is the
    /// state floor `ceil(total_state / budget)`, above the rate optimum.
    fn generate_state_pressure(
        seed: u64,
        config: &GeneratorConfig,
        mut rng: SmallRng,
    ) -> ScenarioSpec {
        let shape = config.shapes[rng.gen_range(0..config.shapes.len())];
        let n_ops = rng.gen_range(config.operators.0..=config.operators.1);
        let topology = Topology::generate(shape, n_ops, &mut rng);
        let workload_shape = if rng.gen_bool(0.5) {
            WorkloadShape::StateRamp
        } else {
            WorkloadShape::StateSpike
        };
        let workload = Workload::generate(
            workload_shape,
            config.run_duration_ns,
            config.rate_range,
            &mut rng,
        );

        let mut cum_sel: BTreeMap<OperatorId, f64> = BTreeMap::new();
        let mut profiles = ProfileMap::new();
        let graph = &topology.graph;
        let non_source: Vec<OperatorId> = graph
            .operators()
            .filter(|&op| !graph.is_source(op))
            .collect();
        let victim = non_source[rng.gen_range(0..non_source.len())];
        // The victim's rate-optimal parallelism is drawn, not derived:
        // capacity is set so `p_rate` instances exactly sustain the final
        // rate, keeping the state floor (`pressure × p_rate`) under the
        // matrix's parallelism cap.
        let p_rate = rng.gen_range(2usize..=8);
        let pressure = rng.gen_range(1.5..3.0);
        let spill = rng.gen_range(2.0..4.0);
        let budget = rng.gen_range(1.0e8..4.0e8);
        let total_final: f64 = graph.sources().len() as f64 * workload.final_rate;

        for op in graph.topological_order().collect::<Vec<_>>() {
            if graph.is_source(op) {
                cum_sel.insert(op, 1.0);
                continue;
            }
            let upstream_cum = graph
                .upstream_edges(op)
                .map(|e| cum_sel[&e.from])
                .sum::<f64>()
                .max(1e-6);
            let (slo, shi) = config.selectivity_range;
            let sel = rng
                .gen_range(slo..shi)
                .clamp(0.25 / upstream_cum, 2.0 / upstream_cum)
                .clamp(0.05, 8.0);
            cum_sel.insert(op, upstream_cum * sel);

            let profile = if op == victim {
                let target = upstream_cum * workload.final_rate;
                let capacity = (target / p_rate as f64).max(30.0);
                // Total state at the final rate lands `pressure` budgets
                // above what `p_rate` instances can hold.
                let total_bytes = budget * p_rate as f64 * pressure;
                OperatorProfile::with_capacity(capacity, sel).with_state(StateProfile {
                    base_bytes: 0.0,
                    bytes_per_source_rate: total_bytes / total_final,
                    spill_cost_multiplier: spill,
                    budget_per_instance_bytes: budget,
                })
            } else {
                let capacity = rng.gen_range(config.capacity_range.0..config.capacity_range.1);
                OperatorProfile::with_capacity(capacity, sel)
            };
            profiles.insert(op, profile);
        }

        let mut sources = BTreeMap::new();
        for &src in graph.sources() {
            sources.insert(src, workload.spec.clone());
        }
        let mut initial = Deployment::uniform(graph, 1);
        let (plo, phi) = config.initial_parallelism;
        for &op in &non_source {
            initial.set(op, rng.gen_range(plo..=phi));
        }

        ScenarioSpec {
            seed,
            family: ScenarioFamily::StatePressure,
            topology,
            workload,
            profiles,
            sources,
            initial,
        }
    }

    /// The per-instance state budget this scenario's stateful operators
    /// were generated against: the tightest finite
    /// [`StateProfile::budget_per_instance_bytes`] across profiles, or
    /// `None` for stateless scenarios. The multi-dimensional controller is
    /// configured with this value (the machine limit is knowable; *when*
    /// state crosses it is not).
    pub fn state_budget(&self) -> Option<f64> {
        self.profiles
            .values()
            .filter_map(|p| p.state.as_ref())
            .map(|s| s.budget_per_instance_bytes)
            .filter(|b| b.is_finite() && *b > 0.0)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Analytic target input rate per operator when every upstream keeps up
    /// with a total workload rate of `source_rate` (the ground truth of
    /// Eq. 8). Each source offers `source_rate` scaled by its share of the
    /// workload's final rate: synthetic sources all run the full schedule
    /// (share 1 — the merge stage of a multi-source topology sees the
    /// sum), while nexmark feeds split one schedule at fixed ratios.
    pub fn target_rates(&self, source_rate: f64) -> BTreeMap<OperatorId, f64> {
        let graph = &self.topology.graph;
        let mut out_rate: BTreeMap<OperatorId, f64> = BTreeMap::new();
        let mut targets = BTreeMap::new();
        for op in graph.topological_order().collect::<Vec<_>>() {
            if graph.is_source(op) {
                // `share == 1.0` exactly for synthetic sources (their
                // schedule tail *is* the workload's final rate), keeping
                // pre-family-axis targets bit-identical.
                let share = self.sources[&op].schedule.rate_at(u64::MAX) / self.workload.final_rate;
                let rate = source_rate * share;
                out_rate.insert(op, rate);
                targets.insert(op, rate);
                continue;
            }
            let rt: f64 = graph
                .upstream_edges(op)
                .map(|e| out_rate[&e.from] * e.weight)
                .sum();
            let sel = self.profiles[&op].output.average_selectivity();
            targets.insert(op, rt);
            out_rate.insert(op, rt * sel);
        }
        targets
    }

    /// The minimum parallelism per non-source operator that sustains the
    /// workload's final rate, accounting for scaling curves, hidden
    /// overhead and skew (the matrix's provisioning ground truth).
    ///
    /// With a non-splittable hot key, aggregate capacity plateaus at
    /// `capacity / hot_share` no matter the parallelism (§4.2.3: skew is
    /// not fixable by scaling); in that case the reported optimum is the
    /// smallest parallelism reaching the plateau. A *splittable* hot key
    /// is scored at full class split (uniform shares), and a stateful
    /// operator with a finite budget additionally takes the state floor
    /// `ceil(total_state / budget)` — both paths are inert for profiles
    /// without those dimensions, keeping pre-refactor optima bit-identical.
    pub fn optimal_parallelism(&self) -> BTreeMap<OperatorId, usize> {
        let targets = self.target_rates(self.workload.final_rate);
        let graph = &self.topology.graph;
        let mut optimal = BTreeMap::new();
        for op in graph.operators() {
            if graph.is_source(op) {
                continue;
            }
            let rt = targets[&op];
            let profile = &self.profiles[&op];
            let cap_at = |p: usize| {
                if profile.skew_splittable {
                    profile.effective_capacity_split(p, p)
                } else {
                    profile.effective_capacity(p)
                }
            };
            // Effective capacity is monotone in p for the generated curve
            // parameters (alpha well below 1) until a skew plateau, so the
            // first sufficient p is the optimum; past 8 non-improving steps
            // the capacity has plateaued below the target.
            let mut best = 1usize;
            let mut best_cap = cap_at(1);
            let mut p = 1usize;
            while p < 1_024 && best_cap < rt * (1.0 - 1e-9) {
                p += 1;
                let cap = cap_at(p);
                if cap > best_cap * (1.0 + 1e-9) {
                    best = p;
                    best_cap = cap;
                } else if p >= best + 8 {
                    break;
                }
            }
            if let Some(state) = &profile.state {
                if state.budget_per_instance_bytes.is_finite()
                    && state.budget_per_instance_bytes > 0.0
                {
                    let total_rate: f64 = self
                        .sources
                        .values()
                        .map(|s| s.schedule.rate_at(u64::MAX))
                        .sum();
                    let total_bytes = state.total_bytes(total_rate);
                    let floor = ((total_bytes / state.budget_per_instance_bytes) - 1e-9)
                        .ceil()
                        .max(1.0) as usize;
                    best = best.max(floor);
                }
            }
            optimal.insert(op, best);
        }
        optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_family_cells_reproduce_from_single_family_configs() {
        // The reproduction guarantee behind `describe_failures`: a cell of
        // a multi-family matrix regenerates bit-exactly from a config
        // whose family list contains only that cell's family — the family
        // draw must not perturb the scenario body.
        let mut mixed = GeneratorConfig {
            families: ScenarioFamily::headline_mix(),
            ..Default::default()
        };
        // Also with a restricted workload list, like the headline config.
        mixed.workloads = vec![
            WorkloadShape::Constant,
            WorkloadShape::Step,
            WorkloadShape::Spike,
        ];
        let mut seen_nexmark = 0;
        for seed in 0..60 {
            let a = ScenarioSpec::generate(seed, &mixed);
            let single = GeneratorConfig {
                families: vec![a.family],
                ..mixed.clone()
            };
            let b = ScenarioSpec::generate(seed, &single);
            assert_eq!(a.family, b.family, "seed {seed}");
            assert_eq!(a.topology.ids, b.topology.ids, "seed {seed}");
            assert_eq!(
                a.topology.graph.edges(),
                b.topology.graph.edges(),
                "seed {seed}"
            );
            assert_eq!(a.profiles, b.profiles, "seed {seed}");
            assert_eq!(a.sources, b.sources, "seed {seed}");
            assert_eq!(a.initial, b.initial, "seed {seed}");
            assert_eq!(a.workload.spec, b.workload.spec, "seed {seed}");
            if a.family != ScenarioFamily::Synthetic {
                seen_nexmark += 1;
            }
        }
        assert!(seen_nexmark >= 15, "mix drew only {seen_nexmark} nexmark");
    }

    #[test]
    fn synthetic_cells_of_a_mix_match_the_synthetic_only_stream() {
        // Synthetic bodies use salt 0: a synthetic cell of a mixed matrix
        // equals the plain synthetic-only generation of the same seed
        // (which itself is the pre-family-axis stream).
        let mixed = GeneratorConfig {
            families: ScenarioFamily::headline_mix(),
            ..Default::default()
        };
        let synthetic_only = GeneratorConfig::default();
        let mut checked = 0;
        for seed in 0..40 {
            let a = ScenarioSpec::generate(seed, &mixed);
            if a.family != ScenarioFamily::Synthetic {
                continue;
            }
            let b = ScenarioSpec::generate(seed, &synthetic_only);
            assert_eq!(a.topology.ids, b.topology.ids, "seed {seed}");
            assert_eq!(a.profiles, b.profiles, "seed {seed}");
            assert_eq!(a.initial, b.initial, "seed {seed}");
            assert_eq!(a.workload.spec, b.workload.spec, "seed {seed}");
            checked += 1;
        }
        assert!(checked >= 10, "only {checked} synthetic cells in the mix");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        for seed in 0..40 {
            let a = ScenarioSpec::generate(seed, &cfg);
            let b = ScenarioSpec::generate(seed, &cfg);
            assert_eq!(a.topology.ids, b.topology.ids);
            assert_eq!(a.profiles, b.profiles);
            assert_eq!(a.initial, b.initial);
            assert_eq!(a.workload.spec, b.workload.spec);
        }
    }

    #[test]
    fn generation_is_deterministic_for_every_family() {
        // Every topology × workload family, not just whatever the default
        // config happens to draw: restrict the generator to one pair and
        // check same seed → same spec.
        for shape in TopologyShape::ALL {
            for workload in WorkloadShape::ALL {
                let cfg = GeneratorConfig {
                    shapes: vec![shape],
                    workloads: vec![workload],
                    ..Default::default()
                };
                for seed in 0..6 {
                    let a = ScenarioSpec::generate(seed, &cfg);
                    let b = ScenarioSpec::generate(seed, &cfg);
                    assert_eq!(a.topology.shape, shape);
                    assert_eq!(a.workload.shape, workload);
                    assert_eq!(a.topology.ids, b.topology.ids, "{shape:?}/{workload:?}");
                    assert_eq!(
                        a.topology.graph.edges(),
                        b.topology.graph.edges(),
                        "{shape:?}/{workload:?}"
                    );
                    assert_eq!(a.profiles, b.profiles, "{shape:?}/{workload:?}");
                    assert_eq!(a.initial, b.initial, "{shape:?}/{workload:?}");
                    assert_eq!(a.workload.spec, b.workload.spec, "{shape:?}/{workload:?}");
                }
            }
        }
    }

    #[test]
    fn scenarios_are_well_formed() {
        let cfg = GeneratorConfig::default();
        for seed in 0..120 {
            let s = ScenarioSpec::generate(seed, &cfg);
            let graph = &s.topology.graph;
            let n_sources = graph.sources().len();
            if s.topology.shape == TopologyShape::MultiSource {
                assert!((1..=3).contains(&n_sources), "seed {seed}");
            } else {
                assert_eq!(n_sources, 1, "seed {seed}");
            }
            assert!(graph.len() >= 2, "seed {seed}");
            // Profiles for every non-source operator; none for sources.
            for op in graph.operators() {
                assert_eq!(
                    s.profiles.contains_key(&op),
                    !graph.is_source(op),
                    "seed {seed}: {op}"
                );
            }
            // Every source (one, or several for MultiSource) carries the
            // workload's spec.
            assert_eq!(s.sources.len(), graph.sources().len(), "seed {seed}");
            assert!(!s.sources.is_empty(), "seed {seed}");
            for spec in s.sources.values() {
                assert_eq!(*spec, s.workload.spec, "seed {seed}");
            }
            assert!(s.initial.validate(graph).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn cumulative_selectivity_is_bounded() {
        let cfg = GeneratorConfig::default();
        for seed in 0..120 {
            let s = ScenarioSpec::generate(seed, &cfg);
            let targets = s.target_rates(1_000.0);
            for (&op, &rt) in &targets {
                // Per-path cumulative selectivity within [0.25, 2], at most
                // 4 fan-in paths.
                assert!(
                    rt > 100.0 && rt < 1_000.0 * 8.0 + 1.0,
                    "seed {seed}: {op} target {rt} out of bounds"
                );
            }
        }
    }

    #[test]
    fn optimal_parallelism_is_minimal_and_sufficient() {
        // The default config plus one restricted config per workload family
        // (so the analytic-optimum invariant is exercised on every
        // `WorkloadShape`, including the skew-plateau cases).
        let mut configs = vec![GeneratorConfig::default()];
        for workload in WorkloadShape::ALL {
            configs.push(GeneratorConfig {
                workloads: vec![workload],
                ..Default::default()
            });
        }
        for shape in TopologyShape::ALL {
            configs.push(GeneratorConfig {
                shapes: vec![shape],
                ..Default::default()
            });
        }
        for cfg in &configs {
            for seed in 0..20 {
                check_optimum_minimal_and_sufficient(seed, cfg);
            }
        }
        for seed in 20..60 {
            check_optimum_minimal_and_sufficient(seed, &configs[0]);
        }
    }

    #[test]
    fn hot_key_scenarios_need_class_splits() {
        let cfg = GeneratorConfig {
            families: vec![ScenarioFamily::HotKey],
            ..Default::default()
        };
        for seed in 0..40 {
            let a = ScenarioSpec::generate(seed, &cfg);
            let b = ScenarioSpec::generate(seed, &cfg);
            assert_eq!(a.profiles, b.profiles, "seed {seed}");
            assert_eq!(a.initial, b.initial, "seed {seed}");
            assert_eq!(a.family, ScenarioFamily::HotKey);
            assert_eq!(a.state_budget(), None, "hotkey scenarios are stateless");
            let victims: Vec<_> = a
                .profiles
                .iter()
                .filter(|(_, p)| p.skew_splittable)
                .map(|(&op, p)| (op, p.clone()))
                .collect();
            assert_eq!(victims.len(), 1, "seed {seed}: exactly one hot operator");
            let (op, profile) = &victims[0];
            let rt = a.target_rates(a.workload.final_rate)[op];
            let optimal = a.optimal_parallelism();
            let p = optimal[op];
            // Parallelism alone plateaus below the target; the full class
            // split at the reported optimum sustains it.
            assert!(
                profile.effective_capacity(64) < rt * (1.0 - 1e-9),
                "seed {seed}: {op} keeps up without splitting"
            );
            assert!(
                profile.effective_capacity_split(p, p) >= rt * (1.0 - 1e-9),
                "seed {seed}: {op} optimum p={p} insufficient even split"
            );
            assert!(p <= 64, "seed {seed}: optimum {p} above the matrix cap");
        }
    }

    #[test]
    fn state_pressure_optima_sit_on_the_state_floor() {
        let cfg = GeneratorConfig {
            families: vec![ScenarioFamily::StatePressure],
            ..Default::default()
        };
        for seed in 0..40 {
            let a = ScenarioSpec::generate(seed, &cfg);
            let b = ScenarioSpec::generate(seed, &cfg);
            assert_eq!(a.profiles, b.profiles, "seed {seed}");
            assert_eq!(a.family, ScenarioFamily::StatePressure);
            assert!(
                matches!(
                    a.workload.shape,
                    WorkloadShape::StateRamp | WorkloadShape::StateSpike
                ),
                "seed {seed}: {:?}",
                a.workload.shape
            );
            let budget = a.state_budget().expect("a stateful operator");
            let stateful: Vec<_> = a
                .profiles
                .iter()
                .filter(|(_, p)| p.state.is_some())
                .map(|(&op, p)| (op, p.clone()))
                .collect();
            assert_eq!(stateful.len(), 1, "seed {seed}: exactly one stateful op");
            let (op, profile) = &stateful[0];
            let p = a.optimal_parallelism()[op];
            let total_rate = a.topology.graph.sources().len() as f64 * a.workload.final_rate;
            // The optimum is the smallest parallelism whose per-instance
            // state fits the budget, and it still sustains the rate.
            assert!(
                profile.state_bytes(p, total_rate) <= budget * (1.0 + 1e-9),
                "seed {seed}: {op} over budget at its optimum p={p}"
            );
            assert!(
                profile.state_bytes(p - 1, total_rate) > budget,
                "seed {seed}: {op} optimum p={p} not the state floor"
            );
            let rt = a.target_rates(a.workload.final_rate)[op];
            assert!(
                profile.effective_capacity(p) >= rt * (1.0 - 1e-9),
                "seed {seed}: {op} optimum p={p} cannot sustain the rate"
            );
            assert!(p <= 64, "seed {seed}: optimum {p} above the matrix cap");
        }
    }

    fn check_optimum_minimal_and_sufficient(seed: u64, cfg: &GeneratorConfig) {
        {
            let s = ScenarioSpec::generate(seed, cfg);
            let targets = s.target_rates(s.workload.final_rate);
            for (&op, &p) in &s.optimal_parallelism() {
                let profile = &s.profiles[&op];
                let rt = targets[&op];
                let sufficient = profile.effective_capacity(p) >= rt * (1.0 - 1e-9);
                if !sufficient {
                    // Only a skew plateau justifies an insufficient optimum:
                    // more parallelism must not help.
                    assert!(
                        profile.effective_capacity(p + 16)
                            <= profile.effective_capacity(p) * (1.0 + 1e-6),
                        "seed {seed}: {op} p={p} insufficient but not plateaued"
                    );
                    continue;
                }
                if p > 1 {
                    assert!(
                        profile.effective_capacity(p - 1) < rt,
                        "seed {seed}: {op} p={p} not minimal"
                    );
                }
            }
        }
    }
}
