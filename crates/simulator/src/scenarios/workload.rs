//! Workload shapes for the scenario matrix: offered-rate schedules over
//! the run, mirroring the paper's evaluation conditions (§5.2 constant
//! rates, §5.3 step changes, production-style diurnal curves, transient
//! spikes) plus hot-key skew (§4.2.3), which stresses the policy through
//! uneven per-instance load rather than through the rate, and three
//! production-style composites: sawtooth ramp cycles, flash crowds that
//! recede to an elevated plateau, and rate spikes correlated with a hot
//! key.

use crate::source::{RateSchedule, SourceSpec};
use rand::rngs::SmallRng;
use rand::Rng;

/// The family a generated workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadShape {
    /// Fixed offered rate for the whole run.
    Constant,
    /// One rate change partway through the run (up or down).
    Step,
    /// A day-curve approximated by a piecewise-constant sine.
    DiurnalSine,
    /// Short burst at an elevated rate, then back to base.
    Spike,
    /// Constant rate with a hot key concentrating load on one instance of a
    /// randomly chosen operator.
    KeySkew,
    /// Repeated ramp cycles: the rate climbs in small increments, drops
    /// sharply back to base, and climbs again (batch-ingest or compaction
    /// cycles); the final phase is back at the base rate.
    Sawtooth,
    /// A sudden jump to a multiple of the base rate that recedes to an
    /// elevated plateau instead of returning to base (a viral event whose
    /// audience partly sticks around) — the final phase is the plateau.
    FlashCrowd,
    /// A transient rate spike *correlated with* a hot key on one operator:
    /// the rate stress and the skew stress arrive together, the way real
    /// flash events concentrate on one entity.
    SpikeSkew,
    /// A sustained staircase climb to a multiple of the base rate that
    /// never recedes — rate-proportional operator state grows with every
    /// step, so a state budget that fit at the base rate stops fitting
    /// partway up (state-pressure families). Not part of
    /// [`WorkloadShape::ALL`]: the headline matrix mix is unchanged.
    StateRamp,
    /// A step to a persistently elevated rate: the state footprint jumps
    /// with it and *stays* high, unlike [`WorkloadShape::Spike`] whose
    /// burst recedes. Not part of [`WorkloadShape::ALL`].
    StateSpike,
}

impl WorkloadShape {
    /// All shapes, in matrix iteration order.
    pub const ALL: [WorkloadShape; 8] = [
        WorkloadShape::Constant,
        WorkloadShape::Step,
        WorkloadShape::DiurnalSine,
        WorkloadShape::Spike,
        WorkloadShape::KeySkew,
        WorkloadShape::Sawtooth,
        WorkloadShape::FlashCrowd,
        WorkloadShape::SpikeSkew,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadShape::Constant => "constant",
            WorkloadShape::Step => "step",
            WorkloadShape::DiurnalSine => "diurnal",
            WorkloadShape::Spike => "spike",
            WorkloadShape::KeySkew => "key_skew",
            WorkloadShape::Sawtooth => "sawtooth",
            WorkloadShape::FlashCrowd => "flash_crowd",
            WorkloadShape::SpikeSkew => "spike_skew",
            WorkloadShape::StateRamp => "state_ramp",
            WorkloadShape::StateSpike => "state_spike",
        }
    }

    /// Parses a short name as printed in reports.
    pub fn from_name(name: &str) -> Option<WorkloadShape> {
        match name {
            // The state shapes live outside `ALL` (they only appear in the
            // state-pressure scenario family) but still parse.
            "state_ramp" => Some(WorkloadShape::StateRamp),
            "state_spike" => Some(WorkloadShape::StateSpike),
            _ => WorkloadShape::ALL.into_iter().find(|s| s.name() == name),
        }
    }
}

/// A concrete workload: the source spec plus the facts the matrix needs to
/// score a run against it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The family this workload was drawn from.
    pub shape: WorkloadShape,
    /// The source specification (schedule + backlog semantics).
    pub spec: SourceSpec,
    /// The offered rate over the final phase of the run — the rate the
    /// final deployment must sustain.
    pub final_rate: f64,
    /// The peak offered rate anywhere in the schedule.
    pub peak_rate: f64,
    /// Start of the last phase: decisions after this point respond to the
    /// final rate (convergence is judged from here).
    pub last_change_ns: u64,
    /// Hot-key fraction to apply to one operator's profile (KeySkew only).
    pub skew_hot_fraction: Option<f64>,
}

impl Workload {
    /// Generates a workload of the given shape for a run of
    /// `run_duration_ns`, with base rates drawn from `rate_range`.
    pub fn generate(
        shape: WorkloadShape,
        run_duration_ns: u64,
        rate_range: (f64, f64),
        rng: &mut SmallRng,
    ) -> Workload {
        let (lo, hi) = rate_range;
        let base = rng.gen_range(lo..hi);
        match shape {
            WorkloadShape::Constant => Workload {
                shape,
                spec: SourceSpec::constant(base),
                final_rate: base,
                peak_rate: base,
                last_change_ns: 0,
                skew_hot_fraction: None,
            },
            WorkloadShape::Step => {
                // Change between 35% and 65% of the run, by a 1.5–3x factor
                // in either direction.
                let at = (run_duration_ns as f64 * rng.gen_range(0.35..0.65)) as u64;
                let factor = rng.gen_range(1.5..3.0);
                let second = if rng.gen_bool(0.5) {
                    (base * factor).min(hi * 3.0)
                } else {
                    base / factor
                };
                let schedule = RateSchedule::steps(vec![(0, base), (at, second)]);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: second,
                    peak_rate: base.max(second),
                    last_change_ns: at,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::DiurnalSine => {
                // One full sine period over the run, piecewise-constant in
                // 16 segments, amplitude 25–60% of the base rate. The final
                // segment is the rate convergence is judged against.
                let segments = 16u64;
                let amplitude = rng.gen_range(0.25..0.6) * base;
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                let seg_ns = (run_duration_ns / segments).max(1);
                let mut steps = Vec::with_capacity(segments as usize);
                let mut final_rate = base;
                for s in 0..segments {
                    let x = phase + std::f64::consts::TAU * (s as f64 + 0.5) / segments as f64;
                    let r = (base + amplitude * x.sin()).max(lo * 0.25);
                    steps.push((s * seg_ns, r));
                    final_rate = r;
                }
                let last_change_ns = (segments - 1) * seg_ns;
                let schedule = RateSchedule::steps(steps);
                let peak = schedule.peak_rate();
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate,
                    peak_rate: peak,
                    last_change_ns,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::Spike => {
                // A 2.5–4x burst covering ~12% of the run, ending before the
                // last third so the controller can settle back down.
                let start = (run_duration_ns as f64 * rng.gen_range(0.25..0.45)) as u64;
                let len = (run_duration_ns as f64 * 0.12) as u64;
                let burst = base * rng.gen_range(2.5..4.0);
                let schedule =
                    RateSchedule::steps(vec![(0, base), (start, burst), (start + len, base)]);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: base,
                    peak_rate: burst,
                    last_change_ns: start + len,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::KeySkew => {
                // Constant rate; the stress comes from a hot key that
                // concentrates 30–60% of one operator's input on instance 0.
                let hot = rng.gen_range(0.3..0.6);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base),
                    final_rate: base,
                    peak_rate: base,
                    last_change_ns: 0,
                    skew_hot_fraction: Some(hot),
                }
            }
            WorkloadShape::Sawtooth => {
                // 2–3 ramp cycles over the first ~70% of the run: each tooth
                // climbs from base towards `peak` in 4 increments and then
                // drops sharply back to base. The final drop is the last
                // change, so convergence is judged against the base rate
                // with plenty of tail left to settle.
                let teeth = rng.gen_range(2..=3u64);
                let ramp_steps = 4u64;
                let peak = base * rng.gen_range(1.8..2.8);
                let active_ns = (run_duration_ns as f64 * 0.7) as u64;
                let tooth_ns = (active_ns / teeth).max(1);
                let seg_ns = (tooth_ns / (ramp_steps + 1)).max(1);
                let mut steps = Vec::new();
                let mut last_change_ns = 0;
                for tooth in 0..teeth {
                    let t0 = tooth * tooth_ns;
                    for s in 0..ramp_steps {
                        let frac = s as f64 / (ramp_steps - 1) as f64;
                        steps.push((t0 + s * seg_ns, base + (peak - base) * frac));
                    }
                    // Sharp drop back to base.
                    last_change_ns = t0 + ramp_steps * seg_ns;
                    steps.push((last_change_ns, base));
                }
                let schedule = RateSchedule::steps(steps);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: base,
                    peak_rate: peak,
                    last_change_ns,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::FlashCrowd => {
                // Sudden 3–5x jump at 30–50% of the run, a short peak, then
                // recession to a plateau well above base (part of the crowd
                // stays). The plateau is the rate the final deployment must
                // sustain.
                let t0 = (run_duration_ns as f64 * rng.gen_range(0.3..0.5)) as u64;
                let factor = rng.gen_range(3.0..5.0);
                let peak = (base * factor).min(hi * 3.0);
                let peak_len = (run_duration_ns as f64 * rng.gen_range(0.08..0.12)) as u64;
                let plateau = base + (peak - base) * rng.gen_range(0.3..0.5);
                let last_change_ns = t0 + peak_len;
                let schedule =
                    RateSchedule::steps(vec![(0, base), (t0, peak), (last_change_ns, plateau)]);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: plateau,
                    peak_rate: peak,
                    last_change_ns,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::SpikeSkew => {
                // The Spike schedule with a correlated hot key: a 2.5–4x
                // burst ending before the last third, while 25–50% of one
                // operator's input concentrates on instance 0 for the whole
                // run. Tests the policy under both stresses at once.
                let start = (run_duration_ns as f64 * rng.gen_range(0.25..0.45)) as u64;
                let len = (run_duration_ns as f64 * 0.12) as u64;
                let burst = base * rng.gen_range(2.5..4.0);
                let hot = rng.gen_range(0.25..0.5);
                let schedule =
                    RateSchedule::steps(vec![(0, base), (start, burst), (start + len, base)]);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: base,
                    peak_rate: burst,
                    last_change_ns: start + len,
                    skew_hot_fraction: Some(hot),
                }
            }
            WorkloadShape::StateRamp => {
                // Staircase from base to 2–3x over the first ~60% of the
                // run, in 5 equal increments that never recede: each step
                // adds rate-proportional state, so a budget sized for the
                // base rate starts spilling partway up the stairs.
                let steps_n = 5u64;
                let top = base * rng.gen_range(2.0..3.0);
                let active_ns = (run_duration_ns as f64 * 0.6) as u64;
                let seg_ns = (active_ns / steps_n).max(1);
                let mut steps = Vec::with_capacity(steps_n as usize + 1);
                steps.push((0, base));
                let mut last_change_ns = 0;
                for s in 1..=steps_n {
                    let frac = s as f64 / steps_n as f64;
                    last_change_ns = s * seg_ns;
                    steps.push((last_change_ns, base + (top - base) * frac));
                }
                let schedule = RateSchedule::steps(steps);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: top,
                    peak_rate: top,
                    last_change_ns,
                    skew_hot_fraction: None,
                }
            }
            WorkloadShape::StateSpike => {
                // One step to a 2.5–4x rate at 30–50% of the run that
                // *stays*: the state footprint jumps with the rate and never
                // comes back down.
                let at = (run_duration_ns as f64 * rng.gen_range(0.3..0.5)) as u64;
                let high = (base * rng.gen_range(2.5..4.0)).min(hi * 3.0);
                let schedule = RateSchedule::steps(vec![(0, base), (at, high)]);
                Workload {
                    shape,
                    spec: SourceSpec::constant(base).with_schedule(schedule),
                    final_rate: high,
                    peak_rate: high,
                    last_change_ns: at,
                    skew_hot_fraction: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const RUN: u64 = 300_000_000_000;

    #[test]
    fn final_rate_matches_schedule_tail() {
        let mut rng = SmallRng::seed_from_u64(5);
        for shape in WorkloadShape::ALL {
            for _ in 0..50 {
                let w = Workload::generate(shape, RUN, (500.0, 5_000.0), &mut rng);
                let tail = w.spec.schedule.rate_at(RUN);
                assert!(
                    (tail - w.final_rate).abs() < 1e-9,
                    "{shape:?}: tail {tail} != final {}",
                    w.final_rate
                );
                assert!(w.peak_rate >= w.final_rate - 1e-9, "{shape:?}");
                assert!(w.last_change_ns < RUN, "{shape:?}");
                assert!((w.spec.schedule.peak_rate() - w.peak_rate).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn skew_only_on_skewed_shapes() {
        let mut rng = SmallRng::seed_from_u64(6);
        for shape in WorkloadShape::ALL {
            let w = Workload::generate(shape, RUN, (500.0, 5_000.0), &mut rng);
            let skewed = matches!(w.shape, WorkloadShape::KeySkew | WorkloadShape::SpikeSkew);
            assert_eq!(w.skew_hot_fraction.is_some(), skewed, "{shape:?}");
        }
    }

    #[test]
    fn sawtooth_ramps_and_resets() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..30 {
            let w = Workload::generate(WorkloadShape::Sawtooth, RUN, (500.0, 5_000.0), &mut rng);
            // Ends back at base with the peak strictly above it.
            assert!(w.peak_rate > w.final_rate * 1.5, "peak {}", w.peak_rate);
            // The final drop leaves at least the last 30% of the run to
            // settle.
            assert!(w.last_change_ns <= (RUN as f64 * 0.7) as u64 + 1);
            // At least two distinct climbs: the rate right before the last
            // drop is above base.
            let before_drop = w.spec.schedule.rate_at(w.last_change_ns - 1);
            assert!(before_drop > w.final_rate * 1.5, "no ramp before drop");
        }
    }

    #[test]
    fn flash_crowd_recedes_to_elevated_plateau() {
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..30 {
            let w = Workload::generate(WorkloadShape::FlashCrowd, RUN, (500.0, 5_000.0), &mut rng);
            let base = w.spec.schedule.rate_at(0);
            // Plateau strictly between base and peak: the crowd partly
            // stays.
            assert!(
                w.final_rate > base * 1.2,
                "plateau {} base {base}",
                w.final_rate
            );
            assert!(w.peak_rate > w.final_rate * 1.2, "peak not above plateau");
            assert!(w.last_change_ns < (RUN as f64 * 0.7) as u64);
        }
    }

    #[test]
    fn spike_skew_combines_burst_and_hot_key() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..30 {
            let w = Workload::generate(WorkloadShape::SpikeSkew, RUN, (500.0, 5_000.0), &mut rng);
            let hot = w.skew_hot_fraction.expect("correlated skew present");
            assert!((0.25..0.5).contains(&hot));
            // The burst is transient: the schedule returns to the base rate.
            assert!(w.peak_rate > w.final_rate * 2.0);
            assert!((w.spec.schedule.rate_at(RUN) - w.final_rate).abs() < 1e-9);
        }
    }

    #[test]
    fn state_shapes_stay_out_of_all_but_parse_and_hold_invariants() {
        assert_eq!(WorkloadShape::ALL.len(), 8, "headline mix must not grow");
        let mut rng = SmallRng::seed_from_u64(31);
        for shape in [WorkloadShape::StateRamp, WorkloadShape::StateSpike] {
            assert!(!WorkloadShape::ALL.contains(&shape));
            assert_eq!(WorkloadShape::from_name(shape.name()), Some(shape));
            for _ in 0..30 {
                let w = Workload::generate(shape, RUN, (500.0, 5_000.0), &mut rng);
                let base = w.spec.schedule.rate_at(0);
                // The elevated rate persists to the end of the run.
                assert!((w.spec.schedule.rate_at(RUN) - w.final_rate).abs() < 1e-9);
                assert!(w.final_rate > base * 1.5, "rate must stay elevated");
                assert!((w.peak_rate - w.final_rate).abs() < 1e-9);
                assert!(w.last_change_ns < (RUN as f64 * 0.65) as u64);
                assert!(w.skew_hot_fraction.is_none());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::generate(
            WorkloadShape::DiurnalSine,
            RUN,
            (500.0, 5_000.0),
            &mut SmallRng::seed_from_u64(9),
        );
        let b = Workload::generate(
            WorkloadShape::DiurnalSine,
            RUN,
            (500.0, 5_000.0),
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.final_rate, b.final_rate);
    }
}
