//! The scenario matrix: every generated scenario × every controller, run
//! through the closed loop and scored against the analytic ground truth.
//!
//! This is the substrate behind the repo's headline regression test: DS2
//! must converge within **three scaling steps** (paper §3.4, §5.4) on the
//! overwhelming majority of randomly generated scenarios, while the
//! baselines (Dhalion rules, CPU thresholds, M/M/c queueing) are scored on
//! the same runs for comparison. Outcomes also record SASO-style stability
//! (direction reversals, post-convergence actions) and final over/under
//! provisioning, which future accuracy and ablation experiments reuse.
//!
//! # Parallel sharded execution
//!
//! The matrix is embarrassingly parallel: each *cell* — one
//! `(scenario, controller)` pair — is a pure function of
//! `(base_seed + scenario_index, controller)`. [`ScenarioMatrix::run`]
//! fans the cells out over a work-queue of worker threads (the vendored
//! `crossbeam` channel/scope primitives) and merges outcomes back **by
//! cell index**, so the report is bit-identical to the sequential runner
//! regardless of thread count or scheduling order. Every cell regenerates
//! its scenario from its own seed and drives its own engine RNG — no state
//! is shared between cells beyond the immutable config.
//!
//! # Macro-tick fast-forward
//!
//! Cell engines run with steady-state fast-forward on by default
//! ([`MatrixConfig::fast_forward`], see [`crate::fastforward`]): provably
//! identical ticks between workload phases and control decisions are
//! replayed instead of re-executed, and queues run untagged (the report
//! never reads per-record latency). Outcomes are **bit-identical** with
//! fast-forward on or off — `tests/fastforward_equivalence.rs` and the CI
//! `--exact` report diff enforce it.

use std::collections::BTreeMap;

use ds2_baselines::{
    DhalionConfig, DhalionController, QueueingConfig, QueueingController, ThresholdConfig,
    ThresholdController,
};
use ds2_core::deployment::Deployment;
use ds2_core::manager::{ManagerConfig, ScalingManager};
use ds2_core::policy::{PolicyConfig, PolicyWorkspace};
use ds2_core::snapshot::MetricsSnapshot;

use crate::engine::{EngineConfig, FluidEngine, InstrumentationConfig};
use crate::faults::{FaultPlan, FaultProfile};
use crate::harness::{ClosedLoop, HarnessConfig, RunResult};

use super::generator::{GeneratorConfig, ScenarioSpec};

/// Reusable per-worker scratch for matrix cells: the policy-evaluation
/// workspace and the metrics-snapshot buffer a closed-loop run fills every
/// policy interval. One arena is allocated per worker thread (or one for
/// the sequential runner) and recycled across all of that worker's cells —
/// the buffers are cleared by epoch-stamping between windows, so thousands
/// of cells share a handful of allocations. Outcomes must be (and are,
/// guarded by tests) bit-identical to fresh-arena runs.
#[derive(Debug, Default)]
pub struct CellArena {
    /// Metrics-window buffer handed to [`ClosedLoop::run_reusing`].
    snapshot: MetricsSnapshot,
    /// DS2 policy evaluation workspace, threaded through the manager.
    policy_ws: PolicyWorkspace,
}

impl CellArena {
    /// Creates an empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The controller families the matrix can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// The DS2 Scaling Manager (Eq. 7–8 policy + §4.2 pragmatics).
    Ds2,
    /// Rule-based Dhalion resolver (Heron's state of the art).
    Dhalion,
    /// CPU-utilization threshold scaling.
    Threshold,
    /// M/M/c queueing-theory provisioning.
    Queueing,
    /// The DS2 manager with the robustness hardening switched on: snapshot
    /// validation with last-good repair, median outlier rejection, and
    /// verify-then-retry on unacknowledged rescales. Not in
    /// [`ControllerKind::ALL`] — the headline matrix stays vanilla; this
    /// kind is opted into by the robustness comparison runs.
    Ds2Hardened,
    /// The DS2 manager on the multi-dimensional resource model: key-class
    /// split detection plus the scenario's per-instance state budget. Not
    /// in [`ControllerKind::ALL`] — the headline matrix (and its golden
    /// report) stays parallelism-only; this kind is opted into by the
    /// multi-dim comparison runs.
    Ds2MultiDim,
}

impl ControllerKind {
    /// The headline controllers, DS2 first ([`ControllerKind::Ds2MultiDim`]
    /// is opt-in and deliberately absent).
    pub const ALL: [ControllerKind; 4] = [
        ControllerKind::Ds2,
        ControllerKind::Dhalion,
        ControllerKind::Threshold,
        ControllerKind::Queueing,
    ];

    /// Short name used in outcomes and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerKind::Ds2 => "ds2",
            ControllerKind::Dhalion => "dhalion",
            ControllerKind::Threshold => "threshold",
            ControllerKind::Queueing => "queueing",
            ControllerKind::Ds2Hardened => "ds2_hardened",
            ControllerKind::Ds2MultiDim => "ds2_multidim",
        }
    }
}

/// Matrix configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Number of scenarios (seeds `base_seed..base_seed + scenarios`).
    pub scenarios: usize,
    /// Base seed of the matrix; scenario `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Controllers to drive over every scenario.
    pub controllers: Vec<ControllerKind>,
    /// Scenario generation knobs.
    pub generator: GeneratorConfig,
    /// Metrics window / decision interval.
    pub policy_interval_ns: u64,
    /// Stop-the-world redeployment latency.
    pub reconfig_latency_ns: u64,
    /// Simulation step.
    pub tick_ns: u64,
    /// Parallelism cap handed to the DS2 policy.
    pub max_parallelism: usize,
    /// Worker threads for the sharded runner; `0` = one per available CPU.
    /// Results are bit-identical for every value (including `1`, the
    /// sequential path).
    pub threads: usize,
    /// Macro-tick fast-forward in the engine (default on). Reports are
    /// bit-identical either way — `false` is the `--exact` escape hatch
    /// that forces tick-by-tick execution, and CI diffs the two.
    pub fast_forward: bool,
    /// Fault-injection profile layered onto every cell
    /// ([`FaultProfile::None`] by default — the fault-free matrix is
    /// byte-identical to its pre-fault self). Fault draws are a pure
    /// function of `(scenario seed, profile)`, so faulted matrices keep
    /// every determinism guarantee (thread count, fast-forward, reruns).
    pub faults: FaultProfile,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            scenarios: 5_000,
            base_seed: 0xD52,
            controllers: ControllerKind::ALL.to_vec(),
            generator: GeneratorConfig::default(),
            policy_interval_ns: 10_000_000_000,
            reconfig_latency_ns: 10_000_000_000,
            tick_ns: 25_000_000,
            max_parallelism: 64,
            threads: 0,
            fast_forward: true,
            faults: FaultProfile::None,
        }
    }
}

/// The scored outcome of one scenario × controller run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Seed regenerating the scenario exactly.
    pub seed: u64,
    /// Controller that produced this outcome.
    pub controller: &'static str,
    /// Scenario family (`synthetic` or a `nexmark_q*` query).
    pub family: &'static str,
    /// Topology family of the scenario.
    pub topology: &'static str,
    /// Workload family of the scenario.
    pub workload: &'static str,
    /// Operators in the dataflow (including the source).
    pub operators: usize,
    /// Scaling commands applied over the whole run.
    pub decisions_total: usize,
    /// Scaling commands applied while responding to the final workload
    /// phase (at or after the last rate change).
    pub steps_final_phase: usize,
    /// `Some(steps_final_phase)` when the run converged; `None` otherwise.
    pub steps_to_convergence: Option<usize>,
    /// Whether the run settled: no scaling action over the last three
    /// policy intervals *and* the job kept up with the offered rate.
    pub converged: bool,
    /// Mean achieved/offered ratio over the final 30 timeline seconds.
    pub final_achieved_ratio: f64,
    /// Final non-source instances divided by the analytic optimum.
    pub overprovision_factor: f64,
    /// Non-source operators left below their optimal parallelism.
    pub underprovisioned_ops: usize,
    /// Per-operator scaling direction reversals (up→down or down→up), the
    /// SASO oscillation count.
    pub reversals: usize,
    /// Scaling commands issued after the deployment first reached its
    /// final configuration in the final workload phase (0 = no churn).
    pub decisions_after_convergence: usize,
    /// Total non-source instances at the end of the run.
    pub final_instances: usize,
    /// Analytic optimal non-source instances for the final rate.
    pub optimal_instances: usize,
    /// Non-source instance-hours held over the run (parallelism integrated
    /// over virtual time between scaling commands) — the parallelism
    /// dimension's resource bill.
    pub instance_hours: f64,
    /// Instance-hours held by operators carrying a finite per-instance
    /// state budget (memory-slot-hours) — the state dimension's resource
    /// bill. `0` for stateless scenarios.
    pub state_budget_hours: f64,
    /// The scenario's hot-class share (the largest `skew_hot_fraction`
    /// across profiles; `0` without skew), echoed into failure reports.
    pub hot_share: f64,
    /// Whether the controller ran on the multi-dimensional resource model
    /// (key-class splits + state budgets). Reports grow per-dimension
    /// columns only when at least one outcome sets this.
    pub multidim: bool,
    /// Whether the run had fault injection enabled. Reports grow the
    /// robustness columns only when at least one outcome sets this.
    pub faulted: bool,
    /// Metric windows the injector touched (dropped, noised, staled or
    /// straggled at least one sample). `0` without faults.
    pub fault_windows: u32,
    /// Decision windows the controller vetoed as degraded beyond repair
    /// (hardened DS2 only; vanilla controllers never veto).
    pub vetoed_windows: u32,
    /// Rescale retries the controller spent on unacknowledged deployments
    /// (hardened DS2 only).
    pub retries: u32,
}

/// All outcomes of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// One entry per scenario × controller, scenario-major order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Aggregated statistics for one controller across the matrix.
#[derive(Debug, Clone)]
pub struct ControllerSummary {
    /// Controller name.
    pub controller: &'static str,
    /// Runs scored.
    pub runs: usize,
    /// Runs that settled (see [`ScenarioOutcome::converged`]).
    pub converged: usize,
    /// Runs that settled within three scaling steps — the paper's claim.
    pub within_three_steps: usize,
    /// `within_three_steps / runs`.
    pub fraction_within_three: f64,
    /// Mean steps over converged runs.
    pub mean_steps: f64,
    /// Maximum final-phase steps over all runs.
    pub max_steps: usize,
    /// Mean overprovision factor over converged runs.
    pub mean_overprovision: f64,
    /// Runs leaving at least one operator under-provisioned.
    pub underprovisioned_runs: usize,
    /// Mean direction reversals per run (SASO stability; lower is better).
    pub mean_reversals: f64,
    /// Total scaling commands across all runs.
    pub total_decisions: usize,
    /// Mean non-source instance-hours per run (parallelism dimension).
    pub mean_instance_hours: f64,
    /// Mean budgeted-operator instance-hours per run (state dimension).
    pub mean_state_budget_hours: f64,
    /// Mean injector-touched metric windows per run (fault exposure; `0`
    /// on fault-free matrices).
    pub mean_fault_windows: f64,
    /// Total decision windows vetoed as degraded across all runs.
    pub total_vetoed: usize,
    /// Total rescale retries spent across all runs.
    pub total_retries: usize,
}

impl MatrixReport {
    /// Outcomes of one controller.
    pub fn for_controller<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a ScenarioOutcome> + 'a {
        self.outcomes.iter().filter(move |o| o.controller == name)
    }

    /// Seeds of runs (for `controller`) that failed the three-step claim,
    /// for reproduction.
    pub fn failing_seeds(&self, controller: &str) -> Vec<u64> {
        self.failing_runs(controller).map(|o| o.seed).collect()
    }

    /// Runs (for `controller`) that failed the three-step claim.
    pub fn failing_runs<'a>(
        &'a self,
        controller: &'a str,
    ) -> impl Iterator<Item = &'a ScenarioOutcome> + 'a {
        self.for_controller(controller)
            .filter(|o| !o.converged || o.steps_final_phase > 3)
    }

    /// Human-readable reproduction lines for every run that failed the
    /// three-step claim: the scenario's seed *and* its family/topology/
    /// workload, so a matrix regression is reproducible from the test
    /// output alone — `--seed <seed> --scenarios 1 --family <family>`
    /// regenerates the cell bit-exactly under the original run's workload
    /// list and duration (`DS2_MATRIX_WORKLOADS`/`DS2_MATRIX_DURATION_S`),
    /// because scenario bodies generate from the `(seed, family)` pair.
    pub fn describe_failures(&self, controller: &str) -> String {
        let mut out = String::new();
        for o in self.failing_runs(controller) {
            out.push_str(&format!(
                "  seed={} family={} topology={} workload={} steps={} converged={} ratio={:.3} hot_share={:.2}\n",
                o.seed,
                o.family,
                o.topology,
                o.workload,
                o.steps_final_phase,
                o.converged,
                o.final_achieved_ratio,
                o.hot_share,
            ));
        }
        if out.is_empty() {
            out.push_str("  (none)\n");
        }
        out
    }

    /// The distinct scenario families in this report, in first-appearance
    /// order (deterministic: outcomes are in matrix order).
    pub fn families(&self) -> Vec<&'static str> {
        let mut families = Vec::new();
        for o in &self.outcomes {
            if !families.contains(&o.family) {
                families.push(o.family);
            }
        }
        families
    }

    /// Aggregates one controller's outcomes across the whole matrix.
    pub fn summary(&self, kind: ControllerKind) -> ControllerSummary {
        self.summarize(kind, None)
    }

    /// Aggregates one controller's outcomes within one scenario family.
    /// The per-family summaries partition the overall [`summary`]
    /// (`crates/simulator/tests/properties.rs` proves counts and score
    /// sums add up for arbitrary family mixes).
    ///
    /// [`summary`]: MatrixReport::summary
    pub fn summary_for_family(&self, kind: ControllerKind, family: &str) -> ControllerSummary {
        self.summarize(kind, Some(family))
    }

    fn summarize(&self, kind: ControllerKind, family: Option<&str>) -> ControllerSummary {
        let name = kind.name();
        let outcomes: Vec<&ScenarioOutcome> = self
            .for_controller(name)
            .filter(|o| family.is_none_or(|f| o.family == f))
            .collect();
        let runs = outcomes.len();
        let converged_runs: Vec<&&ScenarioOutcome> =
            outcomes.iter().filter(|o| o.converged).collect();
        let converged = converged_runs.len();
        let within = outcomes
            .iter()
            .filter(|o| o.converged && o.steps_final_phase <= 3)
            .count();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let steps: Vec<f64> = converged_runs
            .iter()
            .map(|o| o.steps_final_phase as f64)
            .collect();
        let over: Vec<f64> = converged_runs
            .iter()
            .map(|o| o.overprovision_factor)
            .collect();
        let reversals: Vec<f64> = outcomes.iter().map(|o| o.reversals as f64).collect();
        let instance_hours: Vec<f64> = outcomes.iter().map(|o| o.instance_hours).collect();
        let state_hours: Vec<f64> = outcomes.iter().map(|o| o.state_budget_hours).collect();
        ControllerSummary {
            controller: name,
            runs,
            converged,
            within_three_steps: within,
            fraction_within_three: if runs == 0 {
                0.0
            } else {
                within as f64 / runs as f64
            },
            mean_steps: mean(&steps),
            max_steps: outcomes
                .iter()
                .map(|o| o.steps_final_phase)
                .max()
                .unwrap_or(0),
            mean_overprovision: mean(&over),
            underprovisioned_runs: outcomes
                .iter()
                .filter(|o| o.underprovisioned_ops > 0)
                .count(),
            mean_reversals: mean(&reversals),
            total_decisions: outcomes.iter().map(|o| o.decisions_total).sum(),
            mean_instance_hours: mean(&instance_hours),
            mean_state_budget_hours: mean(&state_hours),
            mean_fault_windows: mean(
                &outcomes
                    .iter()
                    .map(|o| o.fault_windows as f64)
                    .collect::<Vec<f64>>(),
            ),
            total_vetoed: outcomes.iter().map(|o| o.vetoed_windows as usize).sum(),
            total_retries: outcomes.iter().map(|o| o.retries as usize).sum(),
        }
    }

    /// Whether any outcome ran on the multi-dimensional resource model —
    /// when true, the rendered tables grow the per-dimension resource
    /// columns (`inst_hrs`, `state_hrs`). Parallelism-only reports render
    /// byte-identically to the pre-multi-dim format.
    pub fn is_multidim(&self) -> bool {
        self.outcomes.iter().any(|o| o.multidim)
    }

    /// Whether any outcome ran with fault injection — when true, the
    /// rendered tables grow the robustness columns (`faultw`, `vetoed`,
    /// `retries`). Fault-free reports render byte-identically to the
    /// pre-fault format.
    pub fn is_faulted(&self) -> bool {
        self.outcomes.iter().any(|o| o.faulted)
    }

    /// Renders a per-controller comparison table.
    ///
    /// Multi-dimensional reports (see [`is_multidim`](Self::is_multidim))
    /// append two resource columns: `inst_hrs` — mean non-source
    /// instance-hours per run (the parallelism bill) — and `state_hrs` —
    /// mean instance-hours of budgeted stateful operators (the state
    /// bill).
    pub fn render(&self, controllers: &[ControllerKind]) -> String {
        let multidim = self.is_multidim();
        let faulted = self.is_faulted();
        // Faulted reports widen the name column for `ds2_hardened`;
        // fault-free reports keep the classic widths byte-for-byte.
        let name_w = if faulted { 12 } else { 10 };
        let mut out = format!(
            "{:<w$}  runs  conv  <=3steps  frac    mean_steps  max  over    under  reversals  decisions",
            "controller",
            w = name_w,
        );
        if multidim {
            out.push_str("  inst_hrs  state_hrs");
        }
        if faulted {
            out.push_str("  faultw  vetoed  retries");
        }
        out.push('\n');
        for &kind in controllers {
            let s = self.summary(kind);
            out.push_str(&format!(
                "{:<w$}  {:>4}  {:>4}  {:>8}  {:>5.2}  {:>10.2}  {:>3}  {:>6.2}  {:>5}  {:>9.2}  {:>9}",
                s.controller,
                s.runs,
                s.converged,
                s.within_three_steps,
                s.fraction_within_three,
                s.mean_steps,
                s.max_steps,
                s.mean_overprovision,
                s.underprovisioned_runs,
                s.mean_reversals,
                s.total_decisions,
                w = name_w,
            ));
            if multidim {
                out.push_str(&format!(
                    "  {:>8.3}  {:>9.3}",
                    s.mean_instance_hours, s.mean_state_budget_hours,
                ));
            }
            if faulted {
                out.push_str(&format!(
                    "  {:>6.1}  {:>6}  {:>7}",
                    s.mean_fault_windows, s.total_vetoed, s.total_retries,
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the per-family breakdown: one row per scenario family ×
    /// controller, in first-appearance family order. Deterministic for any
    /// thread count (the report is). Multi-dimensional reports grow the
    /// same per-dimension resource columns as [`render`](Self::render).
    pub fn render_families(&self, controllers: &[ControllerKind]) -> String {
        let multidim = self.is_multidim();
        let faulted = self.is_faulted();
        let name_w = if faulted { 12 } else { 10 };
        let mut out = format!(
            "family       {:<w$}  runs  conv  <=3steps  frac    mean_steps  max  over    under  reversals  decisions",
            "controller",
            w = name_w,
        );
        if multidim {
            out.push_str("  inst_hrs  state_hrs");
        }
        if faulted {
            out.push_str("  faultw  vetoed  retries");
        }
        out.push('\n');
        for family in self.families() {
            for &kind in controllers {
                let s = self.summary_for_family(kind, family);
                out.push_str(&format!(
                    "{:<11}  {:<w$}  {:>4}  {:>4}  {:>8}  {:>5.2}  {:>10.2}  {:>3}  {:>6.2}  {:>5}  {:>9.2}  {:>9}",
                    family,
                    s.controller,
                    s.runs,
                    s.converged,
                    s.within_three_steps,
                    s.fraction_within_three,
                    s.mean_steps,
                    s.max_steps,
                    s.mean_overprovision,
                    s.underprovisioned_runs,
                    s.mean_reversals,
                    s.total_decisions,
                    w = name_w,
                ));
                if multidim {
                    out.push_str(&format!(
                        "  {:>8.3}  {:>9.3}",
                        s.mean_instance_hours, s.mean_state_budget_hours,
                    ));
                }
                if faulted {
                    out.push_str(&format!(
                        "  {:>6.1}  {:>6}  {:>7}",
                        s.mean_fault_windows, s.total_vetoed, s.total_retries,
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Drives the scenario × controller cross-product.
#[derive(Debug, Clone, Default)]
pub struct ScenarioMatrix {
    config: MatrixConfig,
}

impl ScenarioMatrix {
    /// Creates a matrix runner.
    pub fn new(config: MatrixConfig) -> Self {
        Self { config }
    }

    /// The matrix configuration.
    pub fn config(&self) -> &MatrixConfig {
        &self.config
    }

    /// The number of worker threads the runner will actually use.
    pub fn effective_threads(&self) -> usize {
        let cells = self.config.scenarios * self.config.controllers.len();
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        threads.clamp(1, cells.max(1))
    }

    /// Runs the full cross-product and scores every run.
    ///
    /// Cells are sharded over [`effective_threads`](Self::effective_threads)
    /// workers; the report is bit-identical for any thread count.
    pub fn run(&self) -> MatrixReport {
        self.run_with(|_, _| {})
    }

    /// Like [`run`](Self::run), invoking `observer` with each scenario and
    /// its freshly scored outcome (progress reporting, per-run logging).
    ///
    /// With one worker thread the observer sees cells in matrix order
    /// (scenario-major); with several it sees them in completion order. The
    /// returned report is ordered and bit-identical either way.
    pub fn run_with<F>(&self, mut observer: F) -> MatrixReport
    where
        F: FnMut(&ScenarioSpec, &ScenarioOutcome),
    {
        let n_controllers = self.config.controllers.len();
        let cells = self.config.scenarios * n_controllers;
        let threads = self.effective_threads();

        if threads <= 1 || cells <= 1 {
            // Sequential path: generate each scenario once and drive every
            // controller over it in matrix order, recycling one arena
            // across all cells.
            let mut arena = CellArena::new();
            let mut outcomes = Vec::with_capacity(cells);
            for i in 0..self.config.scenarios {
                let seed = self.config.base_seed + i as u64;
                let spec = ScenarioSpec::generate(seed, &self.config.generator);
                for &kind in &self.config.controllers {
                    let outcome = self.run_one_with(&spec, kind, &mut arena);
                    observer(&spec, &outcome);
                    outcomes.push(outcome);
                }
            }
            return MatrixReport { outcomes };
        }

        // Parallel path: a bounded work queue of cell indices fanned out
        // over scoped workers. Each worker regenerates its cell's scenario
        // from `(base_seed, scenario_index)` — generation is a pure function
        // of the seed, so no cross-cell state exists and the outcome of a
        // cell is independent of which worker ran it and when. Outcomes are
        // merged into their cell's slot, reproducing matrix order exactly.
        let mut slots: Vec<Option<ScenarioOutcome>> = Vec::new();
        slots.resize_with(cells, || None);
        crossbeam::thread::scope(|scope| {
            let (work_tx, work_rx) = crossbeam::channel::unbounded::<usize>();
            let (result_tx, result_rx) =
                crossbeam::channel::bounded::<(usize, ScenarioSpec, ScenarioOutcome)>(threads * 2);
            for cell in 0..cells {
                work_tx.send(cell).expect("queue open");
            }
            drop(work_tx);

            for _ in 0..threads {
                let work_rx = work_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    // One arena per worker, recycled across all of its cells.
                    let mut arena = CellArena::new();
                    while let Ok(cell) = work_rx.recv() {
                        let scenario_index = cell / n_controllers;
                        let kind = self.config.controllers[cell % n_controllers];
                        let seed = self.config.base_seed + scenario_index as u64;
                        let spec = ScenarioSpec::generate(seed, &self.config.generator);
                        let outcome = self.run_one_with(&spec, kind, &mut arena);
                        if result_tx.send((cell, spec, outcome)).is_err() {
                            // Collector gone (panic unwinding); stop early.
                            break;
                        }
                    }
                });
            }
            drop(result_tx);

            while let Ok((cell, spec, outcome)) = result_rx.recv() {
                observer(&spec, &outcome);
                slots[cell] = Some(outcome);
            }
        })
        .expect("matrix worker panicked");

        MatrixReport {
            outcomes: slots
                .into_iter()
                .map(|s| s.expect("every cell ran exactly once"))
                .collect(),
        }
    }

    /// Runs one scenario under one controller and scores the result, with a
    /// fresh arena (reproduction / one-off use).
    pub fn run_one(&self, spec: &ScenarioSpec, kind: ControllerKind) -> ScenarioOutcome {
        self.run_one_with(spec, kind, &mut CellArena::new())
    }

    /// Runs one scenario under one controller using `arena`'s recycled
    /// buffers, and scores the result. Outcomes are independent of the
    /// arena's history (buffers are fully cleared between uses); the
    /// `arena_reuse_is_bit_identical` test guards that.
    pub fn run_one_with(
        &self,
        spec: &ScenarioSpec,
        kind: ControllerKind,
        arena: &mut CellArena,
    ) -> ScenarioOutcome {
        let result = self.run_one_raw(spec, kind, arena);
        self.score(spec, kind, &result)
    }

    /// Runs one scenario under one controller and returns the raw
    /// [`RunResult`] (timeline, decisions, latency, epochs) without
    /// scoring it — the substrate of the fast-forward equivalence tests,
    /// which compare whole results bitwise between engine modes.
    pub fn run_one_raw(
        &self,
        spec: &ScenarioSpec,
        kind: ControllerKind,
        arena: &mut CellArena,
    ) -> RunResult {
        let engine = self.build_engine(spec);
        let harness = HarnessConfig {
            policy_interval_ns: self.config.policy_interval_ns,
            run_duration_ns: self.config.generator.run_duration_ns,
            timeline_resolution_ns: 1_000_000_000,
            timely: false,
            // Fault draws are keyed on the scenario seed alone, so every
            // controller in a cell row faces the *same* fault sequence.
            faults: FaultPlan::new(spec.seed, self.config.faults),
        };
        let graph = spec.topology.graph.clone();
        match kind {
            ControllerKind::Ds2 | ControllerKind::Ds2Hardened | ControllerKind::Ds2MultiDim => {
                let config = match kind {
                    ControllerKind::Ds2MultiDim => self.ds2_multidim_config(spec),
                    ControllerKind::Ds2Hardened => self.ds2_hardened_config(),
                    _ => self.ds2_config(),
                };
                // Thread the arena's policy workspace through the manager
                // and recover it for the worker's next cell.
                let manager = ScalingManager::with_workspace(
                    graph,
                    config,
                    std::mem::take(&mut arena.policy_ws),
                );
                let mut the_loop = ClosedLoop::new(engine, manager, harness);
                let result = the_loop.run_reusing(&mut arena.snapshot);
                arena.policy_ws = the_loop.into_controller().take_workspace();
                result
            }
            ControllerKind::Dhalion => {
                // All controllers share the matrix's parallelism budget so
                // no baseline can blow up the simulation's instance count.
                let c = DhalionController::new(
                    graph,
                    DhalionConfig {
                        max_parallelism: self.config.max_parallelism,
                        ..Default::default()
                    },
                );
                ClosedLoop::new(engine, c, harness).run_reusing(&mut arena.snapshot)
            }
            ControllerKind::Threshold => {
                let c = ThresholdController::new(
                    graph,
                    ThresholdConfig {
                        max_parallelism: self.config.max_parallelism,
                        ..Default::default()
                    },
                );
                ClosedLoop::new(engine, c, harness).run_reusing(&mut arena.snapshot)
            }
            ControllerKind::Queueing => {
                let c = QueueingController::new(
                    graph,
                    QueueingConfig {
                        max_parallelism: self.config.max_parallelism,
                        ..Default::default()
                    },
                );
                ClosedLoop::new(engine, c, harness).run_reusing(&mut arena.snapshot)
            }
        }
    }

    /// The DS2 manager configuration the matrix uses (the §5.4 convergence
    /// settings, adapted to the matrix interval).
    pub fn ds2_config(&self) -> ManagerConfig {
        ManagerConfig {
            policy_interval_ns: self.config.policy_interval_ns,
            warmup_intervals: 1,
            activation_intervals: 1,
            target_rate_ratio: 1.0,
            min_change: 1,
            policy: PolicyConfig {
                max_parallelism: Some(self.config.max_parallelism),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// The hardened DS2 configuration: [`ds2_config`] plus the robustness
    /// knobs — snapshot validation with last-good repair, median outlier
    /// rejection, and a one-interval rescale timeout with verify-then-retry.
    /// On a fault-free matrix the hardened manager decides identically to
    /// vanilla (the knobs only change behavior when telemetry is invalid or
    /// a rescale goes unacknowledged).
    ///
    /// [`ds2_config`]: ScenarioMatrix::ds2_config
    pub fn ds2_hardened_config(&self) -> ManagerConfig {
        let mut config = self.ds2_config();
        config.validate_snapshots = true;
        config.outlier_rejection = true;
        config.rescale_timeout_intervals = 1;
        config.max_rescale_retries = 3;
        config
    }

    /// The multi-dimensional DS2 configuration: [`ds2_config`] plus
    /// key-class split detection and the scenario's per-instance state
    /// budget (the machine limit is knowable configuration; *when* state
    /// crosses it is what the controller must detect from the reported
    /// state sizes).
    ///
    /// [`ds2_config`]: ScenarioMatrix::ds2_config
    pub fn ds2_multidim_config(&self, spec: &ScenarioSpec) -> ManagerConfig {
        let mut config = self.ds2_config();
        config.policy.detect_splits = true;
        if let Some(budget) = spec.state_budget() {
            config.state_budget_per_instance = budget;
        }
        config
    }

    fn build_engine(&self, spec: &ScenarioSpec) -> FluidEngine {
        FluidEngine::new(
            spec.topology.graph.clone(),
            spec.profiles.clone(),
            spec.sources.clone(),
            spec.initial.clone(),
            EngineConfig {
                tick_ns: self.config.tick_ns,
                reconfig_latency_ns: self.config.reconfig_latency_ns,
                seed: spec.seed,
                instrumentation: InstrumentationConfig::disabled(),
                fast_forward: self.config.fast_forward,
                // The matrix report never reads per-record latency or
                // epochs, so the engines run untagged — queue dynamics are
                // identical, and the span/latency bookkeeping disappears
                // from the hot path.
                track_record_latency: false,
                ..Default::default()
            },
        )
    }

    fn score(
        &self,
        spec: &ScenarioSpec,
        kind: ControllerKind,
        result: &RunResult,
    ) -> ScenarioOutcome {
        let graph = &spec.topology.graph;
        let optimal = spec.optimal_parallelism();
        let run_end = self.config.generator.run_duration_ns + self.config.policy_interval_ns;

        // Decisions responding to the final workload phase.
        let final_phase: Vec<_> = result
            .decisions
            .iter()
            .filter(|d| d.at_ns >= spec.workload.last_change_ns)
            .collect();
        let steps_final_phase = final_phase.len();

        // Settled: no action over the last three policy intervals, and the
        // job keeps up with the offered rate at the end.
        let settle_ns = 3 * self.config.policy_interval_ns;
        let quiet_tail = result
            .last_decision_ns()
            .map(|t| t + settle_ns <= run_end)
            .unwrap_or(true);
        let final_achieved_ratio = result.final_achieved_ratio(30);
        let converged = quiet_tail && final_achieved_ratio >= 0.9;

        // Provisioning score against the analytic optimum.
        let final_deployment = &result.final_deployment;
        let mut final_instances = 0usize;
        let mut optimal_instances = 0usize;
        let mut underprovisioned_ops = 0usize;
        for op in graph.operators() {
            if graph.is_source(op) {
                continue;
            }
            let p = final_deployment.parallelism(op);
            let o = optimal[&op];
            final_instances += p;
            optimal_instances += o;
            if p < o {
                underprovisioned_ops += 1;
            }
        }

        // SASO stability: per-operator direction reversals across the whole
        // decision sequence.
        let mut reversals = 0usize;
        for op in graph.operators() {
            if graph.is_source(op) {
                continue;
            }
            let mut last = spec.initial.parallelism(op);
            let mut last_dir = 0i8;
            for d in &result.decisions {
                let p = d.plan.parallelism(op);
                if p == last {
                    continue;
                }
                let dir = if p > last { 1 } else { -1 };
                if last_dir != 0 && dir != last_dir {
                    reversals += 1;
                }
                last_dir = dir;
                last = p;
            }
        }

        // Churn after first reaching the final configuration.
        let decisions_after_convergence = final_phase
            .iter()
            .position(|d| plans_equal_non_source(graph, &d.plan, final_deployment))
            .map(|i| steps_final_phase - i - 1)
            .unwrap_or(0);

        // Per-dimension resource bills: parallelism integrated over virtual
        // time between scaling commands (every controller is billed the
        // same way, so parallelism-only and multi-dim runs compare on one
        // scale). Budgeted stateful operators additionally bill their
        // memory slots.
        let budgeted: Vec<_> = graph
            .operators()
            .filter(|&op| {
                !graph.is_source(op)
                    && spec.profiles.get(&op).is_some_and(|p| {
                        p.state.as_ref().is_some_and(|s| {
                            s.budget_per_instance_bytes.is_finite()
                                && s.budget_per_instance_bytes > 0.0
                        })
                    })
            })
            .collect();
        let count = |dep: &Deployment| -> (usize, usize) {
            let total = graph
                .operators()
                .filter(|&op| !graph.is_source(op))
                .map(|op| dep.parallelism(op))
                .sum();
            let state = budgeted.iter().map(|&op| dep.parallelism(op)).sum();
            (total, state)
        };
        const NS_PER_HOUR: f64 = 3.6e12;
        let mut instance_hours = 0.0;
        let mut state_budget_hours = 0.0;
        let (mut cur_total, mut cur_state) = count(&spec.initial);
        let mut t_ns = 0u64;
        for d in &result.decisions {
            let at = d.at_ns.min(run_end);
            let seg = at.saturating_sub(t_ns) as f64 / NS_PER_HOUR;
            instance_hours += cur_total as f64 * seg;
            state_budget_hours += cur_state as f64 * seg;
            (cur_total, cur_state) = count(&d.plan);
            t_ns = at.max(t_ns);
        }
        let seg = run_end.saturating_sub(t_ns) as f64 / NS_PER_HOUR;
        instance_hours += cur_total as f64 * seg;
        state_budget_hours += cur_state as f64 * seg;

        let hot_share = spec
            .profiles
            .values()
            .filter_map(|p| p.skew_hot_fraction)
            .fold(0.0, f64::max);

        ScenarioOutcome {
            seed: spec.seed,
            controller: kind.name(),
            family: spec.family.name(),
            topology: spec.topology.shape.name(),
            workload: spec.workload.shape.name(),
            operators: graph.len(),
            decisions_total: result.decisions.len(),
            steps_final_phase,
            steps_to_convergence: converged.then_some(steps_final_phase),
            converged,
            final_achieved_ratio,
            overprovision_factor: if optimal_instances == 0 {
                1.0
            } else {
                final_instances as f64 / optimal_instances as f64
            },
            underprovisioned_ops,
            reversals,
            decisions_after_convergence,
            final_instances,
            optimal_instances,
            instance_hours,
            state_budget_hours,
            hot_share,
            multidim: kind == ControllerKind::Ds2MultiDim,
            faulted: !self.config.faults.is_none(),
            fault_windows: result.faults.faulted_windows,
            vetoed_windows: result.controller_faults.vetoed_windows,
            retries: result.controller_faults.retries,
        }
    }
}

/// Compares two plans on non-source operators only (sources are never
/// rescaled by the harness).
fn plans_equal_non_source(
    graph: &ds2_core::graph::LogicalGraph,
    a: &Deployment,
    b: &Deployment,
) -> bool {
    graph
        .operators()
        .filter(|&op| !graph.is_source(op))
        .all(|op| a.parallelism(op) == b.parallelism(op))
}

/// Convenience: per-operator parallelism changes of a run as a map, for
/// rendering sequences like Table 4's `12→16`.
pub fn parallelism_sequences(
    graph: &ds2_core::graph::LogicalGraph,
    initial: &Deployment,
    result: &RunResult,
) -> BTreeMap<ds2_core::graph::OperatorId, Vec<usize>> {
    graph
        .operators()
        .filter(|&op| !graph.is_source(op))
        .map(|op| (op, result.parallelism_steps(op, initial.parallelism(op))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::workload::WorkloadShape;
    use crate::scenarios::TopologyShape;

    fn small_config(scenarios: usize) -> MatrixConfig {
        MatrixConfig {
            scenarios,
            generator: GeneratorConfig {
                operators: (2, 6),
                run_duration_ns: 180_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn ds2_converges_on_a_small_matrix() {
        let mut cfg = small_config(6);
        cfg.controllers = vec![ControllerKind::Ds2];
        // Rate-reachable workloads only: a hot key can make the optimum
        // non-existent and a diurnal curve keeps moving the target, so
        // those shapes are exercised separately without a convergence bar.
        cfg.generator.workloads = vec![
            WorkloadShape::Constant,
            WorkloadShape::Step,
            WorkloadShape::Spike,
        ];
        let report = ScenarioMatrix::new(cfg).run();
        assert_eq!(report.outcomes.len(), 6);
        let s = report.summary(ControllerKind::Ds2);
        assert!(
            s.converged >= 5,
            "DS2 should settle on nearly all small scenarios: {s:?}\nfailing: {:?}",
            report.failing_seeds("ds2")
        );
    }

    #[test]
    fn matrix_runs_every_controller() {
        let mut cfg = small_config(2);
        cfg.controllers = ControllerKind::ALL.to_vec();
        let report = ScenarioMatrix::new(cfg).run();
        assert_eq!(report.outcomes.len(), 8);
        for kind in ControllerKind::ALL {
            assert_eq!(report.summary(kind).runs, 2, "{kind:?}");
        }
        // The table renders without panicking and mentions every controller.
        let table = report.render(&ControllerKind::ALL);
        for kind in ControllerKind::ALL {
            assert!(table.contains(kind.name()));
        }
    }

    #[test]
    fn matrix_is_deterministic() {
        let mut cfg = small_config(3);
        cfg.controllers = vec![ControllerKind::Ds2, ControllerKind::Threshold];
        let a = ScenarioMatrix::new(cfg.clone()).run();
        let b = ScenarioMatrix::new(cfg).run();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.controller, y.controller);
            assert_eq!(x.decisions_total, y.decisions_total);
            assert_eq!(x.steps_final_phase, y.steps_final_phase);
            assert_eq!(x.converged, y.converged);
            assert_eq!(x.final_instances, y.final_instances);
            assert!((x.final_achieved_ratio - y.final_achieved_ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_outcomes_equal_sequential_bit_for_bit() {
        // The determinism guard of the sharded runner: the same config run
        // sequentially and with several workers must produce *identical*
        // `ScenarioOutcome`s in identical order.
        let mut cfg = small_config(4);
        cfg.controllers = vec![ControllerKind::Ds2, ControllerKind::Dhalion];
        cfg.threads = 1;
        let sequential = ScenarioMatrix::new(cfg.clone()).run();
        for threads in [2, 3, 8] {
            cfg.threads = threads;
            let parallel = ScenarioMatrix::new(cfg.clone()).run();
            assert_eq!(
                sequential.outcomes, parallel.outcomes,
                "threads={threads} diverged from sequential"
            );
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        // The cross-cell leak guard: driving many different cells through
        // ONE dirty arena must produce exactly the outcomes of fresh arenas
        // — reused snapshot buffers and policy workspaces carry no state
        // between cells.
        let cfg = MatrixConfig {
            scenarios: 5,
            generator: GeneratorConfig {
                operators: (2, 10),
                run_duration_ns: 150_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let matrix = ScenarioMatrix::new(cfg.clone());
        let mut shared = CellArena::new();
        for i in 0..cfg.scenarios {
            let spec = ScenarioSpec::generate(cfg.base_seed + i as u64, &cfg.generator);
            for kind in [ControllerKind::Ds2, ControllerKind::Dhalion] {
                let fresh = matrix.run_one_with(&spec, kind, &mut CellArena::new());
                let reused = matrix.run_one_with(&spec, kind, &mut shared);
                assert_eq!(fresh, reused, "seed {} {kind:?}", spec.seed);
            }
        }
    }

    #[test]
    fn parallel_observer_sees_every_cell_once() {
        let mut cfg = small_config(5);
        cfg.controllers = vec![ControllerKind::Ds2];
        cfg.threads = 4;
        let mut seen = Vec::new();
        let report = ScenarioMatrix::new(cfg.clone()).run_with(|spec, o| {
            assert_eq!(spec.seed, o.seed);
            seen.push(o.seed);
        });
        seen.sort_unstable();
        let expected: Vec<u64> = (0..5).map(|i| cfg.base_seed + i).collect();
        assert_eq!(seen, expected, "observer missed or duplicated cells");
        assert_eq!(report.outcomes.len(), 5);
        // Report stays in matrix order regardless of completion order.
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.seed, cfg.base_seed + i as u64);
        }
    }

    #[test]
    fn effective_threads_bounds() {
        let mut cfg = small_config(2);
        cfg.controllers = vec![ControllerKind::Ds2];
        cfg.threads = 64;
        // Never more workers than cells.
        assert_eq!(ScenarioMatrix::new(cfg.clone()).effective_threads(), 2);
        cfg.threads = 1;
        assert_eq!(ScenarioMatrix::new(cfg.clone()).effective_threads(), 1);
        cfg.threads = 0;
        assert!(ScenarioMatrix::new(cfg).effective_threads() >= 1);
    }

    #[test]
    fn new_families_run_through_the_matrix() {
        // Sawtooth / flash-crowd / spike+skew workloads and multi-source
        // topologies flow through generation, simulation and scoring.
        let cfg = MatrixConfig {
            scenarios: 8,
            controllers: vec![ControllerKind::Ds2],
            threads: 2,
            generator: GeneratorConfig {
                workloads: vec![
                    WorkloadShape::Sawtooth,
                    WorkloadShape::FlashCrowd,
                    WorkloadShape::SpikeSkew,
                ],
                shapes: vec![TopologyShape::MultiSource, TopologyShape::Chain],
                operators: (3, 8),
                run_duration_ns: 180_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = ScenarioMatrix::new(cfg).run();
        assert_eq!(report.outcomes.len(), 8);
        for o in &report.outcomes {
            assert!(o.operators >= 3);
            assert!(
                o.optimal_instances > 0,
                "seed {}: no analytic optimum",
                o.seed
            );
        }
    }

    #[test]
    fn multidim_ds2_beats_parallelism_only_on_stress_families() {
        // The refactor's claim in miniature: on hot-key and state-pressure
        // scenarios the multi-dimensional DS2 converges within the paper's
        // three steps strictly more often than parallelism-only DS2, and
        // the report grows the per-dimension resource columns.
        use crate::scenarios::nexmark::ScenarioFamily;
        for family in [ScenarioFamily::HotKey, ScenarioFamily::StatePressure] {
            let cfg = MatrixConfig {
                scenarios: 8,
                controllers: vec![ControllerKind::Ds2, ControllerKind::Ds2MultiDim],
                threads: 2,
                generator: GeneratorConfig {
                    families: vec![family],
                    operators: (2, 6),
                    run_duration_ns: 180_000_000_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let report = ScenarioMatrix::new(cfg).run();
            assert!(report.is_multidim());
            let ds2 = report.summary(ControllerKind::Ds2);
            let multi = report.summary(ControllerKind::Ds2MultiDim);
            assert!(
                multi.within_three_steps > ds2.within_three_steps,
                "{family:?}: multidim {multi:?} not better than {ds2:?}\n{}",
                report.describe_failures("ds2_multidim"),
            );
            let table = report.render(&[ControllerKind::Ds2, ControllerKind::Ds2MultiDim]);
            assert!(table.contains("inst_hrs") && table.contains("state_hrs"));
            assert!(table.contains("ds2_multidim"));
        }
    }

    #[test]
    fn parallelism_only_reports_keep_the_classic_columns() {
        let mut cfg = small_config(2);
        cfg.controllers = vec![ControllerKind::Ds2];
        let report = ScenarioMatrix::new(cfg).run();
        assert!(!report.is_multidim());
        let table = report.render(&[ControllerKind::Ds2]);
        assert!(
            !table.contains("inst_hrs"),
            "parallelism-only report grew multi-dim columns:\n{table}"
        );
        // Every run still bills instance-hours (the column is hidden, the
        // bookkeeping is not): 180 virtual seconds at >=1 instance is at
        // least 0.05 instance-hours.
        for o in &report.outcomes {
            assert!(
                o.instance_hours > 0.04,
                "seed {}: {}",
                o.seed,
                o.instance_hours
            );
            assert_eq!(o.state_budget_hours, 0.0, "stateless scenario billed state");
        }
    }

    #[test]
    fn skew_scenarios_provision_for_the_hot_instance() {
        // A skewed scenario's optimum must exceed the uniform optimum for
        // the skewed operator — for the pure hot-key family and for the
        // correlated spike+skew family alike.
        for workload in [WorkloadShape::KeySkew, WorkloadShape::SpikeSkew] {
            let cfg = GeneratorConfig {
                workloads: vec![workload],
                shapes: vec![TopologyShape::Chain],
                ..Default::default()
            };
            let mut found = false;
            for seed in 0..80 {
                let spec = ScenarioSpec::generate(seed, &cfg);
                let optimal = spec.optimal_parallelism();
                for (op, profile) in &spec.profiles {
                    let Some(hot) = profile.skew_hot_fraction else {
                        continue;
                    };
                    let p = optimal[op];
                    // Skew only binds once the hot share exceeds the fair
                    // share; below that the weights degrade to uniform.
                    if p > 1 && hot > 1.0 / p as f64 {
                        assert!(
                            profile.effective_capacity(p) < profile.real_capacity(p) * p as f64
                        );
                        found = true;
                    }
                }
            }
            assert!(
                found,
                "{workload:?}: no skewed operator needed parallelism > 1"
            );
        }
    }

    #[test]
    fn multi_source_optimum_accounts_for_summed_feeds() {
        // In a multi-source topology every feed runs the full schedule, so
        // the merge operator's analytic target is `n_sources × final_rate`
        // and its optimum reflects the summed load.
        let cfg = GeneratorConfig {
            workloads: vec![WorkloadShape::Constant],
            shapes: vec![TopologyShape::MultiSource],
            operators: (4, 10),
            ..Default::default()
        };
        let mut checked = 0;
        for seed in 0..40 {
            let spec = ScenarioSpec::generate(seed, &cfg);
            let graph = &spec.topology.graph;
            let n_sources = graph.sources().len();
            if n_sources < 2 {
                continue;
            }
            let targets = spec.target_rates(spec.workload.final_rate);
            // The merge operator: the unique downstream of every source.
            let merge = graph
                .downstream_edges(graph.sources()[0])
                .next()
                .unwrap()
                .to;
            assert!(
                (targets[&merge] - n_sources as f64 * spec.workload.final_rate).abs() < 1e-6,
                "seed {seed}: merge target {} != {n_sources} × {}",
                targets[&merge],
                spec.workload.final_rate
            );
            // And the optimum is enough for the summed feeds.
            let p = spec.optimal_parallelism()[&merge];
            assert!(
                spec.profiles[&merge].effective_capacity(p) >= targets[&merge] * (1.0 - 1e-9),
                "seed {seed}: optimum {p} insufficient for summed feeds"
            );
            checked += 1;
        }
        assert!(checked >= 10, "only {checked} multi-source scenarios seen");
    }
}
