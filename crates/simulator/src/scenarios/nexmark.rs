//! The Nexmark scenario family: the paper's real query dataflows lowered
//! into matrix scenarios.
//!
//! DS2's headline evaluation (§5/§6) is not synthetic DAGs — it is Nexmark
//! queries on Flink. This module lowers each evaluated query (Q1, Q2, Q3,
//! Q5, Q8, Q11) into the same substrate the synthetic families use — a
//! [`Topology`], per-operator [`OperatorProfile`]s and per-source
//! [`SourceSpec`]s with an analytic ground-truth optimum — so the
//! 5000-scenario convergence matrix can score steps-to-convergence and
//! provisioning accuracy on the paper's own workloads.
//!
//! ## Lowering rules
//!
//! * **Topology** mirrors `ds2-nexmark`'s Flink query plans operator for
//!   operator (same names, same edges): `tests/nexmark_matrix.rs` pins the
//!   two against each other. Single-input queries are `chain`-shaped;
//!   Q3/Q8 ingest two feeds (auctions + persons) and are labelled
//!   `multi_source`.
//! * **Workload**: the scenario draws one of the matrix workload shapes
//!   (constant, step, spike, …) for the *total* offered rate; multi-source
//!   queries split every phase of the schedule across their feeds at the
//!   paper's Table 3 rate ratios (Q3 auctions:persons = 5:1, Q8 = 7:2).
//! * **Main operator**: calibrated exactly like `ds2-nexmark::profiles` —
//!   a sigmoid scaling curve (machine-boundary knee at `0.6 p*`) plus a
//!   small hidden overhead, sized so the analytic optimum at the
//!   workload's final rate lands on `p*`, a seed-drawn scaling of the
//!   paper's reported parallelism ([`NexmarkQuery::reference_parallelism`]).
//! * **Windows**: Q5 (hopping), Q8 (tumbling) and Q11 (session) mains use
//!   [`OutputMode::Windowed`] with a seed-drawn period that divides the
//!   matrix's 10 s policy interval — windowed operators are fast-forward
//!   ineligible, so these scenarios also pin the tick-by-tick path.
//! * **Skew**: keyed mains (Q3 seller join, Q5 per-auction counts, Q8
//!   person join, Q11 per-bidder sessions) accept the workload's hot-key
//!   fraction as a two-class partition (hot instance + uniform rest);
//!   stateless Q1/Q2 ignore it, as rebalancing makes skew a non-event.
//!
//! Everything is a pure function of the scenario seed, exactly like the
//! synthetic generator: a failing nexmark scenario is reported as its seed
//! and family and regenerates bit-for-bit.

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::{GraphBuilder, OperatorId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{OperatorProfile, ProfileMap, ScalingCurve};
use crate::source::SourceSpec;

use super::generator::{GeneratorConfig, ScenarioSpec};
use super::topology::{Topology, TopologyShape};
use super::workload::{Workload, WorkloadShape};

/// The six queries the paper evaluates, as matrix scenario families.
///
/// This mirrors `ds2_nexmark::QueryId` (the crates cannot share the type:
/// `ds2-nexmark` depends on this crate); `tests/nexmark_matrix.rs` pins the
/// 1:1 correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NexmarkQuery {
    /// Currency conversion (stateless map).
    Q1,
    /// Selection (stateless filter, selectivity 1/123).
    Q2,
    /// Local item suggestion (incremental two-input join, keyed by seller).
    Q3,
    /// Hot items (hopping window, keyed by auction).
    Q5,
    /// Monitor new users (tumbling window join, keyed by person).
    Q8,
    /// User sessions (session window, keyed by bidder).
    Q11,
}

impl NexmarkQuery {
    /// All evaluated queries, in paper order.
    pub const ALL: [NexmarkQuery; 6] = [
        NexmarkQuery::Q1,
        NexmarkQuery::Q2,
        NexmarkQuery::Q3,
        NexmarkQuery::Q5,
        NexmarkQuery::Q8,
        NexmarkQuery::Q11,
    ];

    /// Short lowercase name (`q1` … `q11`).
    pub fn name(&self) -> &'static str {
        match self {
            NexmarkQuery::Q1 => "q1",
            NexmarkQuery::Q2 => "q2",
            NexmarkQuery::Q3 => "q3",
            NexmarkQuery::Q5 => "q5",
            NexmarkQuery::Q8 => "q8",
            NexmarkQuery::Q11 => "q11",
        }
    }

    /// The paper's reported optimal Flink parallelism for the query's main
    /// operator (Fig. 8 / Table 4) — the reference point scenario
    /// calibration scales around. Pinned against
    /// `ds2_nexmark::profiles::expected_flink_parallelism` by
    /// `tests/nexmark_matrix.rs`.
    pub fn reference_parallelism(&self) -> usize {
        match self {
            NexmarkQuery::Q1 => 16,
            NexmarkQuery::Q2 => 14,
            NexmarkQuery::Q3 => 20,
            NexmarkQuery::Q5 => 16,
            NexmarkQuery::Q8 => 10,
            NexmarkQuery::Q11 => 28,
        }
    }

    /// Whether the query's main operator emits at window boundaries.
    pub fn is_windowed(&self) -> bool {
        matches!(
            self,
            NexmarkQuery::Q5 | NexmarkQuery::Q8 | NexmarkQuery::Q11
        )
    }

    /// Whether the main operator is keyed (hot-key skew can concentrate
    /// load on one instance). Stateless Q1/Q2 rebalance freely.
    pub fn keyed_main(&self) -> bool {
        !matches!(self, NexmarkQuery::Q1 | NexmarkQuery::Q2)
    }

    /// The name of the query's main operator in the lowered graph (the
    /// operator whose parallelism the paper reports).
    pub fn main_operator_name(&self) -> &'static str {
        match self {
            NexmarkQuery::Q1 => "currency_map",
            NexmarkQuery::Q2 => "filter",
            NexmarkQuery::Q3 => "incremental_join",
            NexmarkQuery::Q5 => "hot_items_window",
            NexmarkQuery::Q8 => "window_join",
            NexmarkQuery::Q11 => "session_window",
        }
    }

    /// `(feed_name, share)` of the total offered rate per source, at the
    /// paper's Table 3 rate ratios.
    pub fn source_shares(&self) -> &'static [(&'static str, f64)] {
        match self {
            NexmarkQuery::Q3 => &[("auctions", 5.0 / 6.0), ("persons", 1.0 / 6.0)],
            NexmarkQuery::Q8 => &[("auctions", 7.0 / 9.0), ("persons", 2.0 / 9.0)],
            _ => &[("bids", 1.0)],
        }
    }

    /// Window periods (ns) the lowering draws from; all divide the matrix's
    /// 10 s policy interval so windowed metrics windows see a whole number
    /// of firings. Empty for the non-windowed queries.
    pub fn window_periods(&self) -> &'static [u64] {
        match self {
            // Q5 hops every 1–2.5 s (the paper's sliding hot-items window).
            NexmarkQuery::Q5 => &[1_000_000_000, 2_000_000_000, 2_500_000_000],
            // Q8 tumbles every 1–2 s.
            NexmarkQuery::Q8 => &[1_000_000_000, 2_000_000_000],
            // Q11 session gaps close sessions every 0.5–2 s on average.
            NexmarkQuery::Q11 => &[500_000_000, 1_000_000_000, 2_000_000_000],
            _ => &[],
        }
    }

    /// Selectivity of the Q3 pre-join filters (auction category / person
    /// state predicates).
    const Q3_FILTER_SELECTIVITY: f64 = 0.25;

    /// The main operator's aggregate input rate as a fraction of the total
    /// offered rate, under optimally provisioned upstreams: 1 for every
    /// query whose main consumes the feeds directly, the filter
    /// selectivity for Q3 (both feeds pass a selectivity-0.25 filter).
    fn main_input_fraction(&self) -> f64 {
        match self {
            NexmarkQuery::Q3 => Self::Q3_FILTER_SELECTIVITY,
            _ => 1.0,
        }
    }

    /// Average selectivity of the main operator (outputs per input record).
    fn main_selectivity(&self) -> f64 {
        match self {
            NexmarkQuery::Q1 => 1.0,
            NexmarkQuery::Q2 => 1.0 / 123.0,
            NexmarkQuery::Q3 => 0.2,
            NexmarkQuery::Q5 => 0.01,
            NexmarkQuery::Q8 => 0.05,
            NexmarkQuery::Q11 => 0.02,
        }
    }
}

/// The scenario family axis: the synthetic generator or one Nexmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Seeded random topology × workload × profiles (the original matrix).
    Synthetic,
    /// One of the paper's Nexmark query dataflows.
    Nexmark(NexmarkQuery),
    /// Synthetic topologies where one operator's key distribution pins a
    /// single instance: a splittable hot class whose rate exceeds any one
    /// instance's capacity, so no parallelism alone can absorb it.
    HotKey,
    /// Synthetic topologies where one stateful operator's per-instance
    /// state outgrows its memory budget as the workload ramps, forcing a
    /// spill (and a state-driven parallelism floor) unless the controller
    /// scales for state.
    StatePressure,
}

impl ScenarioFamily {
    /// Every Nexmark query family, in paper order.
    pub const ALL_NEXMARK: [ScenarioFamily; 6] = [
        ScenarioFamily::Nexmark(NexmarkQuery::Q1),
        ScenarioFamily::Nexmark(NexmarkQuery::Q2),
        ScenarioFamily::Nexmark(NexmarkQuery::Q3),
        ScenarioFamily::Nexmark(NexmarkQuery::Q5),
        ScenarioFamily::Nexmark(NexmarkQuery::Q8),
        ScenarioFamily::Nexmark(NexmarkQuery::Q11),
    ];

    /// Short name used in outcomes and reports (`synthetic`, `nexmark_q5`).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::Synthetic => "synthetic",
            ScenarioFamily::Nexmark(NexmarkQuery::Q1) => "nexmark_q1",
            ScenarioFamily::Nexmark(NexmarkQuery::Q2) => "nexmark_q2",
            ScenarioFamily::Nexmark(NexmarkQuery::Q3) => "nexmark_q3",
            ScenarioFamily::Nexmark(NexmarkQuery::Q5) => "nexmark_q5",
            ScenarioFamily::Nexmark(NexmarkQuery::Q8) => "nexmark_q8",
            ScenarioFamily::Nexmark(NexmarkQuery::Q11) => "nexmark_q11",
            ScenarioFamily::HotKey => "hotkey",
            ScenarioFamily::StatePressure => "state_pressure",
        }
    }

    /// Parses a short name as printed in reports.
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        match name {
            "synthetic" => return Some(ScenarioFamily::Synthetic),
            "hotkey" => return Some(ScenarioFamily::HotKey),
            "state_pressure" => return Some(ScenarioFamily::StatePressure),
            _ => {}
        }
        ScenarioFamily::ALL_NEXMARK
            .into_iter()
            .find(|f| f.name() == name)
    }

    /// The headline-matrix family mix: synthetic and nexmark weighted
    /// 50/50 (six `Synthetic` entries + the six query families). The
    /// single definition shared by `tests/scenario_matrix.rs`, the
    /// fast-forward equivalence tests and the bin's `--family mixed`.
    pub fn headline_mix() -> Vec<ScenarioFamily> {
        let mut families = vec![ScenarioFamily::Synthetic; 6];
        families.extend(ScenarioFamily::ALL_NEXMARK);
        families
    }

    /// The salt XORed into the scenario seed before generating the
    /// scenario *body*: each family generates from its own derived RNG
    /// stream, so a `(seed, family)` pair produces the identical scenario
    /// under ANY family list — a failing cell of a multi-family matrix
    /// regenerates bit-exactly from `--seed <seed> --family <family>`.
    /// Synthetic's salt is 0: synthetic bodies read the raw seed stream,
    /// exactly as they did before the family axis existed.
    pub(crate) fn scenario_salt(&self) -> u64 {
        match self {
            ScenarioFamily::Synthetic => 0,
            ScenarioFamily::Nexmark(q) => {
                let index = NexmarkQuery::ALL.iter().position(|x| x == q).unwrap() as u64;
                (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
            // Slots 7 and 8, continuing the Nexmark sequence (1..=6).
            ScenarioFamily::HotKey => 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ScenarioFamily::StatePressure => 8u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// Calibrates the main operator's profile so the analytic optimum at
/// aggregate input `rate` lands exactly on `p_star` (before skew).
///
/// The instrumented and hidden costs share one sigmoid curve, so the
/// *real* per-record cost is exactly `base · multiplier(p)`: the
/// per-instance real capacity at `p*` is `rate / (p* - margin)` with
/// `margin < 1`, which makes `p*` sufficient, and the near-flat curve
/// above the knee keeps `p* - 1` insufficient (the golden tests assert
/// both). Configurations far below the knee measure optimistic capacities
/// and need the paper's second/third refinement step (§5.4).
fn calibrated_main(
    rate: f64,
    p_star: usize,
    selectivity: f64,
    rng: &mut SmallRng,
) -> OperatorProfile {
    let p = p_star as f64;
    let alpha = rng.gen_range(0.2..0.3);
    let curve = ScalingCurve::Sigmoid {
        alpha,
        knee: 0.6 * p,
        width: (0.1 * p).max(0.5),
    };
    let margin = (0.04 * p).clamp(0.3, 0.75);
    let real_cost_at_star = 1e9 / (rate / (p - margin));
    let base_real = real_cost_at_star / curve.multiplier(p_star);
    let hidden_fraction = rng.gen_range(0.01..0.03);
    OperatorProfile::simple(base_real * (1.0 - hidden_fraction), selectivity)
        .with_scaling(curve)
        .with_hidden(base_real * hidden_fraction, curve)
}

/// A light supporting operator (filter/sink) with linear scaling whose
/// analytic optimum at input `rate` is exactly `p_opt`.
fn support_profile(rate: f64, p_opt: usize, selectivity: f64) -> OperatorProfile {
    let capacity = rate / (p_opt as f64 - 0.5);
    OperatorProfile::with_capacity(capacity, selectivity)
}

/// Lowers `query` into a complete scenario under the drawn `workload`.
///
/// Called by [`ScenarioSpec::generate`] with the scenario's seeded RNG;
/// all randomness (parallelism scale, window period, support-operator
/// sizing, initial deployment) flows from it.
pub(crate) fn lower(
    query: NexmarkQuery,
    workload: &Workload,
    config: &GeneratorConfig,
    rng: &mut SmallRng,
) -> (
    Topology,
    ProfileMap,
    BTreeMap<OperatorId, SourceSpec>,
    Deployment,
) {
    let mut b = GraphBuilder::new();
    let shares = query.source_shares();
    let mut ids: Vec<OperatorId> = Vec::new();
    let mut sources = BTreeMap::new();
    for &(feed, share) in shares {
        let src = b.operator(feed);
        ids.push(src);
        sources.insert(src, workload.spec.scaled(share));
    }

    // p* scaled around the paper's reported parallelism, bounded well
    // inside the matrix's parallelism budget.
    let scale = rng.gen_range(0.7..1.3);
    let p_star = ((query.reference_parallelism() as f64 * scale).round() as usize).clamp(2, 48);
    let total_rate = workload.final_rate;
    let sel = query.main_selectivity();

    let mut profiles = ProfileMap::new();
    let (shape, main, main_input) = match query {
        NexmarkQuery::Q1 | NexmarkQuery::Q2 => {
            // bids -> main -> sink.
            let main = b.operator(query.main_operator_name());
            let sink = b.operator("sink");
            b.connect(ids[0], main);
            b.connect(main, sink);
            ids.push(main);
            ids.push(sink);
            let p_sink = rng.gen_range(1..=4);
            profiles.insert(sink, support_profile(total_rate * sel, p_sink, 0.0));
            (TopologyShape::Chain, main, total_rate)
        }
        NexmarkQuery::Q3 => {
            // auctions -> filter_auctions -> join <- filter_persons <- persons.
            let fa = b.operator("filter_auctions");
            let fp = b.operator("filter_persons");
            let join = b.operator(query.main_operator_name());
            b.connect(ids[0], fa);
            b.connect(ids[1], fp);
            b.connect(fa, join);
            b.connect(fp, join);
            ids.extend([fa, fp, join]);
            let filter_sel = NexmarkQuery::Q3_FILTER_SELECTIVITY;
            let (ra, rp) = (total_rate * shares[0].1, total_rate * shares[1].1);
            profiles.insert(fa, support_profile(ra, rng.gen_range(2..=6), filter_sel));
            profiles.insert(fp, support_profile(rp, rng.gen_range(1..=3), filter_sel));
            (TopologyShape::MultiSource, join, filter_sel * (ra + rp))
        }
        NexmarkQuery::Q8 => {
            // auctions + persons -> window_join (also the sink).
            let join = b.operator(query.main_operator_name());
            b.connect(ids[0], join);
            b.connect(ids[1], join);
            ids.push(join);
            (TopologyShape::MultiSource, join, total_rate)
        }
        NexmarkQuery::Q5 | NexmarkQuery::Q11 => {
            // bids -> windowed main -> sink.
            let main = b.operator(query.main_operator_name());
            let sink = b.operator("sink");
            b.connect(ids[0], main);
            b.connect(main, sink);
            ids.push(main);
            ids.push(sink);
            let p_sink = rng.gen_range(1..=3);
            profiles.insert(sink, support_profile(total_rate * sel, p_sink, 0.0));
            (TopologyShape::Chain, main, total_rate)
        }
    };

    let mut main_profile = calibrated_main(main_input, p_star, sel, rng);
    let periods = query.window_periods();
    if !periods.is_empty() {
        main_profile = main_profile.windowed(periods[rng.gen_range(0..periods.len())]);
    }
    if let (Some(hot), true) = (workload.skew_hot_fraction, query.keyed_main()) {
        main_profile = main_profile.with_skew(hot);
    }
    profiles.insert(main, main_profile);

    let graph = b.build().expect("nexmark query plans are valid DAGs");
    debug_assert_eq!(graph.sources().len(), shares.len());

    let mut initial = Deployment::uniform(&graph, 1);
    let (plo, phi) = config.initial_parallelism;
    for op in graph.operators() {
        if !graph.is_source(op) {
            initial.set(op, rng.gen_range(plo..=phi));
        }
    }

    (Topology { shape, graph, ids }, profiles, sources, initial)
}

/// The reference scenario for `query`: the exact paper configuration (no
/// seed variation) at a given total offered `rate` — `p*` equals
/// [`NexmarkQuery::reference_parallelism`], the median window period, no
/// skew, and a minimal initial deployment. The golden-shape and ordering
/// tests run DS2 on these.
pub fn reference_spec(query: NexmarkQuery, rate: f64, run_duration_ns: u64) -> ScenarioSpec {
    let config = GeneratorConfig {
        families: vec![ScenarioFamily::Nexmark(query)],
        workloads: vec![WorkloadShape::Constant],
        rate_range: (rate, rate + 1e-6),
        initial_parallelism: (1, 1),
        run_duration_ns,
        ..Default::default()
    };
    let mut spec = ScenarioSpec::generate(0, &config);
    // Strip the seed variation: recalibrate the main operator at exactly
    // the paper's parallelism with the median window period.
    let mut rng = SmallRng::seed_from_u64(0);
    let main = spec
        .topology
        .graph
        .by_name(query.main_operator_name())
        .expect("main operator present");
    let mut profile = calibrated_main(
        main_input_rate(&spec, query),
        query.reference_parallelism(),
        query.main_selectivity(),
        &mut rng,
    );
    let periods = query.window_periods();
    if !periods.is_empty() {
        profile = profile.windowed(periods[periods.len() / 2]);
    }
    spec.profiles.insert(main, profile);
    spec
}

/// Aggregate input rate of the query's main operator at the workload's
/// final rate (the calibration target).
fn main_input_rate(spec: &ScenarioSpec, query: NexmarkQuery) -> f64 {
    query.main_input_fraction() * spec.workload.final_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OutputMode;

    fn nexmark_config(query: NexmarkQuery) -> GeneratorConfig {
        GeneratorConfig {
            families: vec![ScenarioFamily::Nexmark(query)],
            ..Default::default()
        }
    }

    #[test]
    fn lowering_is_deterministic_per_seed() {
        for q in NexmarkQuery::ALL {
            let cfg = nexmark_config(q);
            for seed in 0..8 {
                let a = ScenarioSpec::generate(seed, &cfg);
                let b = ScenarioSpec::generate(seed, &cfg);
                assert_eq!(a.family, ScenarioFamily::Nexmark(q));
                assert_eq!(a.topology.ids, b.topology.ids, "{q:?}");
                assert_eq!(a.topology.graph.edges(), b.topology.graph.edges(), "{q:?}");
                assert_eq!(a.profiles, b.profiles, "{q:?}");
                assert_eq!(a.initial, b.initial, "{q:?}");
                assert_eq!(a.sources, b.sources, "{q:?}");
            }
        }
    }

    #[test]
    fn windowed_queries_lower_to_windowed_mains() {
        for q in NexmarkQuery::ALL {
            let cfg = nexmark_config(q);
            let spec = ScenarioSpec::generate(3, &cfg);
            let main = spec
                .topology
                .graph
                .by_name(q.main_operator_name())
                .expect("main operator");
            let windowed = matches!(spec.profiles[&main].output, OutputMode::Windowed { .. });
            assert_eq!(windowed, q.is_windowed(), "{q:?}");
            if let OutputMode::Windowed { period_ns, .. } = spec.profiles[&main].output {
                assert!(q.window_periods().contains(&period_ns), "{q:?}");
                // Windows divide the matrix's 10 s policy interval.
                assert_eq!(10_000_000_000 % period_ns, 0, "{q:?}");
            }
        }
    }

    #[test]
    fn source_shares_sum_to_one_and_scale_the_schedule() {
        for q in NexmarkQuery::ALL {
            let total: f64 = q.source_shares().iter().map(|&(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-12, "{q:?}");
            let cfg = nexmark_config(q);
            let spec = ScenarioSpec::generate(11, &cfg);
            let offered: f64 = spec
                .sources
                .values()
                .map(|s| s.schedule.rate_at(u64::MAX))
                .sum();
            assert!(
                (offered - spec.workload.final_rate).abs() < 1e-6 * spec.workload.final_rate,
                "{q:?}: feeds sum {offered} != total {}",
                spec.workload.final_rate
            );
        }
    }

    #[test]
    fn reference_optimum_is_the_paper_parallelism() {
        for q in NexmarkQuery::ALL {
            let spec = reference_spec(q, 2_000.0, 200_000_000_000);
            let main = spec.topology.graph.by_name(q.main_operator_name()).unwrap();
            let optimal = spec.optimal_parallelism();
            assert_eq!(
                optimal[&main],
                q.reference_parallelism(),
                "{q:?}: analytic optimum off the paper's reported parallelism"
            );
        }
    }

    #[test]
    fn skew_applies_only_to_keyed_mains() {
        for q in NexmarkQuery::ALL {
            let cfg = GeneratorConfig {
                families: vec![ScenarioFamily::Nexmark(q)],
                workloads: vec![WorkloadShape::KeySkew],
                ..Default::default()
            };
            let spec = ScenarioSpec::generate(5, &cfg);
            let main = spec.topology.graph.by_name(q.main_operator_name()).unwrap();
            assert_eq!(
                spec.profiles[&main].skew_hot_fraction.is_some(),
                q.keyed_main(),
                "{q:?}"
            );
            // Support operators never carry the hot key.
            for (&op, profile) in &spec.profiles {
                if op != main {
                    assert!(profile.skew_hot_fraction.is_none(), "{q:?} {op}");
                }
            }
        }
    }

    /// A lowered windowed query (here Q5) is fast-forward ineligible end
    /// to end: an engine built from the spec never probes or replays —
    /// the matrix runs these scenarios tick-by-tick in both modes, which
    /// is why FF and `--exact` reports agree trivially for them.
    #[test]
    fn windowed_query_engines_never_probe() {
        use crate::engine::{EngineConfig, FluidEngine, InstrumentationConfig};
        for q in [NexmarkQuery::Q5, NexmarkQuery::Q8, NexmarkQuery::Q11] {
            let spec = ScenarioSpec::generate(7, &nexmark_config(q));
            let mut engine = FluidEngine::new(
                spec.topology.graph.clone(),
                spec.profiles.clone(),
                spec.sources.clone(),
                spec.initial.clone(),
                EngineConfig {
                    instrumentation: InstrumentationConfig::disabled(),
                    fast_forward: true,
                    track_record_latency: false,
                    ..Default::default()
                },
            );
            for _ in 0..1_000 {
                engine.tick_within(u64::MAX);
            }
            let stats = engine.fastforward_stats();
            assert!(!engine.fastforward_active(), "{q:?} armed replay");
            assert_eq!(stats.probes, 0, "{q:?} probed: {stats:?}");
            assert_eq!(stats.replayed_ticks, 0, "{q:?} replayed");
        }
    }

    #[test]
    fn optimum_respects_generated_scale_range() {
        for q in NexmarkQuery::ALL {
            let cfg = nexmark_config(q);
            for seed in 0..20 {
                let spec = ScenarioSpec::generate(seed, &cfg);
                if spec.workload.skew_hot_fraction.is_some() {
                    continue; // skew plateaus are scored, not calibrated
                }
                let main = spec.topology.graph.by_name(q.main_operator_name()).unwrap();
                let p = spec.optimal_parallelism()[&main];
                let reference = q.reference_parallelism() as f64;
                assert!(
                    (p as f64) >= (0.7 * reference - 1.5) && (p as f64) <= (1.3 * reference + 1.5),
                    "{q:?} seed {seed}: optimum {p} outside the drawn scale range"
                );
            }
        }
    }
}
