//! The fluid queueing engine: a deterministic, virtual-time simulation of a
//! distributed streaming dataflow.
//!
//! The engine advances in fixed ticks. Each tick, operator instances drain
//! their input queues subject to (a) per-instance service capacity derived
//! from their [`OperatorProfile`](crate::profile::OperatorProfile), (b)
//! skewed key partitioning across instances, and (c) the execution-model
//! personality:
//!
//! * **Flink** — bounded *per-instance* input queues; an upstream operator
//!   blocks on output as soon as any receiving instance's queue is full
//!   (credit-based flow control preserves FIFO order, so one full channel
//!   stalls the sender); rescaling is stop-the-world savepoint-and-restore.
//! * **Heron** — the same partitioned queues but much larger (the paper's
//!   100 MiB operator queues), plus a backpressure *signal*: when any queue
//!   crosses its high watermark the sources stop entirely until every queue
//!   drains below the low watermark (Heron's spout-pausing behaviour, which
//!   is why Dhalion's reaction time depends on queue fill, §5.2).
//! * **Timely** — a global worker pool shared by all operators round-robin,
//!   one unbounded queue per operator, no backpressure: when
//!   under-provisioned the queues simply grow (§5.5).
//!
//! Queue entries carry their source emission time, giving exact end-to-end
//! record latency and epoch-completion tracking. Per-instance §4.1 counters
//! (records in/out, useful time, waits) are maintained in virtual time and
//! exported as [`MetricsSnapshot`]s.
//!
//! All per-operator runtime structures are dense arenas indexed by
//! [`OperatorId::index`](ds2_core::graph::OperatorId::index); see
//! [`FluidEngine`] for the allocation discipline of the tick path.
//! Partitions with equal input shares are simulated as one representative
//! *class* scaled by its count — they are bitwise clones of each other,
//! so a uniform 64-wide operator ticks at the cost of a 1-wide one — and
//! provably steady ticks are replayed rather than re-executed
//! ([`crate::fastforward`], [`FluidEngine::tick_within`]).

use std::collections::BTreeMap;

use ds2_core::deployment::Deployment;
use ds2_core::graph::{LogicalGraph, OperatorId};
use ds2_core::opmap::OpMap;
use ds2_core::rates::InstanceMetrics;
use ds2_core::snapshot::MetricsSnapshot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fastforward::{FastForward, FastForwardStats, MAX_FINGERPRINT_SPANS};
use crate::latency::{EpochTracker, LatencyRecorder};
use crate::profile::{OperatorProfile, OutputMode, ProfileMap};
use crate::queue::{EpochQueue, Span};
use crate::source::SourceSpec;

/// Execution-model personality (§4.3 and §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Per-operator parallelism, bounded queues, blocking backpressure.
    Flink,
    /// Per-operator parallelism, large queues, spout-pausing backpressure.
    Heron,
    /// Global worker pool, unbounded queues, no backpressure.
    Timely,
}

/// Instrumentation cost model (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrumentationConfig {
    /// Whether §4.1 instrumentation is active.
    pub enabled: bool,
    /// Extra per-record cost of maintaining counters, in nanoseconds. Added
    /// to the *measured* (and real) processing cost when enabled — the
    /// counters run inside the instance's processing loop.
    pub per_record_cost_ns: f64,
}

impl InstrumentationConfig {
    /// Instrumentation disabled (the Fig. 10 "vanilla" baseline).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            per_record_cost_ns: 0.0,
        }
    }
}

impl Default for InstrumentationConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            per_record_cost_ns: 25.0,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Execution-model personality.
    pub mode: EngineMode,
    /// Simulation step in nanoseconds (default 10 ms).
    pub tick_ns: u64,
    /// Per-instance input queue capacity in records (Flink mode).
    pub per_instance_queue: f64,
    /// Per-instance queue capacity in records for Heron mode (the paper's
    /// 100 MiB operator queues).
    pub heron_per_instance_queue: f64,
    /// Queue fill fraction at which Heron pauses the sources.
    pub heron_high_watermark: f64,
    /// Queue fill fraction below which Heron resumes the sources.
    pub heron_low_watermark: f64,
    /// Stop-the-world redeployment latency in nanoseconds.
    pub reconfig_latency_ns: u64,
    /// RNG seed for service-noise sampling.
    pub seed: u64,
    /// Standard deviation of multiplicative service-rate noise (0 = exact).
    pub service_noise: f64,
    /// Instrumentation cost model.
    pub instrumentation: InstrumentationConfig,
    /// Epoch length for completion-latency tracking (Timely experiments).
    pub epoch_ns: u64,
    /// Initial worker count in Timely mode.
    pub timely_workers: usize,
    /// Macro-tick fast-forward: when the engine can prove the dataflow
    /// reached a steady state (see [`crate::fastforward`]), it replays the
    /// confirmed per-tick transition instead of re-executing identical
    /// ticks. Results are bitwise identical to exact execution; disable
    /// (the `--exact` escape hatch) to force tick-by-tick execution.
    pub fast_forward: bool,
    /// Per-record latency and epoch tracking. When disabled, queues run
    /// *untagged* (one merged span, no emission times): the fluid dynamics
    /// — drains, spaces, backpressure, rates, every policy observable —
    /// are unchanged, but [`FluidEngine::latency`] and
    /// [`FluidEngine::epochs`] stay empty. The scenario matrix disables
    /// this (its report never reads latency), which removes the span
    /// bookkeeping from the hot path.
    pub track_record_latency: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: EngineMode::Flink,
            tick_ns: 10_000_000, // 10 ms
            per_instance_queue: 5_000.0,
            heron_per_instance_queue: 1_000_000.0,
            heron_high_watermark: 0.9,
            heron_low_watermark: 0.3,
            reconfig_latency_ns: 30_000_000_000, // 30 s, the §5.3 Flink savepoint time
            seed: 42,
            service_noise: 0.0,
            instrumentation: InstrumentationConfig::default(),
            epoch_ns: 1_000_000_000,
            timely_workers: 1,
            fast_forward: true,
            track_record_latency: true,
        }
    }
}

/// Per-instance accumulation between snapshots (virtual-time counters).
/// Also the unit of fast-forward delta capture: a probe tick runs with the
/// accumulators zeroed, so the values left behind are exactly the tick's
/// addends (see [`crate::fastforward`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct InstanceAcc {
    pub(crate) records_in: f64,
    pub(crate) records_out: f64,
    pub(crate) useful_ns: f64,
    pub(crate) wait_input_ns: f64,
    pub(crate) wait_output_ns: f64,
}

/// One *class* of identical partitions.
///
/// Partitions of an operator that carry the same input share are bitwise
/// clones of each other for the whole simulation: they start empty, every
/// push hands each of them `records × share`, and every drain takes
/// `min(len, capacity)` of identical lengths — so by induction their queue
/// states never diverge. The engine therefore simulates **one
/// representative partition per distinct share** and scales the aggregates
/// by `count`. Uniform operators collapse to a single class; a hot-key
/// operator to two (the hot instance and the cold rest) — which is what
/// turns the former `O(parallelism)` tick cost into `O(1)` per operator.
#[derive(Debug)]
struct PartitionClass {
    /// The representative partition's input queue.
    queue: EpochQueue,
    /// Input share of *each* partition in the class.
    share: f64,
    /// How many identical partitions this class represents.
    count: usize,
}

/// One class of identical instances: the representative's accumulator plus
/// the instance count it stands for. Snapshot collection expands it back
/// into `count` identical per-instance rows.
#[derive(Debug, Clone, Copy)]
struct AccClass {
    acc: InstanceAcc,
    count: usize,
}

/// Per-operator runtime state.
#[derive(Debug)]
struct OpState {
    /// Partition classes (Flink/Heron: instance partitions grouped by
    /// share; Timely: one class for the shared queue; sources: none).
    classes: Vec<PartitionClass>,
    /// Instance-accumulator classes. For Flink/Heron non-sources these are
    /// parallel to `classes` (instance k owns partition k); sources and
    /// Timely workers collapse to a single class.
    accs: Vec<AccClass>,
    /// Buffered output of a windowed operator awaiting the next firing.
    window_pending: f64,
    /// Oldest source tag among buffered window output.
    window_pending_oldest: Option<u64>,
    /// Time of the next window firing.
    next_fire_ns: u64,
}

impl OpState {
    /// Total queued records across all partitions.
    fn queued(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.queue.len() * c.count as f64)
            .sum()
    }

    /// Total reporting instances.
    fn instances(&self) -> usize {
        self.accs.iter().map(|a| a.count).sum()
    }

    /// Maximum total emission the partitioned queues accept: the first full
    /// partition stalls the sender.
    fn accept_limit(&self) -> f64 {
        let mut limit = f64::INFINITY;
        for c in &self.classes {
            if c.share > 0.0 {
                limit = limit.min(c.queue.space() / c.share);
            }
        }
        limit
    }

    /// Pushes `records` (tagged `tag`) split across partitions by share:
    /// one representative push per class.
    fn push_partitioned(&mut self, tag: u64, records: f64) {
        for c in &mut self.classes {
            if c.share > 0.0 {
                c.queue.push(tag, records * c.share);
            }
        }
    }
}

/// Statistics of the most recent tick, for timelines.
///
/// The per-source maps are dense [`OpMap`] arenas the engine recycles
/// across ticks (epoch-stamped clear), so reading them per tick is
/// allocation-free; use [`TickStats::total_offered`] /
/// [`TickStats::total_emitted`] for the common aggregate.
#[derive(Debug, Clone, Default)]
pub struct TickStats {
    /// Records each source offered this tick.
    pub offered: OpMap<f64>,
    /// Records each source actually emitted this tick.
    pub emitted: OpMap<f64>,
    /// Whether the Heron backpressure signal was active.
    pub backpressure: bool,
    /// Whether the engine was halted for redeployment.
    pub halted: bool,
}

impl TickStats {
    /// Total records offered by all sources this tick.
    pub fn total_offered(&self) -> f64 {
        self.offered.values().sum()
    }

    /// Total records emitted by all sources this tick.
    pub fn total_emitted(&self) -> f64 {
        self.emitted.values().sum()
    }

    fn clear(&mut self) {
        self.offered.clear();
        self.emitted.clear();
        self.backpressure = false;
        self.halted = false;
    }
}

/// Events produced by a tick.
#[derive(Debug, Clone, Default)]
pub struct TickEvents {
    /// A pending rescale finished deploying this tick.
    pub deployed: Option<Deployment>,
}

/// The fluid queueing engine.
///
/// All per-operator runtime structures are dense arenas indexed by
/// [`OperatorId::index`] — operator state, source backlog, cached downstream
/// edges, per-record cost cache and the per-tick scratch buffers — so the
/// tick loop is pure index arithmetic over contiguous memory and performs no
/// heap allocation in steady state.
#[derive(Debug)]
pub struct FluidEngine {
    graph: LogicalGraph,
    /// Operator cost profiles, dense by operator id (sources have none).
    profiles: OpMap<OperatorProfile>,
    /// Source specifications, dense by operator id.
    sources: OpMap<SourceSpec>,
    cfg: EngineConfig,
    deployment: Deployment,
    timely_workers: usize,
    /// Per-operator runtime state, indexed by operator id.
    states: Vec<OpState>,
    /// Durable backlog per operator id (records offered but not yet
    /// emitted; non-zero only for sources).
    backlog: Vec<f64>,
    now_ns: u64,
    snapshot_start_ns: u64,
    rng: SmallRng,
    pending_rescale: Option<(u64, Deployment, usize)>,
    heron_backpressure: bool,
    latency: LatencyRecorder,
    epochs: EpochTracker,
    last_tick: TickStats,
    /// Reverse topological order (sinks first), cached.
    reverse_topo: Vec<OperatorId>,
    /// Non-source operators in topological order (Timely water-filling).
    non_source_topo: Vec<OperatorId>,
    /// Downstream `(to, weight)` edges per operator id, cached at
    /// construction (the graph never changes; collecting these per tick
    /// dominated the allocator profile of large matrix runs).
    down_edges: Vec<Vec<(OperatorId, f64)>>,
    /// Per-operator `(instrumented, real)` cost per record at the current
    /// deployment, in ns, indexed by operator id (`(0, 0)` for sources).
    /// Rebuilt on every redeployment — the scaling-curve multipliers
    /// involve `exp()` and only change when parallelism does.
    cost_cache: Vec<(f64, f64)>,
    /// Output mode per operator id (`None` for sources), cached so the tick
    /// path never chases the profile map.
    output_modes: Vec<Option<OutputMode>>,
    /// Window firing period per operator id, cached from the profiles.
    window_periods: Vec<Option<u64>>,
    /// Per-partition drain scratch (operator_process).
    takes_scratch: Vec<f64>,
    /// Drained-span scratch shared by the drain paths.
    span_scratch: Vec<Span>,
    /// Timely water-filling scratch: eligible records per operator id.
    eligible_scratch: Vec<f64>,
    /// Timely water-filling scratch: per-operator noise factors.
    noise_scratch: Vec<f64>,
    /// Macro-tick fast-forward state machine (probe/replay bookkeeping).
    ff: FastForward,
    /// Tag shift accumulated by replayed ticks and not yet applied to the
    /// queued spans; materialized lazily before the next full tick.
    pending_tag_shift: u64,
    /// Epoch frontier computed by the most recent full tick.
    last_frontier: Option<u64>,
    /// Whether any operator uses windowed output (window firings are tied
    /// to absolute time, so such graphs never fast-forward).
    has_windowed: bool,
    /// Whether any operator carries a [`StateProfile`]. Gates the whole
    /// spill path: stateless dataflows never compute spill factors and take
    /// the exact historical float path through the cost cache.
    has_state: bool,
    /// Bit pattern of the total offered source rate the current spill
    /// factors were computed at; `None` until the first refresh. Spill
    /// factors are phase-constant (source schedules are piecewise
    /// constant), which is what keeps them fast-forward-safe.
    spill_rate_bits: Option<u64>,
    /// The rate behind `spill_rate_bits`, for cost-cache rebuilds.
    spill_total_rate: f64,
    /// Cached Timely-mode deployment view (every operator at the worker
    /// pool size), rebuilt when the pool rescales, so
    /// [`FluidEngine::deployment`] can lend it without allocating.
    timely_deployment: Deployment,
}

impl FluidEngine {
    /// Creates an engine for `graph` with the given profiles, sources,
    /// initial deployment and configuration.
    ///
    /// # Panics
    ///
    /// Panics if a non-source operator lacks a profile, a source lacks a
    /// spec, or the deployment misses an operator — these are programming
    /// errors in experiment setup.
    pub fn new(
        graph: LogicalGraph,
        profiles: ProfileMap,
        sources: BTreeMap<OperatorId, SourceSpec>,
        deployment: Deployment,
        cfg: EngineConfig,
    ) -> Self {
        deployment.validate(&graph).expect("invalid deployment");
        for op in graph.operators() {
            if graph.is_source(op) {
                assert!(sources.contains_key(&op), "missing SourceSpec for {op}");
            } else {
                assert!(profiles.contains_key(&op), "missing profile for {op}");
            }
        }
        let m = graph.len();
        let reverse_topo: Vec<OperatorId> = {
            let mut t: Vec<OperatorId> = graph.topological_order().collect();
            t.reverse();
            t
        };
        let non_source_topo: Vec<OperatorId> = graph
            .topological_order()
            .filter(|&op| !graph.is_source(op))
            .collect();
        let down_edges: Vec<Vec<(OperatorId, f64)>> = graph
            .operators()
            .map(|op| {
                graph
                    .downstream_edges(op)
                    .map(|e| (e.to, e.weight))
                    .collect()
            })
            .collect();
        let profiles: OpMap<OperatorProfile> = profiles.into_iter().collect();
        let sources: OpMap<SourceSpec> = sources.into_iter().collect();
        let output_modes: Vec<Option<OutputMode>> = (0..m)
            .map(|i| profiles.get(OperatorId(i)).map(|p| p.output))
            .collect();
        let window_periods: Vec<Option<u64>> = output_modes
            .iter()
            .map(|mode| match mode {
                Some(OutputMode::Windowed { period_ns, .. }) => Some(*period_ns),
                _ => None,
            })
            .collect();
        let timely_workers = cfg.timely_workers.max(1);
        let epoch_ns = cfg.epoch_ns;
        let seed = cfg.seed;
        let has_windowed = window_periods.iter().any(|w| w.is_some());
        let has_state = (0..m).any(|i| {
            profiles
                .get(OperatorId(i))
                .is_some_and(|p| p.state.is_some())
        });
        let mut engine = Self {
            graph,
            profiles,
            sources,
            cfg,
            deployment,
            timely_workers,
            states: Vec::new(),
            backlog: vec![0.0; m],
            now_ns: 0,
            snapshot_start_ns: 0,
            rng: SmallRng::seed_from_u64(seed),
            pending_rescale: None,
            heron_backpressure: false,
            latency: LatencyRecorder::new(),
            epochs: EpochTracker::new(epoch_ns),
            last_tick: TickStats::default(),
            reverse_topo,
            non_source_topo,
            down_edges,
            cost_cache: vec![(0.0, 0.0); m],
            output_modes,
            window_periods,
            takes_scratch: Vec::new(),
            span_scratch: Vec::new(),
            eligible_scratch: vec![0.0; m],
            noise_scratch: vec![0.0; m],
            ff: FastForward::default(),
            pending_tag_shift: 0,
            last_frontier: None,
            has_windowed,
            has_state,
            spill_rate_bits: None,
            spill_total_rate: 0.0,
            timely_deployment: Deployment::with_len(m),
        };
        engine.init_states();
        engine.rebuild_cost_cache();
        engine.refresh_spill();
        engine.rebuild_timely_deployment();
        engine
    }

    /// Rebuilds the cached Timely-mode deployment view (every operator at
    /// the current worker-pool size).
    fn rebuild_timely_deployment(&mut self) {
        self.timely_deployment.reset(self.graph.len());
        for op in self.graph.operators() {
            self.timely_deployment.set(op, self.timely_workers);
        }
    }

    /// Recomputes the per-record cost of every non-source operator at the
    /// current parallelism (instrumented and real, ns per record).
    fn rebuild_cost_cache(&mut self) {
        for op in self.graph.operators() {
            let i = op.index();
            if self.graph.is_source(op) {
                self.cost_cache[i] = (0.0, 0.0);
                continue;
            }
            let p = match self.cfg.mode {
                EngineMode::Timely => self.timely_workers,
                _ => self.deployment.parallelism(op).max(1),
            };
            let (instr, real) = {
                let profile = &self.profiles[op];
                (
                    self.effective_instr_cost(profile, p),
                    self.effective_real_cost(profile, p),
                )
            };
            // Spill penalty: strictly skipped at factor 1.0 so stateless
            // operators (and stateful ones within budget) keep the exact
            // historical cost bits.
            let spill = self.spill_factor(op, p);
            self.cost_cache[i] = if spill != 1.0 {
                (instr * spill, real * spill)
            } else {
                (instr, real)
            };
        }
    }

    /// Per-record cost multiplier from state spill: when an operator's
    /// per-instance state at the current offered rate exceeds its profile's
    /// per-instance budget, every record pays the spill multiplier (state
    /// accesses go through secondary storage). `1.0` for stateless
    /// operators and stateful ones within budget.
    fn spill_factor(&self, op: OperatorId, p: usize) -> f64 {
        if !self.has_state {
            return 1.0;
        }
        let profile = &self.profiles[op];
        match &profile.state {
            Some(s)
                if s.spill_cost_multiplier > 1.0
                    && profile.state_bytes(p, self.spill_total_rate)
                        > s.budget_per_instance_bytes =>
            {
                s.spill_cost_multiplier
            }
            _ => 1.0,
        }
    }

    /// Total offered rate across all sources at the current virtual time.
    fn total_offered_rate(&self) -> f64 {
        self.sources
            .iter()
            .map(|(_, spec)| spec.schedule.rate_at(self.now_ns))
            .sum()
    }

    /// Recomputes spill factors when the offered source rate changed
    /// (bitwise comparison — schedules are piecewise constant, so this
    /// fires once per phase, not per tick). No-op for stateless dataflows.
    fn refresh_spill(&mut self) {
        if !self.has_state {
            return;
        }
        let rate = self.total_offered_rate();
        if self.spill_rate_bits == Some(rate.to_bits()) {
            return;
        }
        self.spill_rate_bits = Some(rate.to_bits());
        self.spill_total_rate = rate;
        self.rebuild_cost_cache();
    }

    /// Number of metric-reporting instances of an operator.
    fn instances_of(&self, op: OperatorId) -> usize {
        match self.cfg.mode {
            EngineMode::Timely => self.timely_workers,
            _ => self.deployment.parallelism(op).max(1),
        }
    }

    /// Number of partitioned input queues for a non-source operator.
    fn partitions_of(&self, op: OperatorId) -> usize {
        match self.cfg.mode {
            EngineMode::Timely => 1,
            _ => self.deployment.parallelism(op).max(1),
        }
    }

    fn per_partition_capacity(&self) -> f64 {
        match self.cfg.mode {
            EngineMode::Flink => self.cfg.per_instance_queue,
            EngineMode::Heron => self.cfg.heron_per_instance_queue,
            EngineMode::Timely => f64::INFINITY,
        }
    }

    fn partition_shares(&self, op: OperatorId) -> Vec<f64> {
        match self.cfg.mode {
            EngineMode::Timely => vec![1.0],
            // The key-class axis of the deployment flows in here: a plan
            // with `key_classes > 1` spreads the hot class over that many
            // instances. At the default split of 1 this is bitwise the
            // classic single-hot-instance weighting.
            _ => self.profiles[op]
                .instance_weights_split(self.partitions_of(op), self.deployment.key_classes(op)),
        }
    }

    fn make_op_state(&self, op: OperatorId) -> OpState {
        let classes = if self.graph.is_source(op) {
            Vec::new()
        } else {
            let cap = self.per_partition_capacity();
            let mut classes: Vec<PartitionClass> = Vec::new();
            // Group consecutive partitions with bitwise-equal shares into
            // one class (uniform weights: one class; hot-key weights: the
            // hot instance plus one class for the cold rest).
            for share in self.partition_shares(op) {
                match classes.last_mut() {
                    Some(c) if c.share.to_bits() == share.to_bits() => c.count += 1,
                    _ => classes.push(PartitionClass {
                        queue: if self.cfg.track_record_latency {
                            EpochQueue::new(cap)
                        } else {
                            EpochQueue::new_untagged(cap)
                        },
                        share,
                        count: 1,
                    }),
                }
            }
            classes
        };
        let instances = self.instances_of(op);
        let accs = if self.graph.is_source(op) || self.cfg.mode == EngineMode::Timely {
            // Source instances (and Timely workers) all do identical work:
            // one accumulator class covers them.
            vec![AccClass {
                acc: InstanceAcc::default(),
                count: instances,
            }]
        } else {
            // Flink/Heron: instance k owns partition k, so accumulator
            // classes mirror the partition classes.
            classes
                .iter()
                .map(|c| AccClass {
                    acc: InstanceAcc::default(),
                    count: c.count,
                })
                .collect()
        };
        OpState {
            classes,
            accs,
            window_pending: 0.0,
            window_pending_oldest: None,
            next_fire_ns: self.window_period(op).map_or(u64::MAX, |p| self.now_ns + p),
        }
    }

    fn init_states(&mut self) {
        self.states = self
            .graph
            .operators()
            .map(|op| self.make_op_state(op))
            .collect();
    }

    fn window_period(&self, op: OperatorId) -> Option<u64> {
        self.window_periods.get(op.index()).copied().flatten()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The logical graph the engine executes.
    pub fn graph(&self) -> &LogicalGraph {
        &self.graph
    }

    /// Borrowing view of the current deployment — the allocation-free
    /// counterpart of [`FluidEngine::current_deployment`] for hot loops
    /// (the closed-loop harness reads the deployment every policy interval
    /// and every timeline sample). In Timely mode this lends a cached
    /// deployment where every operator's parallelism is the worker-pool
    /// size (each worker runs every operator).
    pub fn deployment(&self) -> &Deployment {
        match self.cfg.mode {
            EngineMode::Timely => &self.timely_deployment,
            _ => &self.deployment,
        }
    }

    /// The current deployment, cloned. In Timely mode every operator's
    /// parallelism reads as the worker-pool size.
    pub fn current_deployment(&self) -> Deployment {
        self.deployment().clone()
    }

    /// Current Timely worker count.
    pub fn timely_workers(&self) -> usize {
        self.timely_workers
    }

    /// Record latency distribution observed at the sinks so far.
    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    /// Epoch completion tracker.
    pub fn epochs(&self) -> &EpochTracker {
        &self.epochs
    }

    /// Statistics of the most recent tick.
    pub fn last_tick(&self) -> &TickStats {
        &self.last_tick
    }

    /// Whether the Heron backpressure signal is currently raised.
    pub fn backpressure_active(&self) -> bool {
        self.heron_backpressure
    }

    /// Current total input-queue length of an operator, in records.
    pub fn queue_len(&self, op: OperatorId) -> f64 {
        self.states.get(op.index()).map_or(0.0, |s| s.queued())
    }

    /// Durable backlog of a source, in records.
    pub fn backlog(&self, op: OperatorId) -> f64 {
        self.backlog.get(op.index()).copied().unwrap_or(0.0)
    }

    /// Requests a rescale to `plan` (Flink/Heron) taking effect after the
    /// configured redeployment latency, during which the job is down.
    pub fn request_rescale(&mut self, plan: Deployment) {
        plan.validate(&self.graph).expect("invalid rescale plan");
        self.ff.invalidate();
        let workers = self.timely_workers;
        self.pending_rescale = Some((self.now_ns + self.cfg.reconfig_latency_ns, plan, workers));
    }

    /// Requests a Timely worker-pool rescale.
    pub fn request_worker_rescale(&mut self, workers: usize) {
        self.ff.invalidate();
        let plan = self.deployment.clone();
        self.pending_rescale = Some((
            self.now_ns + self.cfg.reconfig_latency_ns,
            plan,
            workers.max(1),
        ));
    }

    /// `true` while a redeployment is in progress.
    pub fn is_halted(&self) -> bool {
        self.pending_rescale.is_some()
    }

    fn noise_factor(&mut self) -> f64 {
        if self.cfg.service_noise <= 0.0 {
            return 1.0;
        }
        // Box-Muller transform for a Gaussian factor, clamped to stay
        // positive and bounded.
        let u1: f64 = self.rng.gen_range(1e-12..1.0f64);
        let u2: f64 = self.rng.gen_range(0.0..1.0f64);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (1.0 + self.cfg.service_noise * g).clamp(0.25, 4.0)
    }

    /// Advances the simulation by one tick, always executing it in full.
    ///
    /// Drops any fast-forward state first: external tick-by-tick driving is
    /// the exact reference semantics. Harness loops that want macro-tick
    /// fast-forward call [`FluidEngine::tick_within`] instead.
    pub fn tick(&mut self) -> TickEvents {
        self.ff.invalidate();
        self.full_tick()
    }

    /// Advances the simulation by one tick, replaying a confirmed
    /// steady-state transition when possible.
    ///
    /// `horizon_ns` is the caller's *event horizon*: a promise that no
    /// external interaction (metrics-window close acted upon, rescale
    /// request, workload reconfiguration) happens for ticks ending at or
    /// before it. The engine derives the hard correctness boundaries —
    /// source phase changes, pending redeployments, windowed firings —
    /// itself; the horizon only stops it from spending probe work right
    /// before the caller is going to perturb the dataflow anyway.
    ///
    /// The outcome is bitwise identical to calling [`FluidEngine::tick`]
    /// in a loop: a replayed tick performs the same accumulator additions,
    /// latency samples and epoch advances the full tick would, and any
    /// state the engine cannot prove steady keeps executing in full. See
    /// [`crate::fastforward`] for the proof obligations.
    pub fn tick_within(&mut self, horizon_ns: u64) -> TickEvents {
        if self.cfg.fast_forward && self.ff.can_replay(self.now_ns) {
            return self.replay_tick();
        }
        if self.ff.is_armed() {
            // Armed but unable to replay: the transition's phase ended.
            self.ff.invalidate();
        }
        if self.probe_eligible(horizon_ns) && self.ff.should_probe() {
            self.probe_tick()
        } else {
            self.full_tick()
        }
    }

    /// Cumulative fast-forward work counters (probes, replayed ticks).
    pub fn fastforward_stats(&self) -> FastForwardStats {
        self.ff.stats
    }

    /// `true` while the engine holds a confirmed steady-state transition it
    /// can replay.
    pub fn fastforward_active(&self) -> bool {
        self.ff.is_armed()
    }

    /// Whether a probe is worth attempting at all this tick.
    fn probe_eligible(&self, horizon_ns: u64) -> bool {
        self.cfg.fast_forward
            && !self.has_windowed
            && self.cfg.mode != EngineMode::Timely
            && self.cfg.service_noise <= 0.0
            && self.pending_rescale.is_none()
            // The probe tick plus at least one replayed tick must fit
            // before the caller's next interaction...
            && self.now_ns + 2 * self.cfg.tick_ns <= horizon_ns
            // ...and before the next source phase boundary (a rate change
            // inside or right after the probe tick would make the captured
            // transition unsound).
            && self
                .next_phase_change()
                .is_none_or(|c| self.now_ns + 2 * self.cfg.tick_ns <= c)
    }

    /// The earliest source-schedule rate change strictly after `now`.
    fn next_phase_change(&self) -> Option<u64> {
        self.sources
            .iter()
            .filter_map(|(_, spec)| spec.schedule.next_change_after(self.now_ns))
            .min()
    }

    /// Applies the deferred tag shift accumulated by replayed ticks.
    fn materialize_tag_shift(&mut self) {
        if self.pending_tag_shift == 0 {
            return;
        }
        let shift = self.pending_tag_shift;
        self.pending_tag_shift = 0;
        for st in &mut self.states {
            for c in &mut st.classes {
                c.queue.shift_tags(shift);
            }
            if let Some(oldest) = st.window_pending_oldest.as_mut() {
                *oldest += shift;
            }
        }
    }

    /// Copies the structural fluid state into the fingerprint buffer.
    /// Returns `false` (probe abandoned) when the total span count exceeds
    /// the fingerprint budget.
    ///
    /// Untagged engines skip the span lists entirely: tags then have no
    /// observable effect (no latency, no epochs), so the `(count, total)`
    /// pair fully determines a queue's future behaviour.
    fn capture_fingerprint(&mut self) -> bool {
        let track = self.cfg.track_record_latency;
        let fp = &mut self.ff.fingerprint;
        fp.clear();
        fp.heron_backpressure = self.heron_backpressure;
        for (i, st) in self.states.iter().enumerate() {
            fp.backlog.push(self.backlog[i]);
            fp.window_pending.push(st.window_pending);
            for c in &st.classes {
                let q = &c.queue;
                fp.queues.push((q.span_count() as u32, q.len()));
                if track {
                    if fp.spans.len() + q.span_count() > MAX_FINGERPRINT_SPANS {
                        return false;
                    }
                    fp.spans.extend(q.spans().copied());
                }
            }
        }
        true
    }

    /// Whether the current state equals the fingerprint with every span tag
    /// advanced by exactly one tick — the fixed-point ("shift step") test.
    /// All float comparisons are bitwise: fast-forward replays only what it
    /// can prove exactly. Untagged engines compare totals only (their tags
    /// are unobservable).
    fn state_is_shifted(&self) -> bool {
        let track = self.cfg.track_record_latency;
        let fp = &self.ff.fingerprint;
        let tick_ns = self.cfg.tick_ns;
        if fp.heron_backpressure != self.heron_backpressure {
            return false;
        }
        let mut qi = 0usize;
        let mut si = 0usize;
        for (i, st) in self.states.iter().enumerate() {
            if fp.backlog[i].to_bits() != self.backlog[i].to_bits()
                || fp.window_pending[i].to_bits() != st.window_pending.to_bits()
            {
                return false;
            }
            for c in &st.classes {
                let q = &c.queue;
                let (count, total) = fp.queues[qi];
                qi += 1;
                if q.span_count() != count as usize || total.to_bits() != q.len().to_bits() {
                    return false;
                }
                if track {
                    for span in q.spans() {
                        let prev = fp.spans[si];
                        si += 1;
                        if span.records.to_bits() != prev.records.to_bits()
                            || span.emitted_ns != prev.emitted_ns + tick_ns
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// A full tick run with delta capture: accumulators start from zero so
    /// the values they end with are exactly this tick's addends, then get
    /// restored as `saved + addend` — the identical float operation an
    /// unprobed tick performs. If the post-state is a shift of the
    /// pre-state, the transition is armed for replay.
    fn probe_tick(&mut self) -> TickEvents {
        self.materialize_tag_shift();
        self.ff.stats.probes += 1;
        self.ff.stats.full_ticks += 1;
        if !self.capture_fingerprint() {
            self.ff.probe_failed();
            return self.tick_core();
        }
        let phase_end = self.next_phase_change();

        let mut saved = std::mem::take(&mut self.ff.saved);
        saved.clear();
        for st in &mut self.states {
            for class in &mut st.accs {
                saved.push(std::mem::take(&mut class.acc));
            }
        }
        let latency_mark = self.latency.len();

        let events = self.tick_core();

        let mut deltas = std::mem::take(&mut self.ff.deltas);
        deltas.clear();
        let mut saved_it = saved.iter();
        for st in &mut self.states {
            for class in &mut st.accs {
                let acc = &mut class.acc;
                let d = *acc;
                let s = saved_it.next().expect("class count stable within a tick");
                // Restore `saved + addend`, the identical float operation
                // the unprobed tick would have performed in place.
                acc.records_in = s.records_in + d.records_in;
                acc.records_out = s.records_out + d.records_out;
                acc.useful_ns = s.useful_ns + d.useful_ns;
                acc.wait_input_ns = s.wait_input_ns + d.wait_input_ns;
                acc.wait_output_ns = s.wait_output_ns + d.wait_output_ns;
                deltas.push(d);
            }
        }
        self.ff.saved = saved;
        self.ff.deltas = deltas;

        if self.state_is_shifted() {
            let samples = self.latency.samples();
            self.ff.latency.clear();
            self.ff.latency.extend_from_slice(&samples[latency_mark..]);
            self.ff.frontier_offset = self.last_frontier.map(|f| self.now_ns - f);
            self.ff.arm(phase_end.unwrap_or(u64::MAX));
        } else {
            self.ff.probe_failed();
        }
        events
    }

    /// Replays as many confirmed steady ticks as fit before `horizon_ns`,
    /// returning how many were replayed (zero when no transition is armed
    /// or fast-forward is disabled). The engine-side effects are bitwise
    /// identical to calling [`FluidEngine::tick`] that many times; callers
    /// with per-tick aggregation of their own (the closed-loop harness sums
    /// each tick's offered/emitted counts into timeline buckets) replicate
    /// it for the returned count — the per-tick values are constants, read
    /// once from [`FluidEngine::last_tick`].
    pub fn replay_steady(&mut self, horizon_ns: u64) -> u64 {
        if !self.cfg.fast_forward {
            return 0;
        }
        let ticks = self
            .ff
            .replayable_ticks(self.now_ns, self.cfg.tick_ns, horizon_ns);
        if ticks > 0 {
            self.replay_batch(ticks);
        }
        ticks
    }

    /// Replays the confirmed steady-state transition for `ticks` ticks: the
    /// accumulator additions, sink latency samples and epoch advances the
    /// full ticks would perform — and nothing else. Span tags shift lazily
    /// via `pending_tag_shift`. Accumulator sums are built by repeated
    /// addition of the captured addends — the exact float operations of
    /// tick-by-tick execution, not a multiplied approximation — with the
    /// five per-instance fields interleaved so the dependency chains
    /// pipeline.
    fn replay_batch(&mut self, ticks: u64) {
        let tick_ns = self.cfg.tick_ns;

        let mut di = 0usize;
        for st in &mut self.states {
            for class in &mut st.accs {
                let acc = &mut class.acc;
                let d = self.ff.deltas[di];
                di += 1;
                // `x += 0.0` is the identity on these non-negative sums,
                // so wholly idle classes are skipped without changing
                // the result (and zero addends inside the loop are cheap
                // pipelined adds, not worth branching over).
                if d == InstanceAcc::default() {
                    continue;
                }
                for _ in 0..ticks {
                    acc.records_in += d.records_in;
                    acc.records_out += d.records_out;
                    acc.useful_ns += d.useful_ns;
                    acc.wait_input_ns += d.wait_input_ns;
                    acc.wait_output_ns += d.wait_output_ns;
                }
            }
        }
        if self.cfg.track_record_latency {
            if !self.ff.latency.is_empty() {
                for _ in 0..ticks {
                    for i in 0..self.ff.latency.len() {
                        let (latency_ns, weight) = self.ff.latency[i];
                        self.latency.record(latency_ns, weight);
                    }
                }
            }
            match self.ff.frontier_offset {
                Some(offset) => {
                    for i in 1..=ticks {
                        let now = self.now_ns + i * tick_ns;
                        self.epochs.advance(now, Some(now - offset));
                    }
                }
                None => {
                    for i in 1..=ticks {
                        self.epochs.advance(self.now_ns + i * tick_ns, None);
                    }
                }
            }
            self.pending_tag_shift += ticks * tick_ns;
        }
        self.now_ns += ticks * tick_ns;
        self.ff.stats.replayed_ticks += ticks;
    }

    /// Single-tick replay (the [`FluidEngine::tick_within`] path).
    fn replay_tick(&mut self) -> TickEvents {
        self.replay_batch(1);
        TickEvents::default()
    }

    /// A fully executed tick (tag shift materialized first).
    fn full_tick(&mut self) -> TickEvents {
        self.materialize_tag_shift();
        self.ff.stats.full_ticks += 1;
        self.tick_core()
    }

    /// The tick body: one full simulation step.
    fn tick_core(&mut self) -> TickEvents {
        self.refresh_spill();
        let mut events = TickEvents::default();
        let tick_ns = self.cfg.tick_ns;
        let tick_end = self.now_ns + tick_ns;
        // Recycle last tick's stats buffers (O(1) epoch-stamped clear).
        let mut stats = std::mem::take(&mut self.last_tick);
        stats.clear();

        // Redeployment window: the job is down. Sources accumulate durable
        // backlog; every instance only waits.
        if let Some(resume_at) = self.pending_rescale.as_ref().map(|p| p.0) {
            if tick_end < resume_at {
                self.halted_tick(&mut stats, tick_ns);
                self.now_ns = tick_end;
                self.last_tick = stats;
                return events;
            }
            // Deploy now: apply the plan, redistribute queued records into
            // the new partitioning (the savepoint restored operator state),
            // resize accumulators.
            let (_, plan, workers) = self.pending_rescale.take().expect("checked above");
            self.halted_tick(&mut stats, tick_ns);
            self.deployment = plan;
            self.timely_workers = workers;
            self.rebuild_timely_deployment();
            self.apply_new_partitioning();
            self.heron_backpressure = false;
            events.deployed = Some(self.current_deployment());
            self.now_ns = tick_end;
            stats.halted = true;
            self.last_tick = stats;
            return events;
        }

        match self.cfg.mode {
            EngineMode::Flink | EngineMode::Heron => self.tick_blocking(&mut stats, tick_ns),
            EngineMode::Timely => self.tick_timely(&mut stats, tick_ns),
        }

        // Heron spout-pausing signal update: driven by the fullest partition
        // anywhere in the dataflow.
        if self.cfg.mode == EngineMode::Heron {
            let max_fill = self
                .states
                .iter()
                .flat_map(|s| s.classes.iter())
                .map(|c| c.queue.fill_fraction())
                .fold(0.0f64, f64::max);
            if self.heron_backpressure {
                if max_fill < self.cfg.heron_low_watermark {
                    self.heron_backpressure = false;
                }
            } else if max_fill > self.cfg.heron_high_watermark {
                self.heron_backpressure = true;
            }
        }
        stats.backpressure = self.heron_backpressure;

        self.now_ns = tick_end;

        // Epoch tracking: the frontier is the oldest source tag still queued
        // or buffered anywhere. Untagged engines have no meaningful tags,
        // so they skip epoch accounting entirely (replay does the same).
        if self.cfg.track_record_latency {
            let mut frontier: Option<u64> = None;
            for st in &self.states {
                let candidates = st
                    .classes
                    .iter()
                    .filter_map(|c| c.queue.oldest_ns())
                    .chain(st.window_pending_oldest);
                for c in candidates {
                    frontier = Some(frontier.map_or(c, |f: u64| f.min(c)));
                }
            }
            self.last_frontier = frontier;
            self.epochs.advance(self.now_ns, frontier);
        }

        self.last_tick = stats;
        events
    }

    /// Rebuilds queue partitioning after a rescale, preserving contents.
    fn apply_new_partitioning(&mut self) {
        for op in self.graph.operators() {
            let new_state = self.make_op_state(op);
            let old = std::mem::replace(&mut self.states[op.index()], new_state);
            // Collect old spans (each class's representative queue scaled
            // by its partition count, oldest first) and repartition them
            // into the new classes.
            let mut spans: Vec<Span> = Vec::new();
            for mut class in old.classes {
                let from = spans.len();
                class.queue.pop_into(f64::INFINITY, &mut spans);
                if class.count > 1 {
                    let mult = class.count as f64;
                    for s in &mut spans[from..] {
                        s.records *= mult;
                    }
                }
            }
            spans.sort_by_key(|s| s.emitted_ns);
            let st = &mut self.states[op.index()];
            st.window_pending = old.window_pending;
            st.window_pending_oldest = old.window_pending_oldest;
            st.next_fire_ns = old.next_fire_ns;
            for span in spans {
                st.push_partitioned(span.emitted_ns, span.records);
            }
        }
        self.rebuild_cost_cache();
    }

    /// A tick during which the job is down: only wait time accumulates and
    /// durable sources build backlog.
    fn halted_tick(&mut self, stats: &mut TickStats, tick_ns: u64) {
        stats.halted = true;
        let tick_s = tick_ns as f64 / 1e9;
        for (op, spec) in self.sources.iter() {
            let offered = spec.schedule.rate_at(self.now_ns) * tick_s;
            stats.offered.insert(op, offered);
            stats.emitted.insert(op, 0.0);
            if spec.durable_backlog {
                self.backlog[op.index()] += offered;
            }
        }
        for st in &mut self.states {
            for class in &mut st.accs {
                class.acc.wait_input_ns += tick_ns as f64;
            }
        }
    }

    /// One tick of the blocking (Flink) or signal-based (Heron) personality.
    fn tick_blocking(&mut self, stats: &mut TickStats, tick_ns: u64) {
        let tick_s = tick_ns as f64 / 1e9;
        for i in 0..self.reverse_topo.len() {
            let op = self.reverse_topo[i];
            if self.graph.is_source(op) {
                self.source_emit(op, stats, tick_s);
            } else {
                let noise = self.noise_factor();
                self.operator_process(op, tick_ns, noise);
            }
        }
    }

    /// One tick of the Timely personality: a shared worker pool is
    /// water-filled across operators with pending work; queues are
    /// unbounded and sources are never delayed.
    fn tick_timely(&mut self, stats: &mut TickStats, tick_ns: u64) {
        let tick_s = tick_ns as f64 / 1e9;
        // Sources emit first and fully.
        for i in 0..self.graph.sources().len() {
            let op = self.graph.sources()[i];
            self.source_emit(op, stats, tick_s);
        }

        // Fair-share allocation of `workers × tick` nanoseconds.
        let mut budget = self.timely_workers as f64 * tick_ns as f64;
        // Only work queued at tick start is eligible (one-tick pipeline
        // latency per hop, matching the blocking personality).
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        let mut noises = std::mem::take(&mut self.noise_scratch);
        eligible.clear();
        eligible.resize(self.graph.len(), 0.0);
        noises.clear();
        noises.resize(self.graph.len(), 0.0);
        for i in 0..self.non_source_topo.len() {
            let op = self.non_source_topo[i];
            eligible[op.index()] = self.states[op.index()].queued();
        }
        for i in 0..self.non_source_topo.len() {
            let op = self.non_source_topo[i];
            noises[op.index()] = self.noise_factor();
        }

        for _round in 0..4 {
            let active = self
                .non_source_topo
                .iter()
                .filter(|op| eligible[op.index()] > 1e-9)
                .count();
            if active == 0 || budget <= 1.0 {
                break;
            }
            let share = budget / active as f64;
            for i in 0..self.non_source_topo.len() {
                let op = self.non_source_topo[i];
                // Eligibility was fixed when the round's share was computed:
                // an operator's own entry only changes when it is processed,
                // exactly once per round.
                if eligible[op.index()] <= 1e-9 {
                    continue;
                }
                let real_cost = self.cost_cache[op.index()].1 * noises[op.index()];
                let want_records = eligible[op.index()];
                let afford = share / real_cost;
                let n = want_records.min(afford);
                if n <= 1e-12 {
                    continue;
                }
                let used_ns = n * real_cost;
                budget -= used_ns;
                eligible[op.index()] -= n;
                self.timely_drain(op, n, used_ns);
            }
        }
        self.eligible_scratch = eligible;
        self.noise_scratch = noises;

        // Remaining budget is spinning time: in Timely, workers burn it
        // polling empty queues. Spread it as input-wait across operators.
        if budget > 0.0 {
            let n_ops = self.non_source_topo.len().max(1) as f64;
            for i in 0..self.non_source_topo.len() {
                let op = self.non_source_topo[i];
                let st = &mut self.states[op.index()];
                let per_inst = budget / n_ops / st.instances().max(1) as f64;
                for class in &mut st.accs {
                    class.acc.wait_input_ns += per_inst;
                }
            }
        }
    }

    /// Effective instrumented cost per record including the instrumentation
    /// overhead itself.
    fn effective_instr_cost(&self, profile: &OperatorProfile, p: usize) -> f64 {
        let mut c = profile.instrumented_cost_ns(p);
        if self.cfg.instrumentation.enabled {
            c += self.cfg.instrumentation.per_record_cost_ns;
        }
        c.max(1e-3)
    }

    /// Effective real (wall) cost per record.
    fn effective_real_cost(&self, profile: &OperatorProfile, p: usize) -> f64 {
        self.effective_instr_cost(profile, p) + profile.hidden_cost_ns(p)
    }

    /// Source emission for one tick (blocking personalities consult
    /// downstream queue space; Timely never blocks).
    fn source_emit(&mut self, op: OperatorId, stats: &mut TickStats, tick_s: f64) {
        let (offered, generation_cost_ns, durable_backlog) = {
            let spec = &self.sources[op];
            (
                spec.schedule.rate_at(self.now_ns) * tick_s,
                spec.generation_cost_ns,
                spec.durable_backlog,
            )
        };
        stats.offered.insert(op, offered);

        let p = self.deployment.parallelism(op).max(1) as f64;
        let tick_ns = self.cfg.tick_ns as f64;

        let mut budget = offered + self.backlog[op.index()];

        // Generation capacity of the source instances themselves.
        if generation_cost_ns > 0.0 {
            let cap = p * tick_ns / generation_cost_ns;
            budget = budget.min(cap);
        }

        // Heron: a raised backpressure signal pauses the spout entirely.
        if self.cfg.mode == EngineMode::Heron && self.heron_backpressure {
            budget = 0.0;
        }

        // Blocking personalities: cannot emit past downstream queue space.
        let mut emit = budget;
        if self.cfg.mode != EngineMode::Timely {
            for &(to, weight) in &self.down_edges[op.index()] {
                let limit = self.states[to.index()].accept_limit();
                if weight > 0.0 {
                    emit = emit.min(limit / weight);
                }
            }
        }
        emit = emit.max(0.0);

        {
            let now = self.now_ns;
            let edges = &self.down_edges[op.index()];
            let states = &mut self.states;
            for &(to, weight) in edges {
                states[to.index()].push_partitioned(now, emit * weight);
            }
        }

        // Backlog bookkeeping.
        let leftover = (offered + self.backlog[op.index()]) - emit;
        self.backlog[op.index()] = if durable_backlog {
            leftover.max(0.0)
        } else {
            0.0
        };

        stats.emitted.insert(op, emit);

        // Source instance counters: emission is useful output work.
        let st = &mut self.states[op.index()];
        let n_inst = st.instances().max(1) as f64;
        let busy_per_inst = if generation_cost_ns > 0.0 {
            (emit / n_inst) * generation_cost_ns
        } else {
            // Costless generators: model a nominal utilization proportional
            // to achieved vs offered so rates stay defined.
            let frac = if offered > 0.0 {
                (emit / offered).min(1.0)
            } else {
                0.0
            };
            frac * tick_ns * 0.5
        };
        for class in &mut st.accs {
            class.acc.records_out += emit / n_inst;
            class.acc.useful_ns += busy_per_inst.min(tick_ns);
            class.acc.wait_output_ns += (tick_ns - busy_per_inst).max(0.0);
        }
    }

    /// The output-space limit for an operator about to emit through
    /// per-record output: total input records it may process such that
    /// every downstream partition accepts its share.
    fn output_space_limit(&self, op: OperatorId, selectivity: f64) -> f64 {
        if selectivity <= 0.0 {
            return f64::INFINITY;
        }
        let mut limit = f64::INFINITY;
        for &(to, weight) in &self.down_edges[op.index()] {
            let accept = self.states[to.index()].accept_limit();
            if weight > 0.0 {
                limit = limit.min(accept / (selectivity * weight));
            }
        }
        limit
    }

    /// Processes one non-source operator for one tick of the blocking
    /// personalities.
    fn operator_process(&mut self, op: OperatorId, tick_ns: u64, noise: f64) {
        let i = op.index();
        let (instr_base, real_base) = self.cost_cache[i];
        let instr_cost = instr_base * noise;
        let real_cost = real_base * noise;
        let cap_inst = tick_ns as f64 / real_cost;
        let output = self.output_modes[i].expect("non-source operators have profiles");

        // Per-instance desired drains from their own partitions, one entry
        // per partition class; the total scales each class by its count.
        let mut takes = std::mem::take(&mut self.takes_scratch);
        takes.clear();
        takes.extend(
            self.states[i]
                .classes
                .iter()
                .map(|c| c.queue.len().min(cap_inst)),
        );
        let want_total: f64 = takes
            .iter()
            .zip(&self.states[i].classes)
            .map(|(t, c)| t * c.count as f64)
            .sum();

        // Output-space constraint (windowed operators buffer internally, so
        // only their flush is space-limited).
        let sel = output.average_selectivity();
        let mut out_limited = false;
        if want_total > 0.0 && matches!(output, OutputMode::PerRecord { .. }) {
            let limit = self.output_space_limit(op, sel);
            if want_total > limit {
                let factor = limit / want_total;
                for t in &mut takes {
                    *t *= factor;
                }
                out_limited = true;
            }
        }

        // Drain each partition and route the output. Sink latency is the
        // only consumer of `is_sink` here; untracked runs skip it.
        let is_sink = self.graph.is_sink(op) && self.cfg.track_record_latency;
        let tick_end = self.now_ns + self.cfg.tick_ns;

        let mut out_total = 0.0f64;
        let mut win_buf = 0.0f64;
        let mut win_oldest: Option<u64> = None;
        let mut drained = std::mem::take(&mut self.span_scratch);
        drained.clear();
        {
            let st = &mut self.states[i];
            for (k, take) in takes.iter().enumerate() {
                if *take <= 0.0 {
                    continue;
                }
                let class = &mut st.classes[k];
                let from = drained.len();
                class.queue.pop_into(*take, &mut drained);
                // The representative queue drained one partition's worth;
                // routing and latency work on class totals.
                if class.count > 1 {
                    let mult = class.count as f64;
                    for s in &mut drained[from..] {
                        s.records *= mult;
                    }
                }
            }
        }
        // Coalesce same-tag spans before routing. The p partitions drain
        // fragments of the same source pushes (identical emission tags);
        // routing each fragment separately costs p × p' queue pushes per
        // tick and fragments the receiving queues' span lists in turn.
        // Sorting by tag and merging makes routing one push per distinct
        // tag and keeps downstream span lists short — the dominant cost of
        // large converged deployments. Record weights are preserved, so
        // latency accounting is unchanged.
        if drained.len() > 1 {
            drained.sort_unstable_by_key(|s| s.emitted_ns);
            let mut w = 0usize;
            for r in 1..drained.len() {
                if drained[r].emitted_ns == drained[w].emitted_ns {
                    drained[w].records += drained[r].records;
                } else {
                    w += 1;
                    drained[w] = drained[r];
                }
            }
            drained.truncate(w + 1);
        }
        match output {
            OutputMode::PerRecord { selectivity } => {
                for span in &drained {
                    if is_sink {
                        self.latency
                            .record(tick_end.saturating_sub(span.emitted_ns), span.records);
                    }
                    let out = span.records * selectivity;
                    out_total += out;
                    let edges = &self.down_edges[i];
                    let states = &mut self.states;
                    for &(to, weight) in edges {
                        states[to.index()].push_partitioned(span.emitted_ns, out * weight);
                    }
                }
            }
            OutputMode::Windowed { selectivity, .. } => {
                for span in &drained {
                    win_buf += span.records * selectivity;
                    win_oldest =
                        Some(win_oldest.map_or(span.emitted_ns, |o: u64| o.min(span.emitted_ns)));
                }
            }
        }

        // Instance accounting: every instance of class k processed
        // takes[k] (the per-partition drain).
        {
            let st = &mut self.states[i];
            let n_inst = st.instances();
            let n_out_share = if n_inst == 0 {
                0.0
            } else {
                out_total / n_inst as f64
            };
            for (k, class) in st.accs.iter_mut().enumerate() {
                let share = takes.get(k).copied().unwrap_or(0.0);
                let busy = (share * instr_cost).min(tick_ns as f64);
                let hidden = share * (real_cost - instr_cost);
                let wait = (tick_ns as f64 - busy - hidden).max(0.0);
                let acc = &mut class.acc;
                acc.records_in += share;
                acc.records_out += n_out_share;
                acc.useful_ns += busy;
                if out_limited {
                    acc.wait_output_ns += wait;
                } else {
                    acc.wait_input_ns += wait;
                }
            }
            if win_buf > 0.0 {
                st.window_pending += win_buf;
                st.window_pending_oldest = match (st.window_pending_oldest, win_oldest) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        self.takes_scratch = takes;
        self.span_scratch = drained;

        self.maybe_fire_window(op);
    }

    /// Timely drain path: `n` records off the operator's shared queue,
    /// `used_ns` of worker time spent.
    fn timely_drain(&mut self, op: OperatorId, n: f64, used_ns: f64) {
        let i = op.index();
        let output = self.output_modes[i].expect("non-source operators have profiles");
        let mut spans = std::mem::take(&mut self.span_scratch);
        spans.clear();
        if let Some(class) = self.states[i].classes.first_mut() {
            class.queue.pop_into(n, &mut spans);
        }

        // Busy time spread over worker-instances; only the instrumented
        // fraction counts as useful.
        let instr_fraction = {
            let (instr, real) = self.cost_cache[i];
            instr / real
        };
        {
            let st = &mut self.states[i];
            let w = st.instances().max(1) as f64;
            let drained: f64 = spans.iter().map(|s| s.records).sum();
            for class in &mut st.accs {
                class.acc.records_in += drained / w;
                class.acc.useful_ns += used_ns * instr_fraction / w;
            }
        }

        let is_sink = self.graph.is_sink(op) && self.cfg.track_record_latency;
        let tick_end = self.now_ns + self.cfg.tick_ns;

        match output {
            OutputMode::PerRecord { selectivity } => {
                let mut out_total = 0.0;
                for span in &spans {
                    if is_sink {
                        self.latency
                            .record(tick_end.saturating_sub(span.emitted_ns), span.records);
                    }
                    let out = span.records * selectivity;
                    out_total += out;
                    let edges = &self.down_edges[i];
                    let states = &mut self.states;
                    for &(to, weight) in edges {
                        states[to.index()].push_partitioned(span.emitted_ns, out * weight);
                    }
                }
                let st = &mut self.states[i];
                let w = st.instances().max(1) as f64;
                for class in &mut st.accs {
                    class.acc.records_out += out_total / w;
                }
            }
            OutputMode::Windowed { selectivity, .. } => {
                let st = &mut self.states[i];
                for span in &spans {
                    st.window_pending += span.records * selectivity;
                    st.window_pending_oldest = Some(
                        st.window_pending_oldest
                            .map_or(span.emitted_ns, |o| o.min(span.emitted_ns)),
                    );
                }
            }
        }
        self.span_scratch = spans;

        self.maybe_fire_window(op);
    }

    /// Fires a windowed operator's buffered output when its period elapses.
    fn maybe_fire_window(&mut self, op: OperatorId) {
        let Some(period) = self.window_period(op) else {
            return;
        };
        let i = op.index();
        let tick_end = self.now_ns + self.cfg.tick_ns;
        let (fire, pending, oldest) = {
            let st = &mut self.states[i];
            if st.next_fire_ns == u64::MAX {
                st.next_fire_ns = tick_end + period;
            }
            if tick_end >= st.next_fire_ns {
                st.next_fire_ns += period;
                let p = st.window_pending;
                let o = st.window_pending_oldest;
                st.window_pending = 0.0;
                st.window_pending_oldest = None;
                (true, p, o)
            } else {
                (false, 0.0, None)
            }
        };
        if !fire || pending <= 0.0 {
            return;
        }
        let tag = oldest.unwrap_or(self.now_ns);
        let n_inst = self.states[i].instances().max(1) as f64;
        if self.graph.is_sink(op) {
            if self.cfg.track_record_latency {
                self.latency.record(tick_end.saturating_sub(tag), pending);
            }
            let st = &mut self.states[i];
            for class in &mut st.accs {
                class.acc.records_out += pending / n_inst;
            }
            return;
        }
        let mut spilled = 0.0f64;
        {
            let edges = &self.down_edges[i];
            let states = &mut self.states;
            for &(to, weight) in edges {
                let st = &mut states[to.index()];
                // Window flushes are bursts: a bounded receiving queue may not
                // absorb everything; the spill stays pending for the next tick.
                let accept = st.accept_limit();
                let send = (pending * weight).min(accept);
                st.push_partitioned(tag, send);
                spilled = spilled.max(pending - send / weight.max(1e-12));
            }
        }
        if spilled > 0.0 {
            let st = &mut self.states[i];
            st.window_pending += spilled;
            st.window_pending_oldest = Some(st.window_pending_oldest.map_or(tag, |o| o.min(tag)));
            // Retry the remainder at the next tick rather than next period.
            st.next_fire_ns = tick_end + self.cfg.tick_ns;
        }
        let emitted = pending - spilled;
        if emitted > 0.0 {
            let st = &mut self.states[i];
            for class in &mut st.accs {
                class.acc.records_out += emitted / n_inst;
            }
        }
    }

    /// Closes the instrumentation window into a fresh snapshot. Allocates;
    /// control loops that close a window every policy interval should hold
    /// a snapshot buffer and use [`FluidEngine::collect_snapshot_into`].
    pub fn collect_snapshot(&mut self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::with_len(self.graph.len());
        self.collect_snapshot_into(&mut snap);
        snap
    }

    /// Closes the instrumentation window into `snap` (cleared first):
    /// per-instance metrics since the previous snapshot, plus the offered
    /// rate of every source. Reusing one snapshot buffer across windows
    /// recycles its per-operator instance vectors, so the steady-state
    /// metrics path performs no heap allocation.
    ///
    /// Record counts are rounded to integers; useful time is scaled by the
    /// same rounding factor so the *measured true rates* equal the fluid
    /// model's exact rates (no quantization bias at ceiling boundaries).
    pub fn collect_snapshot_into(&mut self, snap: &mut MetricsSnapshot) {
        let window_ns = self.now_ns - self.snapshot_start_ns;
        snap.clear();
        for i in 0..self.states.len() {
            let op = OperatorId(i);
            let is_source = self.graph.is_source(op);
            let st = &mut self.states[i];
            let metrics = snap.operator_slot(op);
            for class in &st.accs {
                let acc = &class.acc;
                let dominant = if is_source {
                    acc.records_out
                } else {
                    acc.records_in
                };
                let rounded = dominant.round();
                // Scale every field by the dominant count's rounding
                // factor so measured rates *and selectivity* equal the
                // fluid model's exact values.
                let factor = if dominant > 0.0 {
                    rounded / dominant
                } else {
                    0.0
                };
                // Clamp sequentially so `useful + waits <= window` (the
                // scaling factor can push useful a hair past the exact
                // complement of the accumulated waits).
                let useful_ns = ((acc.useful_ns * factor).round() as u64).min(window_ns);
                let wait_input_ns = (acc.wait_input_ns.round() as u64).min(window_ns - useful_ns);
                let wait_output_ns =
                    (acc.wait_output_ns.round() as u64).min(window_ns - useful_ns - wait_input_ns);
                let row = InstanceMetrics {
                    records_in: (acc.records_in * factor).round() as u64,
                    records_out: (acc.records_out * factor).round() as u64,
                    useful_ns,
                    window_ns,
                    wait_input_ns,
                    wait_output_ns,
                };
                // Every instance of the class did identical work: emit the
                // row once per represented instance.
                for _ in 0..class.count {
                    metrics.instances.push(row);
                }
            }
            for class in &mut st.accs {
                class.acc = InstanceAcc::default();
            }
        }
        for (op, spec) in self.sources.iter() {
            snap.set_source_rate(op, spec.schedule.rate_at(self.now_ns));
        }
        // State dimension: stateful operators report their per-instance
        // state size at the current rate and parallelism. Stateless
        // pipelines leave the map empty, so their snapshots stay bitwise
        // what they were before the state model existed.
        if self.has_state {
            let rate = self.total_offered_rate();
            for op in self.graph.operators() {
                if self.graph.is_source(op) {
                    continue;
                }
                let profile = &self.profiles[op];
                if profile.state.is_some() {
                    snap.set_state_bytes(op, profile.state_bytes(self.instances_of(op), rate));
                }
            }
        }
        self.snapshot_start_ns = self.now_ns;
    }

    /// Runs the engine for `duration_ns`, ignoring events.
    pub fn run_for(&mut self, duration_ns: u64) {
        let end = self.now_ns + duration_ns;
        while self.now_ns < end {
            let _ = self.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StateProfile;
    use crate::source::RateSchedule;
    use ds2_core::graph::GraphBuilder;

    fn chain(caps: &[(f64, f64)]) -> (LogicalGraph, Vec<OperatorId>) {
        let mut b = GraphBuilder::new();
        let src = b.operator("src");
        let mut ids = vec![src];
        for (i, _) in caps.iter().enumerate() {
            let op = b.operator(format!("op{i}"));
            b.connect(*ids.last().unwrap(), op);
            ids.push(op);
        }
        (b.build().unwrap(), ids)
    }

    fn engine_with(
        caps: &[(f64, f64)],
        rate: f64,
        parallelism: &[usize],
        cfg: EngineConfig,
    ) -> (FluidEngine, Vec<OperatorId>) {
        let (graph, ids) = chain(caps);
        let mut profiles = ProfileMap::new();
        for (i, &(cap, sel)) in caps.iter().enumerate() {
            profiles.insert(ids[i + 1], OperatorProfile::with_capacity(cap, sel));
        }
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(rate));
        let mut d = Deployment::uniform(&graph, 1);
        for (i, &p) in parallelism.iter().enumerate() {
            d.set(ids[i], p);
        }
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            ..cfg
        };
        let e = FluidEngine::new(graph, profiles, sources, d, cfg);
        (e, ids)
    }

    #[test]
    fn wellprovisioned_chain_keeps_up() {
        // Source 1000/s, op capacity 2000/s: everything flows, queue small.
        let (mut e, ids) =
            engine_with(&[(2_000.0, 1.0)], 1_000.0, &[1, 1], EngineConfig::default());
        e.run_for(10_000_000_000);
        assert!(e.queue_len(ids[1]) < 100.0);
        let snap = e.collect_snapshot();
        let m = snap.operator(ids[1]).unwrap();
        let rate = m.aggregate_observed_processing_rate().unwrap();
        assert!((rate - 1_000.0).abs() < 50.0, "observed {rate}");
        // True rate reveals the 2000/s capacity despite only 1000/s load.
        let true_rate = m.aggregate_true_processing_rate().unwrap();
        assert!((true_rate - 2_000.0).abs() < 100.0, "true {true_rate}");
    }

    #[test]
    fn bottleneck_limits_observed_source_rate_flink() {
        // Source 1000/s, op capacity 400/s: Flink backpressure throttles the
        // source to ~400/s once queues fill.
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 1], EngineConfig::default());
        e.run_for(60_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let src = snap.operator(ids[0]).unwrap();
        let obs = src.aggregate_observed_output_rate().unwrap();
        assert!((obs - 400.0).abs() < 40.0, "observed source rate {obs}");
        // The bottleneck's true processing rate equals its capacity.
        let m = snap.operator(ids[1]).unwrap();
        let tr = m.aggregate_true_processing_rate().unwrap();
        assert!((tr - 400.0).abs() < 40.0, "true {tr}");
    }

    #[test]
    fn downstream_of_bottleneck_sees_starved_input() {
        // src 1000/s -> a(cap 400) -> b(cap 2000): b only sees 400/s but its
        // true rate still measures ~2000/s.
        let (mut e, ids) = engine_with(
            &[(400.0, 1.0), (2_000.0, 1.0)],
            1_000.0,
            &[1, 1, 1],
            EngineConfig::default(),
        );
        e.run_for(60_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let m = snap.operator(ids[2]).unwrap();
        let obs = m.aggregate_observed_processing_rate().unwrap();
        let true_rate = m.aggregate_true_processing_rate().unwrap();
        assert!((obs - 400.0).abs() < 40.0, "observed {obs}");
        assert!((true_rate - 2_000.0).abs() < 200.0, "true {true_rate}");
    }

    #[test]
    fn parallelism_scales_throughput() {
        // op capacity 400/s but 3 instances: sustains 1000/s.
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 3], EngineConfig::default());
        e.run_for(20_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let src = snap.operator(ids[0]).unwrap();
        let obs = src.aggregate_observed_output_rate().unwrap();
        assert!((obs - 1_000.0).abs() < 50.0, "observed source rate {obs}");
    }

    #[test]
    fn selectivity_multiplies_downstream_load() {
        // src 100/s -> a(cap 1000, sel 5) -> b(cap 300): b needs 500/s but
        // caps at 300/s, so backpressure throttles the source to 60/s.
        let cfg = EngineConfig {
            per_instance_queue: 500.0,
            ..Default::default()
        };
        let (mut e, ids) = engine_with(&[(1_000.0, 5.0), (300.0, 1.0)], 100.0, &[1, 1, 1], cfg);
        e.run_for(120_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(20_000_000_000);
        let snap = e.collect_snapshot();
        let src = snap.operator(ids[0]).unwrap();
        let obs = src.aggregate_observed_output_rate().unwrap();
        assert!((obs - 60.0).abs() < 10.0, "observed source rate {obs}");
    }

    #[test]
    fn heron_spout_pausing_oscillates() {
        // Heron with small queues for test speed: the spout pauses when the
        // bottleneck queue crosses the high watermark and resumes below the
        // low watermark, producing on/off source behaviour.
        let cfg = EngineConfig {
            mode: EngineMode::Heron,
            heron_per_instance_queue: 2_000.0,
            ..Default::default()
        };
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 1], cfg);
        let mut paused_ticks = 0;
        let mut running_ticks = 0;
        for _ in 0..6_000 {
            e.tick();
            if e.backpressure_active() {
                paused_ticks += 1;
            } else {
                running_ticks += 1;
            }
        }
        assert!(paused_ticks > 100, "spout never paused");
        assert!(running_ticks > 100, "spout never resumed");
        // Long-run throughput still matches the bottleneck capacity.
        let snap = e.collect_snapshot();
        let m = snap.operator(ids[1]).unwrap();
        let obs = m.aggregate_observed_processing_rate().unwrap();
        assert!((obs - 400.0).abs() < 60.0, "observed {obs}");
    }

    #[test]
    fn timely_queues_grow_without_backpressure() {
        let cfg = EngineConfig {
            mode: EngineMode::Timely,
            timely_workers: 1,
            ..Default::default()
        };
        // op needs 1000/s * 2.5ms = 2.5 workers; with 1 worker queues grow.
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 1], cfg);
        e.run_for(10_000_000_000);
        assert!(
            e.queue_len(ids[1]) > 4_000.0,
            "queue should grow unboundedly"
        );
        // Source was never throttled.
        let snap = e.collect_snapshot();
        let src = snap.operator(ids[0]).unwrap();
        let obs = src.aggregate_observed_output_rate().unwrap();
        assert!(
            (obs - 1_000.0).abs() < 10.0,
            "source must not be delayed, got {obs}"
        );
    }

    #[test]
    fn timely_enough_workers_keep_up() {
        let cfg = EngineConfig {
            mode: EngineMode::Timely,
            timely_workers: 4,
            ..Default::default()
        };
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 1], cfg);
        e.run_for(10_000_000_000);
        assert!(e.queue_len(ids[1]) < 100.0);
        // Epochs complete promptly.
        assert!(e.epochs().completed().len() >= 8);
        let r = e.epochs().recorder();
        assert!(r.quantile(0.9).unwrap() < 1_000_000_000);
    }

    #[test]
    fn rescale_halts_then_applies() {
        let cfg = EngineConfig {
            reconfig_latency_ns: 1_000_000_000,
            ..Default::default()
        };
        let (mut e, ids) = engine_with(&[(400.0, 1.0)], 1_000.0, &[1, 1], cfg);
        e.run_for(2_000_000_000);
        let mut plan = e.current_deployment();
        plan.set(ids[1], 3);
        e.request_rescale(plan.clone());
        assert!(e.is_halted());
        let mut deployed = None;
        for _ in 0..200 {
            let ev = e.tick();
            if ev.deployed.is_some() {
                deployed = ev.deployed;
                break;
            }
        }
        let d = deployed.expect("deploy completes");
        assert_eq!(d.parallelism(ids[1]), 3);
        assert!(!e.is_halted());
        assert_eq!(e.current_deployment().parallelism(ids[1]), 3);
    }

    #[test]
    fn rescale_preserves_queued_records() {
        let cfg = EngineConfig {
            reconfig_latency_ns: 500_000_000,
            ..Default::default()
        };
        // Bottleneck builds a queue, then we rescale: queued records must
        // survive repartitioning.
        let (mut e, ids) = engine_with(&[(100.0, 1.0)], 1_000.0, &[1, 1], cfg);
        e.run_for(5_000_000_000);
        let before = e.queue_len(ids[1]);
        assert!(before > 1_000.0);
        let mut plan = e.current_deployment();
        plan.set(ids[1], 4);
        e.request_rescale(plan);
        for _ in 0..100 {
            if e.tick().deployed.is_some() {
                break;
            }
        }
        let after = e.queue_len(ids[1]);
        assert!(
            (after - before).abs() < before * 0.05,
            "queued records lost: {before} -> {after}"
        );
    }

    #[test]
    fn durable_source_accumulates_backlog_during_halt() {
        let (graph, ids) = chain(&[(4_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(ids[1], OperatorProfile::with_capacity(4_000.0, 1.0));
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::durable(1_000.0));
        let d = Deployment::uniform(&graph, 1);
        let cfg = EngineConfig {
            reconfig_latency_ns: 2_000_000_000,
            instrumentation: InstrumentationConfig::disabled(),
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d.clone(), cfg);
        e.run_for(1_000_000_000);
        e.request_rescale(d);
        // During the 2 s halt, 2000 records accumulate.
        e.run_for(1_900_000_000);
        assert!(e.backlog(ids[0]) > 1_500.0);
        e.run_for(5_000_000_000);
        // Backlog drains once the job is back up (capacity 4000 > 1000).
        assert!(e.backlog(ids[0]) < 100.0, "backlog {}", e.backlog(ids[0]));
    }

    #[test]
    fn sink_latency_recorded() {
        let (mut e, _) = engine_with(&[(2_000.0, 1.0)], 1_000.0, &[1, 1], EngineConfig::default());
        e.run_for(5_000_000_000);
        assert!(!e.latency().is_empty());
        // Well-provisioned: latency within a couple of ticks.
        let p99 = e.latency().quantile(0.99).unwrap();
        assert!(p99 <= 5 * e.config().tick_ns, "p99 {p99}");
    }

    #[test]
    fn underprovisioned_latency_grows() {
        let (mut e, _) = engine_with(&[(500.0, 1.0)], 1_000.0, &[1, 1], EngineConfig::default());
        e.run_for(30_000_000_000);
        let p50 = e.latency().median().unwrap();
        assert!(
            p50 > 1_000_000_000,
            "median latency should exceed 1 s, got {p50}"
        );
    }

    #[test]
    fn skew_limits_effective_capacity() {
        // 4 instances of cap 300 with 50% hot share: effective 600/s, below
        // the 1000/s offered. The hot partition's bounded queue fills and
        // throttles the source even though the cold instances idle.
        let (graph, ids) = chain(&[(300.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(300.0, 1.0).with_skew(0.5),
        );
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(1_000.0));
        let mut d = Deployment::uniform(&graph, 1);
        d.set(ids[1], 4);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            per_instance_queue: 1_000.0,
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        e.run_for(60_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let src = snap.operator(ids[0]).unwrap();
        let obs = src.aggregate_observed_output_rate().unwrap();
        assert!((obs - 600.0).abs() < 60.0, "skew-limited rate {obs}");
        // The hot instance is saturated; the others are not.
        let m = snap.operator(ids[1]).unwrap();
        let hot_util = m.instances[0].utilization();
        let cold_util = m.instances[1].utilization();
        assert!(hot_util > 0.9, "hot {hot_util}");
        assert!(cold_util < 0.5, "cold {cold_util}");
    }

    /// The skew scenario above, but with a splittable hot class and a
    /// deployment that splits it in two: the weights become uniform
    /// (0.25 each), the effective capacity reaches 1200/s, and the
    /// offered 1000/s flows without throttling — same parallelism.
    #[test]
    fn class_split_relieves_hot_key() {
        let (graph, ids) = chain(&[(300.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(300.0, 1.0).with_splittable_skew(0.5),
        );
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(1_000.0));
        let mut d = Deployment::uniform(&graph, 1);
        d.set(ids[1], 4);
        d.set_key_classes(ids[1], 2);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            per_instance_queue: 1_000.0,
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        e.run_for(60_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let obs = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((obs - 1_000.0).abs() < 50.0, "split rate {obs}");
    }

    /// A rescale that only changes the key-class split (same parallelism
    /// everywhere) must go through the normal redeploy machinery and take
    /// effect: throughput recovers from the skew-limited 600/s to the full
    /// offered rate.
    #[test]
    fn class_split_deploys_via_rescale_path() {
        let (graph, ids) = chain(&[(300.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(300.0, 1.0).with_splittable_skew(0.5),
        );
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(1_000.0));
        let mut d = Deployment::uniform(&graph, 1);
        d.set(ids[1], 4);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            per_instance_queue: 1_000.0,
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d.clone(), cfg);
        e.run_for(30_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let before = e
            .collect_snapshot()
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((before - 600.0).abs() < 60.0, "pre-split rate {before}");

        let mut plan = d;
        plan.set_key_classes(ids[1], 2);
        assert_ne!(&plan, e.deployment(), "split plans must compare unequal");
        e.request_rescale(plan.clone());
        e.run_for(30_000_000_000);
        assert_eq!(e.deployment().key_classes(ids[1]), 2);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let after = e
            .collect_snapshot()
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((after - 1_000.0).abs() < 50.0, "post-split rate {after}");
    }

    /// An over-budget stateful operator pays the spill multiplier: capacity
    /// halves and the source is throttled to it; the snapshot reports the
    /// per-instance state size.
    #[test]
    fn spill_penalty_throttles_and_state_is_reported() {
        let (graph, ids) = chain(&[(1_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        // 1e6 bytes per rec/s: 8e8 bytes at 800/s, over the 2e8 budget on
        // one instance -> every record costs 2x -> 500/s effective.
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(1_000.0, 1.0).with_state(StateProfile {
                bytes_per_source_rate: 1e6,
                spill_cost_multiplier: 2.0,
                budget_per_instance_bytes: 2e8,
                ..Default::default()
            }),
        );
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(800.0));
        let d = Deployment::uniform(&graph, 1);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            per_instance_queue: 1_000.0,
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        e.run_for(30_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let obs = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((obs - 500.0).abs() < 50.0, "spill-limited rate {obs}");
        assert_eq!(snap.state_bytes(ids[1]), Some(8e8));

        // Four instances bring per-instance state to 2e8 = budget (not
        // over): no spill, and the offered 800/s flows.
        let mut plan = e.current_deployment();
        plan.set(ids[1], 4);
        e.request_rescale(plan);
        e.run_for(30_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let obs = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((obs - 800.0).abs() < 50.0, "in-budget rate {obs}");
        assert_eq!(snap.state_bytes(ids[1]), Some(2e8));
    }

    /// A stateful operator that never exceeds its budget behaves bitwise
    /// like its stateless twin — the spill machinery must not perturb a
    /// single float on the in-budget path.
    #[test]
    fn in_budget_state_is_bitwise_inert() {
        let build = |stateful: bool| {
            let (graph, ids) = chain(&[(500.0, 1.2), (700.0, 1.0)]);
            let mut profiles = ProfileMap::new();
            let mut p1 = OperatorProfile::with_capacity(500.0, 1.2);
            if stateful {
                p1 = p1.with_state(StateProfile {
                    base_bytes: 1e8,
                    bytes_per_source_rate: 1e4,
                    spill_cost_multiplier: 3.0,
                    budget_per_instance_bytes: f64::INFINITY,
                });
            }
            profiles.insert(ids[1], p1);
            profiles.insert(ids[2], OperatorProfile::with_capacity(700.0, 1.0));
            let mut sources = BTreeMap::new();
            sources.insert(ids[0], SourceSpec::constant(900.0));
            let mut d = Deployment::uniform(&graph, 1);
            d.set(ids[1], 2);
            d.set(ids[2], 2);
            let cfg = EngineConfig {
                instrumentation: InstrumentationConfig::disabled(),
                ..Default::default()
            };
            (FluidEngine::new(graph, profiles, sources, d, cfg), ids)
        };
        let (mut a, ids) = build(false);
        let (mut b, _) = build(true);
        a.run_for(20_000_000_000);
        b.run_for(20_000_000_000);
        let sa = a.collect_snapshot();
        let sb = b.collect_snapshot();
        for &op in &ids {
            assert_eq!(
                sa.operator(op),
                sb.operator(op),
                "{op}: in-budget state must not change metrics"
            );
        }
        assert_eq!(sa.state_bytes(ids[1]), None);
        assert_eq!(sb.state_bytes(ids[1]), Some(5e7 + 4.5e6));
    }

    #[test]
    fn windowed_operator_bursts() {
        // Windowed operator with 1 s period: output arrives in bursts.
        let (graph, ids) = chain(&[(10_000.0, 1.0), (10_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(10_000.0, 1.0).windowed(1_000_000_000),
        );
        profiles.insert(ids[2], OperatorProfile::with_capacity(10_000.0, 1.0));
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(1_000.0));
        let d = Deployment::uniform(&graph, 1);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        let mut max_push = 0.0f64;
        let mut nonzero_ticks = 0;
        for _ in 0..500 {
            let before = e.queue_len(ids[2]);
            e.tick();
            let after = e.queue_len(ids[2]);
            let delta = after - before;
            if delta > 1.0 {
                nonzero_ticks += 1;
                max_push = max_push.max(delta);
            }
        }
        // Bursts: few pushes, each carrying ~1 s of records.
        assert!(
            nonzero_ticks <= 10,
            "expected bursts, got {nonzero_ticks} push ticks"
        );
        assert!(max_push > 500.0, "burst size {max_push}");
    }

    #[test]
    fn deterministic_with_seed() {
        let cfg = EngineConfig {
            service_noise: 0.1,
            ..Default::default()
        };
        let run = |cfg: EngineConfig| {
            let (mut e, ids) = engine_with(&[(800.0, 1.0)], 1_000.0, &[1, 1], cfg);
            e.run_for(10_000_000_000);
            (e.queue_len(ids[1]), e.latency().median())
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn phased_schedule_changes_load() {
        let (graph, ids) = chain(&[(3_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(ids[1], OperatorProfile::with_capacity(3_000.0, 1.0));
        let mut sources = BTreeMap::new();
        sources.insert(
            ids[0],
            SourceSpec::constant(0.0).with_schedule(RateSchedule::steps(vec![
                (0, 2_000.0),
                (5_000_000_000, 500.0),
            ])),
        );
        let d = Deployment::uniform(&graph, 1);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        e.run_for(5_000_000_000);
        let snap = e.collect_snapshot();
        let obs1 = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        e.run_for(5_000_000_000);
        let snap = e.collect_snapshot();
        let obs2 = snap
            .operator(ids[0])
            .unwrap()
            .aggregate_observed_output_rate()
            .unwrap();
        assert!((obs1 - 2_000.0).abs() < 100.0);
        assert!((obs2 - 500.0).abs() < 50.0);
        assert_eq!(snap.source_rate(ids[0]), Some(500.0));
    }

    #[test]
    fn hidden_overhead_invisible_to_instrumentation() {
        // Real capacity 500/s (2ms real cost: 1ms instrumented + 1ms
        // hidden); instrumentation believes 1000/s.
        let (graph, ids) = chain(&[(1_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(1_000.0, 1.0)
                .with_hidden(1_000_000.0, crate::profile::ScalingCurve::Linear),
        );
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(2_000.0));
        let d = Deployment::uniform(&graph, 1);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            ..Default::default()
        };
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        e.run_for(30_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let m = snap.operator(ids[1]).unwrap();
        let true_rate = m.aggregate_true_processing_rate().unwrap();
        let obs = m.aggregate_observed_processing_rate().unwrap();
        // Throughput is 500/s but instrumentation-measured capacity ~1000/s.
        assert!((obs - 500.0).abs() < 50.0, "observed {obs}");
        assert!((true_rate - 1_000.0).abs() < 100.0, "true {true_rate}");
    }

    /// Drives `a` with plain exact ticks and `b` through the fast-forward
    /// path, asserting every observable stays bitwise identical.
    fn assert_engines_agree(a: &mut FluidEngine, b: &mut FluidEngine, ids: &[OperatorId]) {
        assert_eq!(a.now_ns(), b.now_ns());
        for &op in ids {
            assert_eq!(
                a.queue_len(op).to_bits(),
                b.queue_len(op).to_bits(),
                "queue {op} diverged"
            );
            assert_eq!(a.backlog(op).to_bits(), b.backlog(op).to_bits());
        }
        assert_eq!(a.latency().samples().len(), b.latency().samples().len());
        assert_eq!(a.latency(), b.latency());
        assert_eq!(a.epochs().completed(), b.epochs().completed());
        let sa = a.collect_snapshot();
        let sb = b.collect_snapshot();
        assert_eq!(sa, sb, "snapshots diverged");
    }

    #[test]
    fn fastforward_matches_exact_on_steady_chain() {
        let mk = || {
            engine_with(
                &[(2_000.0, 1.3), (4_000.0, 1.0)],
                1_000.0,
                &[1, 1, 1],
                EngineConfig::default(),
            )
        };
        let (mut exact, ids) = mk();
        let (mut fast, _) = mk();
        for _ in 0..4_000 {
            exact.tick();
            fast.tick_within(u64::MAX);
        }
        let stats = fast.fastforward_stats();
        assert!(
            stats.replayed_ticks > 3_000,
            "steady chain should mostly replay: {stats:?}"
        );
        assert_engines_agree(&mut exact, &mut fast, &ids);
    }

    /// A rescale requested mid-interval cancels fast-forward immediately,
    /// and the halt + redeploy + recovery still match exact execution.
    #[test]
    fn request_rescale_cancels_fastforward() {
        let cfg = EngineConfig {
            reconfig_latency_ns: 1_000_000_000,
            ..Default::default()
        };
        let mk = || engine_with(&[(600.0, 1.0)], 1_000.0, &[1, 2], cfg.clone());
        let (mut exact, ids) = mk();
        let (mut fast, _) = mk();
        for _ in 0..2_000 {
            exact.tick();
            fast.tick_within(u64::MAX);
        }
        assert!(fast.fastforward_active(), "steady state should be armed");
        let mut plan = fast.current_deployment();
        plan.set(ids[1], 4);
        fast.request_rescale(plan.clone());
        exact.request_rescale(plan);
        assert!(
            !fast.fastforward_active(),
            "request_rescale must cancel fast-forward"
        );
        let mut deployed = false;
        for _ in 0..2_000 {
            let ea = exact.tick();
            let eb = fast.tick_within(u64::MAX);
            assert_eq!(ea.deployed.is_some(), eb.deployed.is_some());
            deployed |= eb.deployed.is_some();
        }
        assert!(deployed, "redeploy completed");
        assert_eq!(fast.current_deployment().parallelism(ids[1]), 4);
        assert_engines_agree(&mut exact, &mut fast, &ids);
    }

    /// Phase boundaries in the source schedule bound replay validity: the
    /// engine re-probes in each phase and stays bitwise exact across the
    /// rate changes.
    #[test]
    fn fastforward_respects_phase_boundaries() {
        let mk = || {
            let (graph, ids) = chain(&[(3_000.0, 1.0)]);
            let mut profiles = ProfileMap::new();
            profiles.insert(ids[1], OperatorProfile::with_capacity(3_000.0, 1.0));
            let mut sources = BTreeMap::new();
            sources.insert(
                ids[0],
                SourceSpec::constant(0.0).with_schedule(RateSchedule::steps(vec![
                    (0, 2_000.0),
                    (10_000_000_000, 500.0),
                    (20_000_000_000, 2_500.0),
                ])),
            );
            let d = Deployment::uniform(&graph, 1);
            let cfg = EngineConfig {
                instrumentation: InstrumentationConfig::disabled(),
                ..Default::default()
            };
            (FluidEngine::new(graph, profiles, sources, d, cfg), ids)
        };
        let (mut exact, ids) = mk();
        let (mut fast, _) = mk();
        for _ in 0..3_500 {
            exact.tick();
            fast.tick_within(u64::MAX);
        }
        let stats = fast.fastforward_stats();
        assert!(
            stats.replayed_ticks > 2_000,
            "every constant phase should replay: {stats:?}"
        );
        assert!(stats.probes >= 3, "re-probed per phase: {stats:?}");
        assert_engines_agree(&mut exact, &mut fast, &ids);
    }

    /// Windowed operators make the whole dataflow fast-forward ineligible:
    /// window firings are tied to absolute time, so a tick is never a pure
    /// shift of its predecessor. The engine must not even *probe* — the
    /// nexmark windowed query families (Q5/Q8/Q11) rely on this bail-out
    /// staying pinned; if windowed replay support is ever added, this test
    /// is the reminder that its proof obligations change.
    #[test]
    fn windowed_topologies_are_fastforward_ineligible() {
        let (graph, ids) = chain(&[(10_000.0, 1.0), (10_000.0, 1.0)]);
        let mut profiles = ProfileMap::new();
        // One windowed operator in an otherwise steady chain suffices.
        profiles.insert(
            ids[1],
            OperatorProfile::with_capacity(10_000.0, 1.0).windowed(1_000_000_000),
        );
        profiles.insert(ids[2], OperatorProfile::with_capacity(10_000.0, 1.0));
        let mut sources = BTreeMap::new();
        sources.insert(ids[0], SourceSpec::constant(1_000.0));
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig::disabled(),
            fast_forward: true,
            ..Default::default()
        };
        let d = Deployment::uniform(&graph, 1);
        let mut e = FluidEngine::new(graph, profiles, sources, d, cfg);
        for _ in 0..2_000 {
            e.tick_within(u64::MAX);
        }
        let stats = e.fastforward_stats();
        assert!(!e.fastforward_active(), "windowed dataflow armed replay");
        assert_eq!(stats.probes, 0, "windowed dataflow probed: {stats:?}");
        assert_eq!(stats.replayed_ticks, 0, "windowed dataflow replayed");
        assert_eq!(stats.full_ticks, 2_000);
    }

    #[test]
    fn fastforward_disabled_runs_full_ticks() {
        let cfg = EngineConfig {
            fast_forward: false,
            ..Default::default()
        };
        let (mut e, _) = engine_with(&[(2_000.0, 1.0)], 1_000.0, &[1, 1], cfg);
        for _ in 0..200 {
            e.tick_within(u64::MAX);
        }
        let stats = e.fastforward_stats();
        assert_eq!(stats.replayed_ticks, 0);
        assert_eq!(stats.probes, 0);
        assert_eq!(stats.full_ticks, 200);
    }

    #[test]
    fn measured_capacity_has_no_quantization_bias() {
        // Capacity exactly 100/s, load 1000/s over 30 instances: the
        // snapshot's rounding must not bias the measured rate below 100,
        // which would flip ceil(1000/100) from 10 to 11.
        let (mut e, ids) = engine_with(&[(100.0, 1.0)], 1_000.0, &[1, 30], EngineConfig::default());
        e.run_for(10_000_000_000);
        let _ = e.collect_snapshot();
        e.run_for(10_000_000_000);
        let snap = e.collect_snapshot();
        let m = snap.operator(ids[1]).unwrap();
        let avg = m.average_true_processing_rate().unwrap();
        let requirement = (1_000.0 / avg - 1e-9).ceil() as usize;
        assert_eq!(requirement, 10, "avg capacity measured {avg}");
    }
}
