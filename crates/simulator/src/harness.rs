//! The closed control loop: engine + metrics + controller (paper Fig. 5).
//!
//! Once per policy interval the harness closes the instrumentation window,
//! hands the snapshot to the [`ScalingController`], and applies any
//! requested rescale through the engine's redeployment mechanism. All paper
//! experiments (Figures 1, 6, 7 and Tables 3–4) are runs of this loop with
//! different controllers, engine personalities and workloads.

use std::collections::BTreeMap;

use ds2_core::controller::{ControllerFaultStats, ControllerVerdict, ScalingController};
use ds2_core::deployment::Deployment;
use ds2_core::graph::OperatorId;
use ds2_core::snapshot::MetricsSnapshot;

use crate::engine::FluidEngine;
use crate::faults::{ActuationOutcome, FaultInjector, FaultPlan, FaultTally};
use crate::latency::LatencyRecorder;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Policy interval: metrics window length between controller calls.
    pub policy_interval_ns: u64,
    /// Total simulated run time.
    pub run_duration_ns: u64,
    /// Timeline sampling resolution (offered/observed rates etc.).
    pub timeline_resolution_ns: u64,
    /// Timely mode: convert per-operator plans into a global worker count
    /// (the §4.3 summation rule) and rescale the worker pool instead.
    pub timely: bool,
    /// Deterministic fault plan injected into metric snapshots and rescale
    /// actuation; `None` (default) runs the loop fault-free.
    pub faults: Option<FaultPlan>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            policy_interval_ns: 10_000_000_000,
            run_duration_ns: 600_000_000_000,
            timeline_resolution_ns: 1_000_000_000,
            timely: false,
            faults: None,
        }
    }
}

/// One timeline sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Sample time (end of the bucket), nanoseconds.
    pub t_ns: u64,
    /// Total offered source rate over the bucket, records/s.
    pub offered_rate: f64,
    /// Total achieved (emitted) source rate over the bucket, records/s.
    pub observed_rate: f64,
    /// Parallelism per operator at sample time.
    pub parallelism: BTreeMap<OperatorId, usize>,
    /// Timely worker-pool size at sample time.
    pub timely_workers: usize,
    /// Whether Heron backpressure was active at sample time.
    pub backpressure: bool,
    /// Whether the job was down (redeploying) at sample time.
    pub halted: bool,
    /// Total queued records across operators.
    pub total_queued: f64,
}

/// One applied scaling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionPoint {
    /// Time the controller issued the command.
    pub at_ns: u64,
    /// The plan it requested.
    pub plan: Deployment,
    /// The worker count it mapped to (Timely mode only).
    pub timely_workers: Option<usize>,
}

/// The outcome of a closed-loop run.
///
/// Equality is exact (bitwise on every float): the fast-forward
/// equivalence guarantee is that a run with macro-tick replay enabled
/// produces a `RunResult` *equal* to the same run executed tick by tick.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Periodic samples.
    pub timeline: Vec<TimelinePoint>,
    /// Scaling commands applied, in order.
    pub decisions: Vec<DecisionPoint>,
    /// Deployment at the end of the run.
    pub final_deployment: Deployment,
    /// Worker-pool size at the end of the run (Timely mode).
    pub final_workers: usize,
    /// Record latency distribution across the whole run.
    pub latency: LatencyRecorder,
    /// Completed epochs `(index, latency_ns)`.
    pub epochs: Vec<(u64, u64)>,
    /// Faults injected into the run (all-zero for fault-free runs).
    pub faults: FaultTally,
    /// The controller's degraded-input counters (all-zero for controllers
    /// without hardening).
    pub controller_faults: ControllerFaultStats,
}

impl RunResult {
    /// Time of the last scaling decision, if any — after it the
    /// configuration was stable to the end of the run.
    pub fn last_decision_ns(&self) -> Option<u64> {
        self.decisions.last().map(|d| d.at_ns)
    }

    /// Parallelism sequence of one operator: initial value plus the value
    /// after each decision.
    pub fn parallelism_steps(&self, op: OperatorId, initial: usize) -> Vec<usize> {
        let mut steps = vec![initial];
        for d in &self.decisions {
            let p = d.plan.parallelism(op);
            if *steps.last().unwrap() != p {
                steps.push(p);
            }
        }
        steps
    }

    /// Mean observed/offered ratio over the last `n` timeline points.
    pub fn final_achieved_ratio(&self, n: usize) -> f64 {
        let pts: Vec<&TimelinePoint> = self.timeline.iter().rev().take(n).collect();
        let offered: f64 = pts.iter().map(|p| p.offered_rate).sum();
        let observed: f64 = pts.iter().map(|p| p.observed_rate).sum();
        if offered <= 0.0 {
            1.0
        } else {
            observed / offered
        }
    }
}

/// Drives a [`ScalingController`] against a [`FluidEngine`].
pub struct ClosedLoop<C: ScalingController> {
    engine: FluidEngine,
    controller: C,
    cfg: HarnessConfig,
}

impl<C: ScalingController> ClosedLoop<C> {
    /// Creates a closed loop.
    pub fn new(engine: FluidEngine, controller: C, cfg: HarnessConfig) -> Self {
        Self {
            engine,
            controller,
            cfg,
        }
    }

    /// Read access to the engine (e.g. for post-run inspection).
    pub fn engine(&self) -> &FluidEngine {
        &self.engine
    }

    /// Read access to the controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Consumes the loop, yielding the controller (e.g. to recover a pooled
    /// [`PolicyWorkspace`](ds2_core::policy::PolicyWorkspace) after a run).
    pub fn into_controller(self) -> C {
        self.controller
    }

    /// Runs the loop for the configured duration and reports the outcome.
    pub fn run(&mut self) -> RunResult {
        let mut snapshot = MetricsSnapshot::with_len(self.engine.graph().len());
        self.run_reusing(&mut snapshot)
    }

    /// Like [`ClosedLoop::run`], collecting metrics windows into a
    /// caller-owned snapshot buffer. The buffer is cleared (epoch-stamped)
    /// and refilled each policy interval, so a loop driven this way closes
    /// windows without heap allocation — and matrix runners can recycle one
    /// buffer across many runs.
    pub fn run_reusing(&mut self, snapshot: &mut MetricsSnapshot) -> RunResult {
        let mut timeline = Vec::new();
        let mut decisions = Vec::new();
        let mut injector = self
            .cfg
            .faults
            .map(|plan| FaultInjector::new(plan, self.cfg.run_duration_ns));

        let start = self.engine.now_ns();
        let end = start + self.cfg.run_duration_ns;
        let mut next_policy = start + self.cfg.policy_interval_ns;
        let mut next_sample = start + self.cfg.timeline_resolution_ns;
        let mut bucket_offered = 0.0f64;
        let mut bucket_emitted = 0.0f64;
        let mut bucket_start = start;

        while self.engine.now_ns() < end {
            // Event horizon: the engine may fast-forward provably steady
            // ticks, but the harness promises no external interaction —
            // metrics-window close, control decision — before this time.
            // Workload phase boundaries are derived by the engine itself
            // from the source schedules it owns.
            let horizon = next_policy.min(next_sample).min(end);

            // Batch-replay a confirmed steady state up to the horizon. The
            // per-tick stats are constants during replay, so the bucket
            // sums replicate exactly the additions the tick-by-tick loop
            // below would have performed.
            let replayed = self.engine.replay_steady(horizon);
            let (backpressure, halted) = if replayed > 0 {
                let stats = self.engine.last_tick();
                let offered = stats.total_offered();
                let emitted = stats.total_emitted();
                for _ in 0..replayed {
                    bucket_offered += offered;
                    bucket_emitted += emitted;
                }
                (stats.backpressure, stats.halted)
            } else {
                let events = self.engine.tick_within(horizon);
                let (backpressure, halted) = {
                    let stats = self.engine.last_tick();
                    bucket_offered += stats.total_offered();
                    bucket_emitted += stats.total_emitted();
                    (stats.backpressure, stats.halted)
                };

                if let Some(deployment) = events.deployed {
                    self.controller
                        .on_deployed(self.engine.now_ns(), &deployment);
                    // Metrics accumulated while the job was down describe
                    // no useful execution: drop them so the first
                    // post-deploy window is clean.
                    self.engine.collect_snapshot_into(snapshot);
                    next_policy = self.engine.now_ns() + self.cfg.policy_interval_ns;
                }
                (backpressure, halted)
            };

            let now = self.engine.now_ns();

            if now >= next_sample {
                let bucket_s = (now - bucket_start) as f64 / 1e9;
                let parallelism = self.engine.deployment().to_map();
                let total_queued = self
                    .engine
                    .graph()
                    .operators()
                    .map(|op| self.engine.queue_len(op))
                    .sum();
                timeline.push(TimelinePoint {
                    t_ns: now,
                    offered_rate: if bucket_s > 0.0 {
                        bucket_offered / bucket_s
                    } else {
                        0.0
                    },
                    observed_rate: if bucket_s > 0.0 {
                        bucket_emitted / bucket_s
                    } else {
                        0.0
                    },
                    parallelism,
                    timely_workers: self.engine.timely_workers(),
                    backpressure,
                    halted,
                    total_queued,
                });
                bucket_offered = 0.0;
                bucket_emitted = 0.0;
                bucket_start = now;
                next_sample += self.cfg.timeline_resolution_ns;
            }

            if now >= next_policy && !self.engine.is_halted() {
                self.engine.collect_snapshot_into(snapshot);
                // Metric faults mutate only the collected snapshot, never
                // the engine, so fast-forward replay stays valid.
                if let Some(inj) = injector.as_mut() {
                    inj.apply_metrics(
                        snapshot,
                        self.engine.graph(),
                        self.engine.deployment(),
                        now - start,
                    );
                }
                // The deployment is borrowed, not cloned: on the steady
                // path (no action, or a plan equal to the current one) the
                // policy interval allocates nothing here.
                let verdict = self
                    .controller
                    .on_metrics(now, snapshot, self.engine.deployment());
                match verdict {
                    ControllerVerdict::NoAction => {}
                    ControllerVerdict::Rescale(plan) => {
                        if self.cfg.timely {
                            let workers: usize = self
                                .engine
                                .graph()
                                .operators()
                                .filter(|op| !self.engine.graph().is_source(*op))
                                .map(|op| plan.parallelism(op))
                                .sum::<usize>()
                                .max(1);
                            if workers == self.engine.timely_workers() {
                                // No effective change: acknowledge without
                                // a redeploy so the controller can proceed.
                                self.controller.on_deployed(now, self.engine.deployment());
                            } else {
                                decisions.push(DecisionPoint {
                                    at_ns: now,
                                    plan: plan.clone(),
                                    timely_workers: Some(workers),
                                });
                                self.engine.request_worker_rescale(workers);
                            }
                        } else if plan == *self.engine.deployment() {
                            self.controller.on_deployed(now, self.engine.deployment());
                        } else if let Some(inj) = injector.as_mut() {
                            let outcome = inj.actuation(
                                &plan,
                                self.engine.deployment(),
                                self.engine.graph(),
                                now - start,
                            );
                            match outcome {
                                ActuationOutcome::Silent => {
                                    // The command vanishes: no redeploy, no
                                    // acknowledgement, nothing recorded.
                                }
                                ActuationOutcome::Timeout => {
                                    // The job pays the redeploy downtime but
                                    // comes back on its old configuration;
                                    // the acknowledgement reports that.
                                    let old = self.engine.deployment().clone();
                                    self.engine.request_rescale(old);
                                }
                                ActuationOutcome::Land(landed) => {
                                    decisions.push(DecisionPoint {
                                        at_ns: now,
                                        plan: landed.clone(),
                                        timely_workers: None,
                                    });
                                    self.engine.request_rescale(landed);
                                }
                            }
                        } else {
                            decisions.push(DecisionPoint {
                                at_ns: now,
                                plan: plan.clone(),
                                timely_workers: None,
                            });
                            self.engine.request_rescale(plan);
                        }
                    }
                }
                next_policy = now + self.cfg.policy_interval_ns;
            }
        }

        RunResult {
            timeline,
            decisions,
            final_deployment: self.engine.current_deployment(),
            final_workers: self.engine.timely_workers(),
            latency: self.engine.latency().clone(),
            epochs: self.engine.epochs().completed().to_vec(),
            faults: injector.map(|i| i.tally()).unwrap_or_default(),
            controller_faults: self.controller.fault_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, EngineMode, InstrumentationConfig};
    use crate::profile::{OperatorProfile, ProfileMap};
    use crate::source::SourceSpec;
    use ds2_core::graph::GraphBuilder;
    use ds2_core::manager::{ManagerConfig, ScalingManager};
    use ds2_core::policy::PolicyConfig;

    fn wordcount_engine(
        rate: f64,
        fm_cap: f64,
        cnt_cap: f64,
        init: (usize, usize),
        cfg: EngineConfig,
    ) -> (FluidEngine, OperatorId, OperatorId, OperatorId) {
        let mut b = GraphBuilder::new();
        let src = b.operator("source");
        let fm = b.operator("flat_map");
        let cnt = b.operator("count");
        b.connect(src, fm);
        b.connect(fm, cnt);
        let graph = b.build().unwrap();
        let mut profiles = ProfileMap::new();
        profiles.insert(fm, OperatorProfile::with_capacity(fm_cap, 2.0));
        profiles.insert(cnt, OperatorProfile::with_capacity(cnt_cap, 1.0));
        let mut sources = BTreeMap::new();
        sources.insert(src, SourceSpec::constant(rate));
        let mut d = Deployment::uniform(&graph, 1);
        d.set(fm, init.0);
        d.set(cnt, init.1);
        let cfg = EngineConfig {
            instrumentation: InstrumentationConfig {
                enabled: false,
                per_record_cost_ns: 0.0,
            },
            ..cfg
        };
        let engine = FluidEngine::new(graph, profiles, sources, d, cfg);
        (engine, src, fm, cnt)
    }

    /// End-to-end: DS2 over the harness scales an under-provisioned
    /// word count to the optimal configuration in one decision.
    #[test]
    fn ds2_scales_wordcount_in_one_decision() {
        let (engine, _src, fm, cnt) = wordcount_engine(
            1_000.0,
            100.0,
            500.0,
            (1, 1),
            EngineConfig {
                reconfig_latency_ns: 5_000_000_000,
                ..Default::default()
            },
        );
        let manager = ScalingManager::new(
            engine.graph().clone(),
            ManagerConfig {
                warmup_intervals: 1,
                ..Default::default()
            },
        );
        let mut the_loop = ClosedLoop::new(
            engine,
            manager,
            HarnessConfig {
                policy_interval_ns: 10_000_000_000,
                run_duration_ns: 120_000_000_000,
                ..Default::default()
            },
        );
        let result = the_loop.run();
        assert_eq!(result.decisions.len(), 1, "one decision expected");
        // 1000/s / 100 = 10 flat_map; 2000/s / 500 = 4 count.
        assert_eq!(result.final_deployment.parallelism(fm), 10);
        assert_eq!(result.final_deployment.parallelism(cnt), 4);
        // After convergence the job keeps up.
        assert!(result.final_achieved_ratio(20) > 0.95);
    }

    /// Scale-down: an over-provisioned job shrinks without undershooting.
    #[test]
    fn ds2_scales_down_overprovisioned() {
        let (engine, _src, fm, cnt) = wordcount_engine(
            1_000.0,
            100.0,
            500.0,
            (30, 12),
            EngineConfig {
                reconfig_latency_ns: 5_000_000_000,
                ..Default::default()
            },
        );
        let manager = ScalingManager::new(
            engine.graph().clone(),
            ManagerConfig {
                warmup_intervals: 1,
                ..Default::default()
            },
        );
        let mut the_loop = ClosedLoop::new(
            engine,
            manager,
            HarnessConfig {
                policy_interval_ns: 10_000_000_000,
                run_duration_ns: 180_000_000_000,
                ..Default::default()
            },
        );
        let result = the_loop.run();
        assert_eq!(result.final_deployment.parallelism(fm), 10);
        assert_eq!(result.final_deployment.parallelism(cnt), 4);
        assert!(result.final_achieved_ratio(20) > 0.95, "no undershoot");
    }

    /// Timely mode: the harness converts the plan into a worker count.
    #[test]
    fn ds2_timely_worker_scaling() {
        let (engine, _src, _fm, _cnt) = wordcount_engine(
            1_000.0,
            1_000.0,
            1_000.0,
            (1, 1),
            EngineConfig {
                mode: EngineMode::Timely,
                timely_workers: 1,
                reconfig_latency_ns: 5_000_000_000,
                ..Default::default()
            },
        );
        // Timely has no backpressure, so the achieved-ratio signal is always
        // 1.0: minor-change suppression must be disabled (min_change 0).
        let manager = ScalingManager::new(
            engine.graph().clone(),
            ManagerConfig {
                warmup_intervals: 1,
                min_change: 0,
                policy: PolicyConfig::default(),
                ..Default::default()
            },
        );
        let mut the_loop = ClosedLoop::new(
            engine,
            manager,
            HarnessConfig {
                policy_interval_ns: 10_000_000_000,
                run_duration_ns: 120_000_000_000,
                timely: true,
                ..Default::default()
            },
        );
        let result = the_loop.run();
        // flat_map needs 1 worker (1000/s at 1000/s cap), count needs 2
        // (2000/s at 1000/s cap): 3 workers total.
        assert_eq!(result.final_workers, 3);
        assert!(!result.decisions.is_empty());
        assert_eq!(result.decisions[0].timely_workers, Some(3));
    }
}
