//! FIFO fluid queues tagged with source emission time.
//!
//! Queue entries carry the (virtual) time the records were originally
//! emitted by a source. The tag propagates through the dataflow as records
//! are transformed, which gives the simulator exact end-to-end latency and
//! epoch-completion accounting without per-record state.

use std::collections::VecDeque;

/// A contiguous span of records sharing one source-emission timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Source emission time of the records, in nanoseconds.
    pub emitted_ns: u64,
    /// Number of records (fluid: fractional).
    pub records: f64,
}

/// A bounded FIFO fluid queue.
#[derive(Debug, Clone)]
pub struct EpochQueue {
    spans: VecDeque<Span>,
    total: f64,
    capacity: f64,
    /// When `true` the queue does not track emission times: every push
    /// merges into a single span whose tag is frozen at the first push.
    /// The fluid dynamics (lengths, spaces, drains) are driven purely by
    /// record totals, so they are unaffected — only per-record latency and
    /// epoch accounting lose meaning. The scenario matrix runs untagged
    /// (it never reads latency), which removes the span bookkeeping from
    /// its hot path.
    untagged: bool,
}

/// Upper bound on the number of spans one queue tracks.
///
/// A nearly-full queue accepts a sliver of records every tick
/// (`records.min(space)`), each with a fresh emission tag; without a bound
/// the span list grows by one entry per tick for the whole run — unbounded
/// memory and O(spans) tick cost — while the record total stays capped.
/// Beyond this bound new pushes merge into the newest span, trading a
/// little emission-time resolution (latency accounting only) for strictly
/// bounded memory.
const MAX_SPANS: usize = 256;

impl EpochQueue {
    /// Creates a queue holding at most `capacity` records
    /// (`f64::INFINITY` for unbounded queues, as in Timely).
    pub fn new(capacity: f64) -> Self {
        Self {
            spans: VecDeque::new(),
            total: 0.0,
            capacity,
            untagged: false,
        }
    }

    /// Creates an *untagged* queue: record totals evolve exactly as in a
    /// tagged queue, but all queued records share one span (no emission
    /// times, no per-record latency).
    pub fn new_untagged(capacity: f64) -> Self {
        Self {
            spans: VecDeque::new(),
            total: 0.0,
            capacity,
            untagged: true,
        }
    }

    /// Records currently queued.
    pub fn len(&self) -> f64 {
        self.total
    }

    /// `true` when (numerically) empty.
    pub fn is_empty(&self) -> bool {
        self.total <= 1e-9
    }

    /// The queue's capacity in records.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Remaining space in records.
    pub fn space(&self) -> f64 {
        (self.capacity - self.total).max(0.0)
    }

    /// Fill fraction in `[0, 1]` (0 for unbounded queues).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity.is_finite() && self.capacity > 0.0 {
            (self.total / self.capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Emission time of the oldest queued records, if any.
    pub fn oldest_ns(&self) -> Option<u64> {
        self.spans.front().map(|s| s.emitted_ns)
    }

    /// Number of spans currently tracked (bounded by `MAX_SPANS`).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates the queued spans oldest-first (fast-forward fingerprinting
    /// compares them bitwise against the previous tick's state).
    pub fn spans(&self) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter()
    }

    /// Advances every span's emission tag by `delta_ns` — the batched
    /// materialization of the time shift that fast-forwarded ticks defer
    /// instead of rewriting tags tick by tick.
    pub fn shift_tags(&mut self, delta_ns: u64) {
        for s in &mut self.spans {
            s.emitted_ns += delta_ns;
        }
    }

    /// Pushes records tagged `emitted_ns`, clamped to available space.
    /// Returns the amount actually enqueued.
    pub fn push(&mut self, emitted_ns: u64, records: f64) -> f64 {
        let space = self.space();
        let clamped = records >= space;
        let accepted = if clamped { space } else { records.max(0.0) };
        if accepted <= 0.0 {
            return 0.0;
        }
        // Merge with the tail span when the tag matches (sources push once
        // per tick, so this keeps the deque short), when the fragment is
        // dust, when the span list hit its bound, or always for untagged
        // queues. Merges keep the tail's (older) tag, which can only
        // over-estimate latency, never hide it.
        let at_cap = self.untagged || self.spans.len() >= MAX_SPANS;
        match self.spans.back_mut() {
            Some(tail) if tail.emitted_ns == emitted_ns || accepted < 1e-6 || at_cap => {
                tail.records += accepted
            }
            _ => self.spans.push_back(Span {
                emitted_ns,
                records: accepted,
            }),
        }
        // A clamped push fills the queue *exactly* to capacity rather than
        // adding `capacity - total` (which lands an ulp off). Saturated
        // queues therefore return to a bitwise-identical fill level every
        // tick, which is what lets fast-forward prove a backpressured
        // equilibrium is a fixed point.
        if clamped {
            self.total = self.capacity;
        } else {
            self.total += accepted;
        }
        accepted
    }

    /// Dequeues up to `amount` records in FIFO order, returning the drained
    /// spans (oldest first). Allocates; hot paths use
    /// [`EpochQueue::pop_into`] with a reused buffer instead.
    pub fn pop(&mut self, amount: f64) -> Vec<Span> {
        let mut drained = Vec::new();
        self.pop_into(amount, &mut drained);
        drained
    }

    /// Dequeues up to `amount` records in FIFO order, *appending* the
    /// drained spans (oldest first) to `out` — the allocation-free variant
    /// of [`EpochQueue::pop`] for callers that recycle a scratch buffer.
    pub fn pop_into(&mut self, amount: f64, out: &mut Vec<Span>) {
        let mut remaining = amount.min(self.total).max(0.0);
        while remaining > 1e-12 {
            let Some(front) = self.spans.front_mut() else {
                break;
            };
            if front.records <= remaining + 1e-12 {
                remaining -= front.records;
                self.total -= front.records;
                out.push(*front);
                self.spans.pop_front();
            } else {
                front.records -= remaining;
                self.total -= remaining;
                out.push(Span {
                    emitted_ns: front.emitted_ns,
                    records: remaining,
                });
                remaining = 0.0;
            }
        }
        self.total = self.total.max(0.0);
    }

    /// Discards all queued records (used when a failed job is not restored).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.total = 0.0;
    }

    /// Replaces the capacity, keeping contents (even if above the new cap;
    /// excess drains naturally).
    pub fn set_capacity(&mut self, capacity: f64) {
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let mut q = EpochQueue::new(100.0);
        assert_eq!(q.push(10, 30.0), 30.0);
        assert_eq!(q.push(20, 30.0), 30.0);
        assert!((q.len() - 60.0).abs() < 1e-12);
        let spans = q.pop(40.0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].emitted_ns, 10);
        assert!((spans[0].records - 30.0).abs() < 1e-12);
        assert_eq!(spans[1].emitted_ns, 20);
        assert!((spans[1].records - 10.0).abs() < 1e-12);
        assert!((q.len() - 20.0).abs() < 1e-12);
        assert_eq!(q.oldest_ns(), Some(20));
    }

    #[test]
    fn push_respects_capacity() {
        let mut q = EpochQueue::new(50.0);
        assert_eq!(q.push(0, 40.0), 40.0);
        assert_eq!(q.push(1, 40.0), 10.0);
        assert!((q.len() - 50.0).abs() < 1e-12);
        assert_eq!(q.space(), 0.0);
        assert_eq!(q.push(2, 1.0), 0.0);
        assert!((q.fill_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_tag_merges() {
        let mut q = EpochQueue::new(100.0);
        q.push(5, 10.0);
        q.push(5, 15.0);
        let spans = q.pop(100.0);
        assert_eq!(spans.len(), 1);
        assert!((spans[0].records - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unbounded_queue() {
        let mut q = EpochQueue::new(f64::INFINITY);
        assert_eq!(q.push(0, 1e12), 1e12);
        assert_eq!(q.fill_fraction(), 0.0);
        assert!(q.space().is_infinite());
    }

    #[test]
    fn pop_more_than_queued() {
        let mut q = EpochQueue::new(10.0);
        q.push(0, 5.0);
        let spans = q.pop(50.0);
        assert_eq!(spans.len(), 1);
        assert!(q.is_empty());
        assert_eq!(q.oldest_ns(), None);
    }

    #[test]
    fn pop_into_appends_to_reused_buffer() {
        let mut q = EpochQueue::new(100.0);
        q.push(10, 30.0);
        q.push(20, 30.0);
        let mut buf = vec![Span {
            emitted_ns: 0,
            records: 1.0,
        }];
        q.pop_into(40.0, &mut buf);
        assert_eq!(buf.len(), 3, "appends after existing contents");
        assert_eq!(buf[1].emitted_ns, 10);
        assert_eq!(buf[2].emitted_ns, 20);
        assert!((buf[2].records - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clear_empties() {
        let mut q = EpochQueue::new(10.0);
        q.push(0, 5.0);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(1.0).len(), 0);
    }

    #[test]
    fn fractional_amounts() {
        let mut q = EpochQueue::new(1.0);
        q.push(0, 0.3);
        q.push(1, 0.3);
        let spans = q.pop(0.45);
        assert_eq!(spans.len(), 2);
        assert!((spans[1].records - 0.15).abs() < 1e-12);
        assert!((q.len() - 0.15).abs() < 1e-12);
    }
}
