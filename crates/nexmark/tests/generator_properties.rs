//! Property-based tests of the Nexmark generator: referential integrity,
//! proportions and determinism must hold for every seed and stream length.

use ds2_nexmark::generator::{
    EventGenerator, GeneratorConfig, AUCTION_PROPORTION, BID_PROPORTION, PERSON_PROPORTION,
    PROPORTION_DENOMINATOR,
};
use ds2_nexmark::model::Event;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Person/auction/bid proportions hold exactly on block boundaries and
    /// within one block otherwise.
    #[test]
    fn proportions_hold(seed in 0u64..10_000, blocks in 1usize..40) {
        let n = blocks * PROPORTION_DENOMINATOR as usize;
        let events = EventGenerator::seeded(seed).take_events(n);
        let persons = events.iter().filter(|e| e.person().is_some()).count();
        let auctions = events.iter().filter(|e| e.auction().is_some()).count();
        let bids = events.iter().filter(|e| e.bid().is_some()).count();
        prop_assert_eq!(persons, blocks * PERSON_PROPORTION as usize);
        prop_assert_eq!(auctions, blocks * AUCTION_PROPORTION as usize);
        prop_assert_eq!(bids, blocks * BID_PROPORTION as usize);
    }

    /// Every bid references an auction and a bidder that already exist;
    /// every auction references an existing seller.
    #[test]
    fn referential_integrity(seed in 0u64..10_000, n in 100usize..5_000) {
        let events = EventGenerator::seeded(seed).take_events(n);
        let mut persons = 0u64;
        let mut auctions = 0u64;
        for e in &events {
            match e {
                Event::Person(p) => {
                    prop_assert_eq!(p.id, persons, "person ids dense");
                    persons += 1;
                }
                Event::Auction(a) => {
                    prop_assert!(a.seller < persons.max(1));
                    prop_assert_eq!(a.id, auctions, "auction ids dense");
                    prop_assert!(a.expires > a.date_time);
                    prop_assert!(a.reserve >= a.initial_bid);
                    auctions += 1;
                }
                Event::Bid(b) => {
                    prop_assert!(b.auction < auctions.max(1));
                    prop_assert!(b.bidder < persons.max(1));
                }
            }
        }
    }

    /// Event timestamps are monotone non-decreasing and follow the
    /// configured inter-event gap.
    #[test]
    fn timestamps_monotone(seed in 0u64..10_000, gap_us in 1u64..10_000) {
        let mut g = EventGenerator::new(GeneratorConfig {
            seed,
            inter_event_gap_us: gap_us,
            ..Default::default()
        });
        let events = g.take_events(500);
        for (i, w) in events.windows(2).enumerate() {
            prop_assert!(w[0].timestamp() <= w[1].timestamp());
            let expected = (i as u64 + 1) * gap_us / 1_000;
            prop_assert_eq!(w[1].timestamp(), expected);
        }
    }

    /// Same seed, same stream; different seeds, different streams (with
    /// overwhelming probability on any non-trivial length).
    #[test]
    fn determinism(seed in 0u64..10_000) {
        let a = EventGenerator::seeded(seed).take_events(300);
        let b = EventGenerator::seeded(seed).take_events(300);
        prop_assert_eq!(&a, &b);
        let c = EventGenerator::seeded(seed.wrapping_add(1)).take_events(300);
        prop_assert_ne!(&a, &c);
    }

    /// Person state/city pairs are always consistent (same index into the
    /// fixture tables), keeping Q3's state filter meaningful.
    #[test]
    fn person_geography_consistent(seed in 0u64..10_000) {
        use ds2_nexmark::model::{US_CITIES, US_STATES};
        let events = EventGenerator::seeded(seed).take_events(2_000);
        for e in events {
            if let Event::Person(p) = e {
                let si = US_STATES.iter().position(|&s| s == p.state);
                let ci = US_CITIES.iter().position(|&c| c == p.city);
                prop_assert_eq!(si, ci, "state {} / city {}", p.state, p.city);
            }
        }
    }
}
