//! Simulator setups for the Nexmark queries: topology, cost profiles and
//! Table 3 source rates, calibrated so that the optimal main-operator
//! parallelism at the paper's rates matches the paper's reported
//! configurations (Table 4 / Figure 8 for Flink, Figure 9 for Timely).
//!
//! ## Calibration scheme
//!
//! The main operator's per-instance capacity at the optimal parallelism
//! `p*` is set to `rate / (p* - MARGIN)`, so Eq. 7 lands exactly on `p*`
//! with a small safety margin. Its instrumented cost follows a
//! [`ScalingCurve::Sigmoid`] (overhead step around `0.6 p*`, the
//! machine-boundary knee), which reproduces the paper's §5.4 behaviour:
//! one step when starting near the optimum, two to three steps from
//! far-below starts, and a single step from over-provisioned starts (the
//! curve is flat above the knee, so the fixed point is unique from above).
//! A small *hidden* (uninstrumented) per-record overhead exercises the
//! target-rate-ratio machinery without flipping the optimum.

use std::collections::BTreeMap;

use ds2_core::graph::{GraphBuilder, LogicalGraph, OperatorId};
use ds2_simulator::profile::{OperatorProfile, ProfileMap, ScalingCurve};
use ds2_simulator::source::SourceSpec;

/// The six queries the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Currency conversion (stateless map).
    Q1,
    /// Selection (stateless filter).
    Q2,
    /// Local item suggestion (incremental two-input join).
    Q3,
    /// Hot items (sliding window).
    Q5,
    /// Monitor new users (tumbling window join).
    Q8,
    /// User sessions (session window).
    Q11,
}

impl QueryId {
    /// All evaluated queries, in paper order.
    pub const ALL: [QueryId; 6] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q5,
        QueryId::Q8,
        QueryId::Q11,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q5 => "Q5",
            QueryId::Q8 => "Q8",
            QueryId::Q11 => "Q11",
        }
    }
}

/// Reference system the setup targets (Table 3 has separate rate columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Apache Flink: per-operator parallelism, ≤36 slots.
    Flink,
    /// Timely Dataflow: global worker pool.
    Timely,
}

/// A ready-to-run simulator scenario for one query.
#[derive(Debug)]
pub struct QuerySetup {
    /// Query identifier.
    pub query: QueryId,
    /// The logical dataflow.
    pub graph: LogicalGraph,
    /// Cost profiles per non-source operator.
    pub profiles: ProfileMap,
    /// Source specs (Table 3 rates).
    pub sources: BTreeMap<OperatorId, SourceSpec>,
    /// The operator whose parallelism the paper reports.
    pub main_operator: OperatorId,
    /// The paper's reported optimal parallelism for the main operator
    /// (Flink) or total workers (Timely).
    pub expected: usize,
}

/// Safety margin in instances: capacity is set so the requirement lands at
/// `p* - margin`. Proportional to `p*` so the relative headroom always
/// covers the hidden overhead, but below one instance so the ceiling still
/// lands exactly on `p*`.
fn margin(p_star: usize) -> f64 {
    (0.04 * p_star as f64).clamp(0.3, 0.75)
}

/// Asymptotic overhead fraction of the main-operator sigmoid curve.
const ALPHA: f64 = 0.35;

/// Hidden (uninstrumented) overhead as a fraction of instrumented cost.
const HIDDEN_FRACTION: f64 = 0.015;

/// Table 3 — target source rates (records/s) per query and system.
pub mod rates {
    /// Q1 bids rate on Flink.
    pub const Q1_FLINK_BIDS: f64 = 4_000_000.0;
    /// Q1 bids rate on Timely.
    pub const Q1_TIMELY_BIDS: f64 = 5_000_000.0;
    /// Q2 bids rate on Flink.
    pub const Q2_FLINK_BIDS: f64 = 4_000_000.0;
    /// Q2 bids rate on Timely.
    pub const Q2_TIMELY_BIDS: f64 = 5_000_000.0;
    /// Q3 auctions rate on Flink.
    pub const Q3_FLINK_AUCTIONS: f64 = 500_000.0;
    /// Q3 persons rate on Flink.
    pub const Q3_FLINK_PERSONS: f64 = 100_000.0;
    /// Q3 auctions rate on Timely.
    pub const Q3_TIMELY_AUCTIONS: f64 = 3_000_000.0;
    /// Q3 persons rate on Timely.
    pub const Q3_TIMELY_PERSONS: f64 = 800_000.0;
    /// Q5 bids rate on Flink.
    pub const Q5_FLINK_BIDS: f64 = 500_000.0;
    /// Q5 bids rate on Timely.
    pub const Q5_TIMELY_BIDS: f64 = 2_000_000.0;
    /// Q8 auctions rate on Flink.
    pub const Q8_FLINK_AUCTIONS: f64 = 420_000.0;
    /// Q8 persons rate on Flink.
    pub const Q8_FLINK_PERSONS: f64 = 120_000.0;
    /// Q8 auctions rate on Timely.
    pub const Q8_TIMELY_AUCTIONS: f64 = 4_000_000.0;
    /// Q8 persons rate on Timely.
    pub const Q8_TIMELY_PERSONS: f64 = 4_000_000.0;
    /// Q11 bids rate on Flink.
    pub const Q11_FLINK_BIDS: f64 = 1_000_000.0;
    /// Q11 bids rate on Timely.
    pub const Q11_TIMELY_BIDS: f64 = 9_000_000.0;
}

/// The paper's indicated optimal parallelism for each query's main operator
/// on Flink (Fig. 8 captions / Table 4 finals).
pub fn expected_flink_parallelism(q: QueryId) -> usize {
    match q {
        QueryId::Q1 => 16,
        QueryId::Q2 => 14,
        QueryId::Q3 => 20,
        QueryId::Q5 => 16,
        QueryId::Q8 => 10,
        QueryId::Q11 => 28,
    }
}

/// The paper's indicated optimal total workers on Timely (Fig. 9): 4 for
/// every query.
pub const EXPECTED_TIMELY_WORKERS: usize = 4;

/// Main-operator profile calibrated for optimal parallelism `p_star` at
/// aggregate input `rate`.
fn main_profile(rate: f64, p_star: usize, selectivity: f64) -> OperatorProfile {
    let p = p_star as f64;
    let curve = ScalingCurve::Sigmoid {
        alpha: ALPHA,
        knee: 0.6 * p,
        width: (0.075 * p).max(0.5),
    };
    let cap_at_star = rate / (p - margin(p_star));
    let cost_at_star = 1e9 / cap_at_star;
    let base_cost = cost_at_star / curve.multiplier(p_star);
    OperatorProfile::simple(base_cost, selectivity)
        .with_scaling(curve)
        .with_hidden(base_cost * HIDDEN_FRACTION, ScalingCurve::Linear)
}

/// A light supporting operator (filter/sink) with linear scaling sized for
/// `per_instance_capacity` records/s.
fn light_profile(per_instance_capacity: f64, selectivity: f64) -> OperatorProfile {
    OperatorProfile::with_capacity(per_instance_capacity, selectivity)
}

/// A Timely operator costing `cost_us` microseconds per record.
fn timely_profile(cost_us: f64, selectivity: f64) -> OperatorProfile {
    OperatorProfile::simple(cost_us * 1_000.0, selectivity)
}

/// Builds the simulator setup for `query` on `target` at Table 3 rates.
pub fn setup(query: QueryId, target: Target) -> QuerySetup {
    match target {
        Target::Flink => flink_setup(query),
        Target::Timely => timely_setup(query),
    }
}

fn flink_setup(query: QueryId) -> QuerySetup {
    let p_star = expected_flink_parallelism(query);
    match query {
        QueryId::Q1 => {
            // bids -> currency map (main) -> sink.
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let map = b.operator("currency_map");
            let sink = b.operator("sink");
            b.connect(src, map);
            b.connect(map, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q1_FLINK_BIDS;
            let mut profiles = ProfileMap::new();
            profiles.insert(map, main_profile(rate, p_star, 1.0));
            profiles.insert(sink, light_profile(rate / 6.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: map,
                expected: p_star,
            }
        }
        QueryId::Q2 => {
            // bids -> filter (main, selectivity ~1/123) -> sink.
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let filter = b.operator("filter");
            let sink = b.operator("sink");
            b.connect(src, filter);
            b.connect(filter, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q2_FLINK_BIDS;
            let mut profiles = ProfileMap::new();
            profiles.insert(filter, main_profile(rate, p_star, 1.0 / 123.0));
            profiles.insert(sink, light_profile(50_000.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: filter,
                expected: p_star,
            }
        }
        QueryId::Q3 => {
            // auctions -> filter_a; persons -> filter_p; both -> join (main).
            let mut b = GraphBuilder::new();
            let auctions = b.operator("auctions");
            let persons = b.operator("persons");
            let fa = b.operator("filter_auctions");
            let fp = b.operator("filter_persons");
            let join = b.operator("incremental_join");
            b.connect(auctions, fa);
            b.connect(persons, fp);
            b.connect(fa, join);
            b.connect(fp, join);
            let graph = b.build().unwrap();
            let (ra, rp) = (rates::Q3_FLINK_AUCTIONS, rates::Q3_FLINK_PERSONS);
            let sel = 0.25;
            let join_target = sel * ra + sel * rp;
            let mut profiles = ProfileMap::new();
            profiles.insert(fa, light_profile(ra / 3.0, sel));
            profiles.insert(fp, light_profile(rp / 1.5, sel));
            profiles.insert(join, main_profile(join_target, p_star, 0.2));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [
                    (auctions, SourceSpec::constant(ra)),
                    (persons, SourceSpec::constant(rp)),
                ]
                .into(),
                main_operator: join,
                expected: p_star,
            }
        }
        QueryId::Q5 => {
            // bids -> hopping-window hot items (main, bursty) -> sink.
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let win = b.operator("hot_items_window");
            let sink = b.operator("sink");
            b.connect(src, win);
            b.connect(win, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q5_FLINK_BIDS;
            let mut profiles = ProfileMap::new();
            profiles.insert(
                win,
                main_profile(rate, p_star, 0.01).windowed(2_000_000_000),
            );
            profiles.insert(sink, light_profile(20_000.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: win,
                expected: p_star,
            }
        }
        QueryId::Q8 => {
            // persons + auctions -> tumbling window join (main, sink).
            let mut b = GraphBuilder::new();
            let auctions = b.operator("auctions");
            let persons = b.operator("persons");
            let join = b.operator("window_join");
            b.connect(auctions, join);
            b.connect(persons, join);
            let graph = b.build().unwrap();
            let (ra, rp) = (rates::Q8_FLINK_AUCTIONS, rates::Q8_FLINK_PERSONS);
            let mut profiles = ProfileMap::new();
            profiles.insert(
                join,
                main_profile(ra + rp, p_star, 0.05).windowed(1_000_000_000),
            );
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [
                    (auctions, SourceSpec::constant(ra)),
                    (persons, SourceSpec::constant(rp)),
                ]
                .into(),
                main_operator: join,
                expected: p_star,
            }
        }
        QueryId::Q11 => {
            // bids -> session window (main) -> sink.
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let sess = b.operator("session_window");
            let sink = b.operator("sink");
            b.connect(src, sess);
            b.connect(sess, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q11_FLINK_BIDS;
            let mut profiles = ProfileMap::new();
            profiles.insert(
                sess,
                main_profile(rate, p_star, 0.02).windowed(1_000_000_000),
            );
            profiles.insert(sink, light_profile(10_000.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: sess,
                expected: p_star,
            }
        }
    }
}

fn timely_setup(query: QueryId) -> QuerySetup {
    // Timely per-record costs are far lower than the JVM engine's; the
    // worker demands below are calibrated so the per-operator requirements
    // sum to 4 (Fig. 9: optimal p = 4 for every query).
    match query {
        QueryId::Q1 => {
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let map = b.operator("currency_map");
            let sink = b.operator("sink");
            b.connect(src, map);
            b.connect(map, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q1_TIMELY_BIDS;
            let mut profiles = ProfileMap::new();
            // 5M/s × 0.52 µs = 2.6 workers -> 3; sink 5M × 0.14 µs = 0.7 -> 1.
            profiles.insert(map, timely_profile(0.52, 1.0));
            profiles.insert(sink, timely_profile(0.14, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: map,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
        QueryId::Q2 => {
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let filter = b.operator("filter");
            let sink = b.operator("sink");
            b.connect(src, filter);
            b.connect(filter, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q2_TIMELY_BIDS;
            let mut profiles = ProfileMap::new();
            // 5M × 0.52 µs = 2.6 -> 3; sink: 0.5M × 1.0 µs = 0.5 -> 1.
            profiles.insert(filter, timely_profile(0.52, 0.1));
            profiles.insert(sink, timely_profile(1.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: filter,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
        QueryId::Q3 => {
            let mut b = GraphBuilder::new();
            let auctions = b.operator("auctions");
            let persons = b.operator("persons");
            let fa = b.operator("filter_auctions");
            let fp = b.operator("filter_persons");
            let join = b.operator("incremental_join");
            b.connect(auctions, fa);
            b.connect(persons, fp);
            b.connect(fa, join);
            b.connect(fp, join);
            let graph = b.build().unwrap();
            let (ra, rp) = (rates::Q3_TIMELY_AUCTIONS, rates::Q3_TIMELY_PERSONS);
            let mut profiles = ProfileMap::new();
            // fa: 3M × 0.266 µs = 0.8 -> 1; fp: 0.8M × 0.625 µs = 0.5 -> 1;
            // join: 0.25×(3M + 0.8M) = 950K × 1.79 µs = 1.7 -> 2. Σ = 4.
            profiles.insert(fa, timely_profile(0.266, 0.25));
            profiles.insert(fp, timely_profile(0.625, 0.25));
            profiles.insert(join, timely_profile(1.79, 0.2));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [
                    (auctions, SourceSpec::constant(ra)),
                    (persons, SourceSpec::constant(rp)),
                ]
                .into(),
                main_operator: join,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
        QueryId::Q5 => {
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let win = b.operator("hot_items_window");
            let sink = b.operator("sink");
            b.connect(src, win);
            b.connect(win, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q5_TIMELY_BIDS;
            let mut profiles = ProfileMap::new();
            // win: 2M × 1.3 µs = 2.6 -> 3; sink: 20K × 40 µs = 0.8 -> 1.
            profiles.insert(win, timely_profile(1.3, 0.01).windowed(900_000_000));
            profiles.insert(sink, timely_profile(40.0, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: win,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
        QueryId::Q8 => {
            let mut b = GraphBuilder::new();
            let auctions = b.operator("auctions");
            let persons = b.operator("persons");
            let join = b.operator("window_join");
            b.connect(auctions, join);
            b.connect(persons, join);
            let graph = b.build().unwrap();
            let (ra, rp) = (rates::Q8_TIMELY_AUCTIONS, rates::Q8_TIMELY_PERSONS);
            let mut profiles = ProfileMap::new();
            // 8M × 0.45 µs = 3.6 -> 4. Σ = 4.
            profiles.insert(join, timely_profile(0.45, 0.05).windowed(900_000_000));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [
                    (auctions, SourceSpec::constant(ra)),
                    (persons, SourceSpec::constant(rp)),
                ]
                .into(),
                main_operator: join,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
        QueryId::Q11 => {
            let mut b = GraphBuilder::new();
            let src = b.operator("bids");
            let sess = b.operator("session_window");
            let sink = b.operator("sink");
            b.connect(src, sess);
            b.connect(sess, sink);
            let graph = b.build().unwrap();
            let rate = rates::Q11_TIMELY_BIDS;
            let mut profiles = ProfileMap::new();
            // sess: 9M × 0.3 µs = 2.7 -> 3; sink: 180K × 2.8 µs = 0.5 -> 1.
            profiles.insert(sess, timely_profile(0.3, 0.02).windowed(450_000_000));
            profiles.insert(sink, timely_profile(2.8, 0.0));
            QuerySetup {
                query,
                graph,
                profiles,
                sources: [(src, SourceSpec::constant(rate))].into(),
                main_operator: sess,
                expected: EXPECTED_TIMELY_WORKERS,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_flink_setups_build() {
        for q in QueryId::ALL {
            let s = setup(q, Target::Flink);
            assert_eq!(s.query, q);
            assert!(!s.graph.is_source(s.main_operator));
            assert!(s.profiles.contains_key(&s.main_operator));
            for src in s.graph.sources() {
                assert!(s.sources.contains_key(src), "{q:?} missing source spec");
            }
            assert_eq!(s.expected, expected_flink_parallelism(q));
        }
    }

    #[test]
    fn all_timely_setups_build() {
        for q in QueryId::ALL {
            let s = setup(q, Target::Timely);
            assert_eq!(s.expected, EXPECTED_TIMELY_WORKERS);
        }
    }

    /// The calibration invariant: at the paper's rate, the main operator's
    /// measured capacity at `p*` instances yields requirement exactly `p*`,
    /// and one fewer instance would not suffice.
    #[test]
    fn flink_main_operator_calibration() {
        for q in QueryId::ALL {
            let s = setup(q, Target::Flink);
            let p_star = s.expected;
            let profile = &s.profiles[&s.main_operator];
            // Aggregate input rate at the main operator under optimal
            // upstream provisioning.
            let target: f64 = s
                .graph
                .upstream_edges(s.main_operator)
                .map(|e| {
                    let up = e.from;
                    if s.graph.is_source(up) {
                        s.sources[&up].schedule.rate_at(0)
                    } else {
                        let sel = s.profiles[&up].output.average_selectivity();
                        let src = s.graph.upstream(up)[0];
                        sel * s.sources[&src].schedule.rate_at(0)
                    }
                })
                .sum();
            let cap = profile.measured_capacity(p_star);
            let req = (target / cap - 1e-9).ceil() as usize;
            assert_eq!(req, p_star, "{q:?}: requirement {req} != {p_star}");
            assert!(
                cap * (p_star as f64 - 1.0) < target,
                "{q:?}: p*-1 must not suffice"
            );
            // Real capacity (with hidden overhead) still sustains the rate.
            assert!(
                profile.real_capacity(p_star) * p_star as f64 >= target,
                "{q:?}: hidden overhead must not break the optimum"
            );
        }
    }

    /// Timely calibration: per-operator worker demands sum to 4.
    #[test]
    fn timely_worker_sum_is_four() {
        for q in QueryId::ALL {
            let s = setup(q, Target::Timely);
            // Compute each operator's demand: input rate × cost.
            let mut out_rate: BTreeMap<OperatorId, f64> = BTreeMap::new();
            let mut total = 0usize;
            for op in s.graph.topological_order() {
                if s.graph.is_source(op) {
                    out_rate.insert(op, s.sources[&op].schedule.rate_at(0));
                    continue;
                }
                let input: f64 = s
                    .graph
                    .upstream_edges(op)
                    .map(|e| out_rate[&e.from] * e.weight)
                    .sum();
                let profile = &s.profiles[&op];
                let demand = input / profile.measured_capacity(1);
                total += demand.ceil() as usize;
                out_rate.insert(op, input * profile.output.average_selectivity());
            }
            assert_eq!(total, 4, "{q:?}: worker demand should sum to 4");
        }
    }

    #[test]
    fn windowed_mains_are_windowed() {
        for q in [QueryId::Q5, QueryId::Q8, QueryId::Q11] {
            let s = setup(q, Target::Flink);
            let profile = &s.profiles[&s.main_operator];
            assert!(
                matches!(
                    profile.output,
                    ds2_simulator::profile::OutputMode::Windowed { .. }
                ),
                "{q:?} main operator must be windowed"
            );
        }
    }
}
