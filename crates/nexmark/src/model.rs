//! The Nexmark auction data model (Tucker et al., "NEXMark — A Benchmark
//! for Queries over Data Streams"; proportions and field conventions follow
//! the Apache Beam implementation the paper uses, §5.1).

/// United States state codes used for person addresses.
pub const US_STATES: [&str; 6] = ["AZ", "CA", "ID", "OR", "WA", "WY"];

/// Cities used for person addresses.
pub const US_CITIES: [&str; 6] = [
    "Phoenix",
    "Los Angeles",
    "San Francisco",
    "Boise",
    "Portland",
    "Seattle",
];

/// A person who can open auctions and place bids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Unique person id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Email address.
    pub email: String,
    /// Credit-card number (opaque digits).
    pub credit_card: String,
    /// Home city.
    pub city: String,
    /// Home state code (see [`US_STATES`]).
    pub state: String,
    /// Event time in milliseconds since the epoch.
    pub date_time: u64,
}

/// An auction listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Auction {
    /// Unique auction id.
    pub id: u64,
    /// Item short name.
    pub item_name: String,
    /// Item description.
    pub description: String,
    /// Opening bid price in cents.
    pub initial_bid: u64,
    /// Reserve price in cents.
    pub reserve: u64,
    /// Event time in milliseconds since the epoch.
    pub date_time: u64,
    /// Auction close time in milliseconds since the epoch.
    pub expires: u64,
    /// Seller (person id).
    pub seller: u64,
    /// Category id.
    pub category: u64,
}

/// A bid on an auction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bid {
    /// Auction the bid applies to.
    pub auction: u64,
    /// Bidder (person id).
    pub bidder: u64,
    /// Bid price in cents (US dollars).
    pub price: u64,
    /// Event time in milliseconds since the epoch.
    pub date_time: u64,
}

/// A Nexmark stream event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A new person registered.
    Person(Person),
    /// A new auction opened.
    Auction(Auction),
    /// A bid was placed.
    Bid(Bid),
}

impl Event {
    /// Event time in milliseconds since the epoch.
    pub fn timestamp(&self) -> u64 {
        match self {
            Event::Person(p) => p.date_time,
            Event::Auction(a) => a.date_time,
            Event::Bid(b) => b.date_time,
        }
    }

    /// Returns the contained person, if this is a person event.
    pub fn person(&self) -> Option<&Person> {
        match self {
            Event::Person(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the contained auction, if this is an auction event.
    pub fn auction(&self) -> Option<&Auction> {
        match self {
            Event::Auction(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the contained bid, if this is a bid event.
    pub fn bid(&self) -> Option<&Bid> {
        match self {
            Event::Bid(b) => Some(b),
            _ => None,
        }
    }
}

/// Dollar-to-euro conversion rate used by Query 1 (the Beam constant).
pub const USD_TO_EUR: f64 = 0.908;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let bid = Bid {
            auction: 1,
            bidder: 2,
            price: 300,
            date_time: 42,
        };
        let e = Event::Bid(bid.clone());
        assert_eq!(e.timestamp(), 42);
        assert_eq!(e.bid(), Some(&bid));
        assert!(e.person().is_none());
        assert!(e.auction().is_none());
    }
}
