//! Executable implementations of the six Nexmark queries the paper
//! evaluates (§5.1): stateless transformations (Q1, Q2), an incremental
//! two-input join (Q3), and window operators (Q5 sliding, Q8 tumbling join,
//! Q11 session).
//!
//! The operators here are pure state machines — `process` consumes one
//! event and appends outputs — so they can run on the threaded mini-runtime
//! (`ds2-runtime`), inside tests, or anywhere else. Their *cost profiles*
//! for the fluid simulator live in [`crate::profiles`].

use std::collections::HashMap;

use crate::model::{Auction, Bid, Event, Person, USD_TO_EUR};

/// Q1 — currency conversion: every bid's price converted from USD to EUR.
/// A stateless map with selectivity 1.
#[derive(Debug, Default, Clone)]
pub struct Q1CurrencyConversion;

impl Q1CurrencyConversion {
    /// Processes one event.
    pub fn process(&mut self, event: &Event, out: &mut Vec<Bid>) {
        if let Event::Bid(b) = event {
            out.push(Bid {
                price: (b.price as f64 * USD_TO_EUR).round() as u64,
                ..b.clone()
            });
        }
    }
}

/// Q2 — selection: bids on a sampled set of auctions (`auction % divisor ==
/// 0`). A stateless filter with selectivity `1/divisor` over bids.
#[derive(Debug, Clone)]
pub struct Q2Selection {
    /// Auction-id divisor defining the selected set.
    pub divisor: u64,
}

impl Default for Q2Selection {
    fn default() -> Self {
        Self { divisor: 123 }
    }
}

impl Q2Selection {
    /// Processes one event.
    pub fn process(&mut self, event: &Event, out: &mut Vec<(u64, u64)>) {
        if let Event::Bid(b) = event {
            if b.auction % self.divisor == 0 {
                out.push((b.auction, b.price));
            }
        }
    }
}

/// A Q3 result row: who is selling in particular US states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q3Row {
    /// Seller name.
    pub name: String,
    /// Seller city.
    pub city: String,
    /// Seller state.
    pub state: String,
    /// Auction id.
    pub auction: u64,
}

/// Q3 — local item suggestion: an *incremental* join of auctions in
/// category 10 with persons from OR, ID or CA. A stateful record-at-a-time
/// two-input operator: each side is indexed, and every arrival probes the
/// opposite index immediately (no windows).
#[derive(Debug, Default)]
pub struct Q3LocalItemSuggestion {
    persons: HashMap<u64, Person>,
    auctions_by_seller: HashMap<u64, Vec<Auction>>,
}

impl Q3LocalItemSuggestion {
    /// The category Q3 selects.
    pub const CATEGORY: u64 = 3;

    fn person_matches(p: &Person) -> bool {
        matches!(p.state.as_str(), "OR" | "ID" | "CA")
    }

    /// Processes one event from either input.
    pub fn process(&mut self, event: &Event, out: &mut Vec<Q3Row>) {
        match event {
            Event::Person(p) => {
                if Self::person_matches(p) {
                    if let Some(auctions) = self.auctions_by_seller.get(&p.id) {
                        for a in auctions {
                            out.push(Q3Row {
                                name: p.name.clone(),
                                city: p.city.clone(),
                                state: p.state.clone(),
                                auction: a.id,
                            });
                        }
                    }
                    self.persons.insert(p.id, p.clone());
                }
            }
            Event::Auction(a) => {
                if a.category == Self::CATEGORY {
                    if let Some(p) = self.persons.get(&a.seller) {
                        out.push(Q3Row {
                            name: p.name.clone(),
                            city: p.city.clone(),
                            state: p.state.clone(),
                            auction: a.id,
                        });
                    }
                    self.auctions_by_seller
                        .entry(a.seller)
                        .or_default()
                        .push(a.clone());
                }
            }
            Event::Bid(_) => {}
        }
    }

    /// Number of indexed persons (for state-size assertions).
    pub fn indexed_persons(&self) -> usize {
        self.persons.len()
    }
}

/// Q5 — hot items: the auction(s) with the most bids in a hopping window.
#[derive(Debug)]
pub struct Q5HotItems {
    /// Window length in event-time milliseconds.
    pub window_ms: u64,
    /// Hop (slide) in event-time milliseconds.
    pub hop_ms: u64,
    counts: HashMap<u64, u64>,
    window_end: u64,
}

impl Q5HotItems {
    /// Creates a hot-items operator with the given window and hop.
    pub fn new(window_ms: u64, hop_ms: u64) -> Self {
        Self {
            window_ms,
            hop_ms,
            counts: HashMap::new(),
            window_end: window_ms,
        }
    }

    /// Processes one event; emits `(auction, bid_count)` for the hottest
    /// auction each time a window closes.
    pub fn process(&mut self, event: &Event, out: &mut Vec<(u64, u64)>) {
        let ts = event.timestamp();
        while ts >= self.window_end {
            if let Some((&auction, &count)) = self.counts.iter().max_by_key(|&(_, &c)| c) {
                out.push((auction, count));
            }
            // Hopping window approximation: retain nothing across hops
            // (hop == window gives exact tumbling semantics).
            self.counts.clear();
            self.window_end += self.hop_ms;
        }
        if let Event::Bid(b) = event {
            *self.counts.entry(b.auction).or_insert(0) += 1;
        }
    }
}

/// Q8 — monitor new users: persons who created an auction within the same
/// tumbling window as their registration.
#[derive(Debug)]
pub struct Q8MonitorNewUsers {
    /// Tumbling window length in event-time milliseconds.
    pub window_ms: u64,
    persons_in_window: HashMap<u64, String>,
    sellers_in_window: Vec<u64>,
    window_end: u64,
}

impl Q8MonitorNewUsers {
    /// Creates the operator with the given tumbling window.
    pub fn new(window_ms: u64) -> Self {
        Self {
            window_ms,
            persons_in_window: HashMap::new(),
            sellers_in_window: Vec::new(),
            window_end: window_ms,
        }
    }

    /// Processes one event; at each window close emits `(person_id, name)`
    /// for new persons who opened auctions in the window.
    pub fn process(&mut self, event: &Event, out: &mut Vec<(u64, String)>) {
        let ts = event.timestamp();
        while ts >= self.window_end {
            for seller in self.sellers_in_window.drain(..) {
                if let Some(name) = self.persons_in_window.get(&seller) {
                    out.push((seller, name.clone()));
                }
            }
            self.persons_in_window.clear();
            self.window_end += self.window_ms;
        }
        match event {
            Event::Person(p) => {
                self.persons_in_window.insert(p.id, p.name.clone());
            }
            Event::Auction(a) => self.sellers_in_window.push(a.seller),
            Event::Bid(_) => {}
        }
    }
}

/// Q11 — user sessions: the number of bids per person per session, where a
/// session closes after a gap with no bids from that person.
#[derive(Debug)]
pub struct Q11UserSessions {
    /// Session gap in event-time milliseconds.
    pub gap_ms: u64,
    sessions: HashMap<u64, (u64, u64)>, // bidder -> (last_ts, count)
}

impl Q11UserSessions {
    /// Creates the operator with the given session gap.
    pub fn new(gap_ms: u64) -> Self {
        Self {
            gap_ms,
            sessions: HashMap::new(),
        }
    }

    /// Processes one event; emits `(bidder, bid_count)` when a session
    /// closes (detected on the next bid after the gap, or via
    /// [`Q11UserSessions::flush`]).
    pub fn process(&mut self, event: &Event, out: &mut Vec<(u64, u64)>) {
        if let Event::Bid(b) = event {
            match self.sessions.get_mut(&b.bidder) {
                Some((last_ts, count)) => {
                    if b.date_time.saturating_sub(*last_ts) > self.gap_ms {
                        out.push((b.bidder, *count));
                        *count = 1;
                    } else {
                        *count += 1;
                    }
                    *last_ts = b.date_time;
                }
                None => {
                    self.sessions.insert(b.bidder, (b.date_time, 1));
                }
            }
        }
    }

    /// Closes every session older than `now_ms - gap_ms`.
    pub fn flush(&mut self, now_ms: u64, out: &mut Vec<(u64, u64)>) {
        let gap = self.gap_ms;
        let mut closed = Vec::new();
        for (&bidder, &(last_ts, count)) in &self.sessions {
            if now_ms.saturating_sub(last_ts) > gap {
                closed.push((bidder, count));
            }
        }
        for &(bidder, count) in &closed {
            self.sessions.remove(&bidder);
            out.push((bidder, count));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::EventGenerator;
    use crate::model::US_STATES;

    fn bid(auction: u64, bidder: u64, price: u64, ts: u64) -> Event {
        Event::Bid(Bid {
            auction,
            bidder,
            price,
            date_time: ts,
        })
    }

    #[test]
    fn q1_converts_currency() {
        let mut q = Q1CurrencyConversion;
        let mut out = Vec::new();
        q.process(&bid(1, 2, 1000, 0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].price, 908);
        // Non-bids pass through nothing.
        let mut g = EventGenerator::seeded(1);
        let person = g.find(|e| e.person().is_some()).unwrap();
        q.process(&person, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn q2_filters_by_divisor() {
        let mut q = Q2Selection { divisor: 10 };
        let mut out = Vec::new();
        q.process(&bid(20, 1, 100, 0), &mut out);
        q.process(&bid(21, 1, 100, 0), &mut out);
        q.process(&bid(30, 1, 100, 0), &mut out);
        assert_eq!(out, vec![(20, 100), (30, 100)]);
    }

    #[test]
    fn q2_selectivity_matches_divisor() {
        let mut q = Q2Selection { divisor: 123 };
        let mut g = EventGenerator::seeded(5);
        let mut out = Vec::new();
        let mut bids = 0u64;
        for e in g.take_events(200_000) {
            if e.bid().is_some() {
                bids += 1;
            }
            q.process(&e, &mut out);
        }
        let sel = out.len() as f64 / bids as f64;
        assert!(
            (sel - 1.0 / 123.0).abs() < 0.01,
            "selectivity {sel} should be ~1/123"
        );
    }

    #[test]
    fn q3_joins_person_and_auction_both_orders() {
        let mut q = Q3LocalItemSuggestion::default();
        let mut out = Vec::new();
        let person = Person {
            id: 7,
            name: "ann a".into(),
            email: "a@b.com".into(),
            credit_card: "1".into(),
            city: "Portland".into(),
            state: "OR".into(),
            date_time: 0,
        };
        let auction = Auction {
            id: 99,
            item_name: "x".into(),
            description: "y".into(),
            initial_bid: 1,
            reserve: 2,
            date_time: 1,
            expires: 100,
            seller: 7,
            category: Q3LocalItemSuggestion::CATEGORY,
        };
        // Person first, then auction.
        q.process(&Event::Person(person.clone()), &mut out);
        assert!(out.is_empty());
        q.process(&Event::Auction(auction.clone()), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].auction, 99);
        assert_eq!(out[0].state, "OR");

        // Auction first, then person (incremental join symmetry).
        let mut q2 = Q3LocalItemSuggestion::default();
        let mut out2 = Vec::new();
        q2.process(&Event::Auction(auction), &mut out2);
        assert!(out2.is_empty());
        q2.process(&Event::Person(person), &mut out2);
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn q3_filters_state_and_category() {
        let mut q = Q3LocalItemSuggestion::default();
        let mut out = Vec::new();
        let mut person = Person {
            id: 1,
            name: "n".into(),
            email: "e".into(),
            credit_card: "c".into(),
            city: "Phoenix".into(),
            state: "AZ".into(), // not in {OR, ID, CA}
            date_time: 0,
        };
        q.process(&Event::Person(person.clone()), &mut out);
        assert_eq!(q.indexed_persons(), 0, "AZ person must not be indexed");
        person.state = "CA".into();
        person.id = 2;
        q.process(&Event::Person(person), &mut out);
        assert_eq!(q.indexed_persons(), 1);
        // Wrong category: ignored.
        let auction = Auction {
            id: 5,
            item_name: "i".into(),
            description: "d".into(),
            initial_bid: 1,
            reserve: 2,
            date_time: 1,
            expires: 10,
            seller: 2,
            category: Q3LocalItemSuggestion::CATEGORY + 1,
        };
        q.process(&Event::Auction(auction), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn q3_end_to_end_produces_rows() {
        let mut q = Q3LocalItemSuggestion::default();
        let mut g = EventGenerator::seeded(17);
        let mut out = Vec::new();
        for e in g.take_events(100_000) {
            q.process(&e, &mut out);
        }
        assert!(!out.is_empty(), "the generated stream must join sometimes");
        for row in &out {
            assert!(US_STATES.contains(&row.state.as_str()));
        }
    }

    #[test]
    fn q5_emits_hottest_per_window() {
        let mut q = Q5HotItems::new(1_000, 1_000);
        let mut out = Vec::new();
        q.process(&bid(1, 1, 100, 0), &mut out);
        q.process(&bid(2, 1, 100, 100), &mut out);
        q.process(&bid(2, 1, 100, 200), &mut out);
        assert!(out.is_empty(), "window still open");
        q.process(&bid(9, 1, 100, 1_500), &mut out);
        assert_eq!(out, vec![(2, 2)], "auction 2 had the most bids");
        q.process(&bid(9, 1, 100, 2_500), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], (9, 1));
    }

    #[test]
    fn q8_joins_within_window_only() {
        let mut q = Q8MonitorNewUsers::new(1_000);
        let mut out = Vec::new();
        let person = Person {
            id: 4,
            name: "pat p".into(),
            email: "p@q.com".into(),
            credit_card: "9".into(),
            city: "Boise".into(),
            state: "ID".into(),
            date_time: 100,
        };
        q.process(&Event::Person(person.clone()), &mut out);
        let auction = Auction {
            id: 1,
            item_name: "i".into(),
            description: "d".into(),
            initial_bid: 1,
            reserve: 2,
            date_time: 500,
            expires: 600,
            seller: 4,
            category: 0,
        };
        q.process(&Event::Auction(auction.clone()), &mut out);
        // Close the window.
        q.process(&bid(1, 1, 1, 1_200), &mut out);
        assert_eq!(out, vec![(4, "pat p".to_string())]);
        // A new auction by the same person in the next window does not
        // match (the person is no longer "new").
        let late = Auction {
            date_time: 1_500,
            ..auction
        };
        q.process(&Event::Auction(late), &mut out);
        q.process(&bid(1, 1, 1, 2_500), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn q11_sessions_close_after_gap() {
        let mut q = Q11UserSessions::new(1_000);
        let mut out = Vec::new();
        q.process(&bid(1, 7, 1, 0), &mut out);
        q.process(&bid(1, 7, 1, 500), &mut out);
        q.process(&bid(1, 7, 1, 900), &mut out);
        assert!(out.is_empty(), "session still open");
        // Gap > 1000 closes the session (3 bids) and starts a new one.
        q.process(&bid(1, 7, 1, 2_500), &mut out);
        assert_eq!(out, vec![(7, 3)]);
        // Flush closes the remaining session.
        q.flush(10_000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], (7, 1));
    }

    #[test]
    fn q11_sessions_are_per_bidder() {
        let mut q = Q11UserSessions::new(1_000);
        let mut out = Vec::new();
        q.process(&bid(1, 1, 1, 0), &mut out);
        q.process(&bid(1, 2, 1, 100), &mut out);
        q.process(&bid(1, 1, 1, 200), &mut out);
        q.flush(5_000, &mut out);
        out.sort();
        assert_eq!(out, vec![(1, 2), (2, 1)]);
    }
}
