//! # ds2-nexmark — the Nexmark benchmark suite for DS2
//!
//! The paper evaluates DS2 on six queries from the Nexmark suite (§5.1):
//! stateless transformations (Q1 map, Q2 filter), a stateful incremental
//! two-input join (Q3), and window operators (Q5 sliding, Q8 tumbling
//! join, Q11 session). This crate provides:
//!
//! * [`model`] — the Person/Auction/Bid event model;
//! * [`generator`] — a deterministic event generator with Beam's 1:3:46
//!   person:auction:bid proportions and hot-key biases;
//! * [`queries`] — executable operator logic for all six queries (runs on
//!   the threaded mini-runtime and in correctness tests);
//! * [`profiles`] — calibrated simulator setups reproducing the paper's
//!   Table 3 rates and Table 4 / Figures 8–9 optimal configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod model;
pub mod profiles;
pub mod queries;

pub use generator::{EventGenerator, GeneratorConfig};
pub use model::{Auction, Bid, Event, Person};
pub use profiles::{setup, QueryId, QuerySetup, Target};
