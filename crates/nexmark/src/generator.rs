//! Deterministic Nexmark event generator.
//!
//! Follows the Apache Beam generator's structure: out of every 50 events,
//! 1 is a person, 3 are auctions and 46 are bids (so bids dominate, as in
//! the paper's Table 3 workloads). Ids are dense and monotone; bids
//! reference recent auctions and persons with a hot-key bias, auctions
//! reference recent persons as sellers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::model::{Auction, Bid, Event, Person, US_CITIES, US_STATES};

/// Proportions per 50-event block (Beam defaults).
pub const PERSON_PROPORTION: u64 = 1;
/// Auctions per 50-event block.
pub const AUCTION_PROPORTION: u64 = 3;
/// Bids per 50-event block.
pub const BID_PROPORTION: u64 = 46;
/// Total events per block.
pub const PROPORTION_DENOMINATOR: u64 = PERSON_PROPORTION + AUCTION_PROPORTION + BID_PROPORTION;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed for deterministic streams.
    pub seed: u64,
    /// Average event-time gap between events, in microseconds.
    pub inter_event_gap_us: u64,
    /// Number of auction categories.
    pub num_categories: u64,
    /// Fraction of bids that target the single hottest auction
    /// (`1/hot_auction_ratio` of bids go to the hottest auction).
    pub hot_auction_ratio: u64,
    /// Same for hot bidders.
    pub hot_bidder_ratio: u64,
    /// How long auctions stay open, in milliseconds of event time.
    pub auction_duration_ms: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            inter_event_gap_us: 100,
            num_categories: 5,
            hot_auction_ratio: 2,
            hot_bidder_ratio: 4,
            auction_duration_ms: 10_000,
        }
    }
}

/// Deterministic Nexmark event generator.
#[derive(Debug)]
pub struct EventGenerator {
    config: GeneratorConfig,
    rng: SmallRng,
    next_event_number: u64,
}

impl EventGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Self {
            config,
            rng,
            next_event_number: 0,
        }
    }

    /// Creates a generator with default configuration and `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self::new(GeneratorConfig {
            seed,
            ..Default::default()
        })
    }

    /// Number of events generated so far.
    pub fn events_generated(&self) -> u64 {
        self.next_event_number
    }

    fn event_timestamp(&self, event_number: u64) -> u64 {
        event_number * self.config.inter_event_gap_us / 1_000
    }

    /// Ids of persons generated among the first `event_number` events.
    fn persons_so_far(event_number: u64) -> u64 {
        let blocks = event_number / PROPORTION_DENOMINATOR;
        let rem = event_number % PROPORTION_DENOMINATOR;
        blocks * PERSON_PROPORTION + rem.min(PERSON_PROPORTION)
    }

    /// Ids of auctions generated among the first `event_number` events.
    fn auctions_so_far(event_number: u64) -> u64 {
        let blocks = event_number / PROPORTION_DENOMINATOR;
        let rem = event_number % PROPORTION_DENOMINATOR;
        blocks * AUCTION_PROPORTION
            + rem
                .saturating_sub(PERSON_PROPORTION)
                .min(AUCTION_PROPORTION)
    }

    fn random_string(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + self.rng.gen_range(0..26u8)) as char)
            .collect()
    }

    fn make_person(&mut self, id: u64, ts: u64) -> Person {
        let name = format!("{} {}", self.random_string(4), self.random_string(6));
        let idx = self.rng.gen_range(0..US_STATES.len());
        Person {
            id,
            email: format!("{}@{}.com", self.random_string(6), self.random_string(4)),
            credit_card: format!("{:016}", self.rng.gen_range(0u64..10_000_000_000_000_000)),
            city: US_CITIES[idx].to_string(),
            state: US_STATES[idx].to_string(),
            name,
            date_time: ts,
        }
    }

    fn make_auction(&mut self, id: u64, event_number: u64, ts: u64) -> Auction {
        let persons = Self::persons_so_far(event_number).max(1);
        // Sellers are recent persons, biased to the most recent 10.
        let seller = if self.rng.gen_bool(0.5) {
            persons - 1 - self.rng.gen_range(0..persons.min(10))
        } else {
            self.rng.gen_range(0..persons)
        };
        let initial_bid = self.rng.gen_range(100..10_000);
        Auction {
            id,
            item_name: self.random_string(8),
            description: self.random_string(20),
            initial_bid,
            reserve: initial_bid + self.rng.gen_range(100..5_000),
            date_time: ts,
            expires: ts + self.config.auction_duration_ms,
            seller,
            category: self.rng.gen_range(0..self.config.num_categories),
        }
    }

    fn make_bid(&mut self, event_number: u64, ts: u64) -> Bid {
        let auctions = Self::auctions_so_far(event_number).max(1);
        let persons = Self::persons_so_far(event_number).max(1);
        // Hot-auction bias: 1/hot_ratio of bids go to the hottest auction.
        let auction = if self.rng.gen_ratio(1, self.config.hot_auction_ratio as u32) {
            auctions - 1
        } else {
            self.rng.gen_range(0..auctions)
        };
        let bidder = if self.rng.gen_ratio(1, self.config.hot_bidder_ratio as u32) {
            persons - 1
        } else {
            self.rng.gen_range(0..persons)
        };
        Bid {
            auction,
            bidder,
            price: self.rng.gen_range(100..10_000),
            date_time: ts,
        }
    }

    /// Generates the next event.
    pub fn next_event(&mut self) -> Event {
        let n = self.next_event_number;
        self.next_event_number += 1;
        let ts = self.event_timestamp(n);
        let rem = n % PROPORTION_DENOMINATOR;
        if rem < PERSON_PROPORTION {
            let id = Self::persons_so_far(n);
            Event::Person(self.make_person(id, ts))
        } else if rem < PERSON_PROPORTION + AUCTION_PROPORTION {
            let id = Self::auctions_so_far(n);
            Event::Auction(self.make_auction(id, n, ts))
        } else {
            Event::Bid(self.make_bid(n, ts))
        }
    }

    /// Generates a batch of `n` events.
    pub fn take_events(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

impl Iterator for EventGenerator {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_match_beam() {
        let mut g = EventGenerator::seeded(7);
        let events = g.take_events(5_000);
        let persons = events.iter().filter(|e| e.person().is_some()).count();
        let auctions = events.iter().filter(|e| e.auction().is_some()).count();
        let bids = events.iter().filter(|e| e.bid().is_some()).count();
        assert_eq!(persons, 100); // 5000 / 50 * 1
        assert_eq!(auctions, 300); // 5000 / 50 * 3
        assert_eq!(bids, 4_600); // 5000 / 50 * 46
    }

    #[test]
    fn deterministic_given_seed() {
        let a = EventGenerator::seeded(11).take_events(500);
        let b = EventGenerator::seeded(11).take_events(500);
        assert_eq!(a, b);
        let c = EventGenerator::seeded(12).take_events(500);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_monotone() {
        let mut g = EventGenerator::seeded(3);
        let events = g.take_events(1_000);
        for w in events.windows(2) {
            assert!(w[0].timestamp() <= w[1].timestamp());
        }
    }

    #[test]
    fn ids_dense_and_monotone() {
        let mut g = EventGenerator::seeded(5);
        let events = g.take_events(10_000);
        let person_ids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.person().map(|p| p.id))
            .collect();
        for (i, &id) in person_ids.iter().enumerate() {
            assert_eq!(id, i as u64);
        }
        let auction_ids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.auction().map(|a| a.id))
            .collect();
        for (i, &id) in auction_ids.iter().enumerate() {
            assert_eq!(id, i as u64);
        }
    }

    #[test]
    fn bids_reference_existing_entities() {
        let mut g = EventGenerator::seeded(9);
        let events = g.take_events(20_000);
        let mut max_auction = 0u64;
        let mut max_person = 0u64;
        for e in &events {
            match e {
                Event::Auction(a) => {
                    assert!(a.seller <= max_person, "seller {} unknown", a.seller);
                    max_auction = max_auction.max(a.id);
                }
                Event::Person(p) => max_person = max_person.max(p.id),
                Event::Bid(b) => {
                    assert!(b.auction <= max_auction, "auction {} unknown", b.auction);
                    assert!(b.bidder <= max_person, "bidder {} unknown", b.bidder);
                }
            }
        }
    }

    #[test]
    fn hot_auction_bias_present() {
        let mut g = EventGenerator::new(GeneratorConfig {
            seed: 13,
            hot_auction_ratio: 2,
            ..Default::default()
        });
        // With ratio 2, half the bids target the hottest (most recent)
        // auction *at the time of the bid*.
        let mut auctions_so_far = 0u64;
        let mut bids = 0u64;
        let mut hot = 0u64;
        for e in g.take_events(50_000) {
            match e {
                Event::Auction(_) => auctions_so_far += 1,
                Event::Bid(b) => {
                    bids += 1;
                    if auctions_so_far > 0 && b.auction == auctions_so_far - 1 {
                        hot += 1;
                    }
                }
                Event::Person(_) => {}
            }
        }
        let frac = hot as f64 / bids as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "hot-bid fraction {frac} should be ~0.5"
        );
    }

    #[test]
    fn auction_expiry_after_open() {
        let mut g = EventGenerator::seeded(21);
        for e in g.take_events(5_000) {
            if let Event::Auction(a) = e {
                assert!(a.expires > a.date_time);
                assert!(a.reserve >= a.initial_bid);
            }
        }
    }
}
