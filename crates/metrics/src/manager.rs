//! The `MetricsManager` (paper §4.1): gathers, aggregates, and reports
//! policy metrics.
//!
//! Operator instances send [`Report`]s through a lightweight channel — in
//! Flink terms, a source instance reports whenever an output buffer fills
//! and a regular instance whenever it finishes an input buffer. The manager
//! merges reports per instance and closes a [`MetricsSnapshot`] once per
//! policy interval ("reports them to the outside world in configurable
//! intervals").

use std::collections::BTreeMap;

use crossbeam::channel::{unbounded, Receiver, Sender};
use ds2_core::graph::OperatorId;
use ds2_core::rates::InstanceMetrics;
use ds2_core::snapshot::MetricsSnapshot;

/// One instrumentation report from an operator instance.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// The logical operator the instance belongs to.
    pub operator: OperatorId,
    /// Index of the instance within the operator (0-based).
    pub instance: usize,
    /// Counters accumulated since the instance's previous report.
    pub metrics: InstanceMetrics,
}

/// Cloneable handle operator instances use to report metrics.
#[derive(Debug, Clone)]
pub struct MetricsReporter {
    tx: Sender<Report>,
}

impl MetricsReporter {
    /// Sends a report; silently drops it if the manager is gone (an
    /// instance must never crash because monitoring shut down first).
    pub fn report(&self, report: Report) {
        let _ = self.tx.send(report);
    }

    /// Convenience wrapper building the [`Report`] in place.
    pub fn report_window(&self, operator: OperatorId, instance: usize, metrics: InstanceMetrics) {
        self.report(Report {
            operator,
            instance,
            metrics,
        });
    }
}

/// Gathers reports from all instances and produces per-interval snapshots.
#[derive(Debug)]
pub struct MetricsManager {
    tx: Sender<Report>,
    rx: Receiver<Report>,
    pending: BTreeMap<(OperatorId, usize), InstanceMetrics>,
    source_rates: BTreeMap<OperatorId, f64>,
    reports_received: u64,
}

impl Default for MetricsManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsManager {
    /// Creates a manager with an open report channel.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Self {
            tx,
            rx,
            pending: BTreeMap::new(),
            source_rates: BTreeMap::new(),
            reports_received: 0,
        }
    }

    /// Creates a reporter handle for operator instances.
    pub fn reporter(&self) -> MetricsReporter {
        MetricsReporter {
            tx: self.tx.clone(),
        }
    }

    /// Sets the externally monitored offered rate of a source (§3.2: source
    /// rates come from outside the reference system).
    pub fn set_source_rate(&mut self, op: OperatorId, rate: f64) {
        self.source_rates.insert(op, rate);
    }

    /// Total reports received since construction.
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }

    /// Drains the channel, merging reports into the current interval.
    pub fn drain(&mut self) {
        while let Ok(report) = self.rx.try_recv() {
            self.reports_received += 1;
            self.pending
                .entry((report.operator, report.instance))
                .and_modify(|m| m.merge(&report.metrics))
                .or_insert(report.metrics);
        }
    }

    /// Closes the current interval: drains outstanding reports, builds the
    /// snapshot, and resets for the next interval.
    ///
    /// Instances are ordered by their reported index; gaps (an instance that
    /// reported nothing) are filled with empty metrics so the snapshot's
    /// parallelism matches the deployment.
    pub fn collect_snapshot(&mut self) -> MetricsSnapshot {
        self.drain();
        let mut snapshot = MetricsSnapshot::new();
        let mut per_op: BTreeMap<OperatorId, BTreeMap<usize, InstanceMetrics>> = BTreeMap::new();
        for ((op, inst), m) in std::mem::take(&mut self.pending) {
            per_op.entry(op).or_default().insert(inst, m);
        }
        for (op, by_idx) in per_op {
            let max_idx = *by_idx.keys().next_back().expect("non-empty");
            let mut instances = vec![InstanceMetrics::default(); max_idx + 1];
            for (idx, m) in by_idx {
                instances[idx] = m;
            }
            snapshot.insert_instances(op, instances);
        }
        for (&op, &rate) in &self.source_rates {
            snapshot.set_source_rate(op, rate);
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(records_in: u64, useful_ns: u64) -> InstanceMetrics {
        InstanceMetrics {
            records_in,
            records_out: records_in,
            useful_ns,
            window_ns: useful_ns * 2,
            ..Default::default()
        }
    }

    #[test]
    fn reports_are_merged_per_instance() {
        let mut mgr = MetricsManager::new();
        let rep = mgr.reporter();
        let op = OperatorId(1);
        rep.report_window(op, 0, metrics(10, 100));
        rep.report_window(op, 0, metrics(20, 200));
        rep.report_window(op, 1, metrics(5, 50));
        let snap = mgr.collect_snapshot();
        let om = snap.operator(op).unwrap();
        assert_eq!(om.parallelism(), 2);
        assert_eq!(om.instances[0].records_in, 30);
        assert_eq!(om.instances[0].useful_ns, 300);
        assert_eq!(om.instances[1].records_in, 5);
        assert_eq!(mgr.reports_received(), 3);
    }

    #[test]
    fn snapshot_resets_interval() {
        let mut mgr = MetricsManager::new();
        let rep = mgr.reporter();
        rep.report_window(OperatorId(0), 0, metrics(10, 100));
        let first = mgr.collect_snapshot();
        assert!(first.operator(OperatorId(0)).is_some());
        let second = mgr.collect_snapshot();
        assert!(second.operator(OperatorId(0)).is_none());
    }

    #[test]
    fn missing_instances_filled_with_empty() {
        let mut mgr = MetricsManager::new();
        let rep = mgr.reporter();
        // Instance 2 reports, 0 and 1 are silent this interval.
        rep.report_window(OperatorId(3), 2, metrics(7, 70));
        let snap = mgr.collect_snapshot();
        let om = snap.operator(OperatorId(3)).unwrap();
        assert_eq!(om.parallelism(), 3);
        assert_eq!(om.instances[0], InstanceMetrics::default());
        assert_eq!(om.instances[2].records_in, 7);
    }

    #[test]
    fn source_rates_propagate() {
        let mut mgr = MetricsManager::new();
        mgr.set_source_rate(OperatorId(0), 1234.5);
        let snap = mgr.collect_snapshot();
        assert_eq!(snap.source_rate(OperatorId(0)), Some(1234.5));
    }

    #[test]
    fn reporter_survives_manager_drop() {
        let mgr = MetricsManager::new();
        let rep = mgr.reporter();
        drop(mgr);
        // Must not panic.
        rep.report_window(OperatorId(0), 0, metrics(1, 1));
    }

    #[test]
    fn concurrent_reporters() {
        let mut mgr = MetricsManager::new();
        let handles: Vec<_> = (0..4usize)
            .map(|i| {
                let rep = mgr.reporter();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rep.report_window(OperatorId(0), i, metrics(1, 10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = mgr.collect_snapshot();
        let om = snap.operator(OperatorId(0)).unwrap();
        assert_eq!(om.parallelism(), 4);
        assert_eq!(om.total_records_in(), 4000);
    }
}
