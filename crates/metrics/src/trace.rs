//! Timely-style raw trace events and their aggregation (paper §4.1).
//!
//! Timely Dataflow does not block operators on input or output: workers
//! continuously spin, scheduling every operator round-robin even when there
//! is nothing to process. Its logging therefore emits raw *events*
//! (operator scheduled, records handled) rather than counters. The paper
//! modified Timely's logger to forward only the "useful" scheduling events —
//! those in which the operator actually did work — because spinning events
//! would otherwise saturate the metrics manager.
//!
//! [`TraceAggregator`] reproduces that pipeline: it consumes a stream of
//! [`TraceEvent`]s and produces per-(operator, worker) [`InstanceMetrics`]
//! windows, counting only useful schedules toward useful time.

use std::collections::BTreeMap;

use ds2_core::graph::OperatorId;
use ds2_core::rates::InstanceMetrics;

/// Identifier of a worker thread in a Timely-like runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

/// A raw trace event emitted by an instrumented worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An operator activation began on a worker.
    ScheduleStart {
        /// Worker that scheduled the operator.
        worker: WorkerId,
        /// The scheduled operator.
        operator: OperatorId,
        /// Event timestamp in nanoseconds.
        at_ns: u64,
    },
    /// The activation ended, having processed and produced some records.
    ///
    /// `records_in == 0 && records_out == 0` marks a *spinning* activation:
    /// the operator was scheduled but had no work. Such events contribute
    /// nothing to useful time and are dropped by the filtering layer.
    ScheduleEnd {
        /// Worker that scheduled the operator.
        worker: WorkerId,
        /// The scheduled operator.
        operator: OperatorId,
        /// Event timestamp in nanoseconds.
        at_ns: u64,
        /// Records pulled during the activation.
        records_in: u64,
        /// Records pushed during the activation.
        records_out: u64,
    },
}

impl TraceEvent {
    /// Returns `true` for `ScheduleEnd` events that did no work.
    pub fn is_spinning_end(&self) -> bool {
        matches!(
            self,
            TraceEvent::ScheduleEnd {
                records_in: 0,
                records_out: 0,
                ..
            }
        )
    }
}

/// Statistics about trace volume, demonstrating why the paper had to filter
/// spinning events before they reach the metrics manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events offered to the aggregator.
    pub total_events: u64,
    /// Events dropped by the useful-work filter.
    pub filtered_events: u64,
}

impl TraceStats {
    /// Fraction of events dropped, in `[0, 1]`.
    pub fn filtered_fraction(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.filtered_events as f64 / self.total_events as f64
        }
    }
}

/// Aggregates raw trace events into per-(operator, worker) metric windows.
#[derive(Debug, Default)]
pub struct TraceAggregator {
    /// Open activations: start timestamp per (operator, worker).
    open: BTreeMap<(OperatorId, WorkerId), u64>,
    /// Accumulated counters per (operator, worker).
    acc: BTreeMap<(OperatorId, WorkerId), Acc>,
    window_start_ns: u64,
    stats: TraceStats,
    /// When `true` (the paper's modified logger), spinning schedule events
    /// are dropped at the source and never reach the accumulators.
    filter_spinning: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    records_in: u64,
    records_out: u64,
    useful_ns: u64,
    spinning_ns: u64,
}

impl TraceAggregator {
    /// Creates an aggregator with the window starting at `now_ns`.
    ///
    /// `filter_spinning` enables the modified-logger behaviour (§4.1): only
    /// activations that performed useful work are traced.
    pub fn new(now_ns: u64, filter_spinning: bool) -> Self {
        Self {
            window_start_ns: now_ns,
            filter_spinning,
            ..Default::default()
        }
    }

    /// Consumes one trace event.
    pub fn observe(&mut self, event: TraceEvent) {
        self.stats.total_events += 1;
        match event {
            TraceEvent::ScheduleStart {
                worker,
                operator,
                at_ns,
            } => {
                self.open.insert((operator, worker), at_ns);
            }
            TraceEvent::ScheduleEnd {
                worker,
                operator,
                at_ns,
                records_in,
                records_out,
            } => {
                let key = (operator, worker);
                let Some(start) = self.open.remove(&key) else {
                    // End without start: dropped (partial window).
                    self.stats.filtered_events += 1;
                    return;
                };
                let duration = at_ns.saturating_sub(start);
                let spinning = records_in == 0 && records_out == 0;
                if spinning && self.filter_spinning {
                    self.stats.filtered_events += 1;
                    return;
                }
                let acc = self.acc.entry(key).or_default();
                if spinning {
                    acc.spinning_ns += duration;
                } else {
                    acc.records_in += records_in;
                    acc.records_out += records_out;
                    acc.useful_ns += duration;
                }
            }
        }
    }

    /// Volume statistics since construction.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Closes the window at `now_ns`, producing per-operator instance
    /// metrics (one instance per worker that was scheduled) and resetting
    /// the accumulators.
    ///
    /// Spinning time is reported as input-wait: a Timely worker that spins
    /// on an empty queue is semantically waiting for input even though it
    /// burns CPU — which is exactly why CPU utilization is a misleading
    /// scaling metric for Timely (§2).
    pub fn take_window(&mut self, now_ns: u64) -> BTreeMap<OperatorId, Vec<InstanceMetrics>> {
        let window_ns = now_ns.saturating_sub(self.window_start_ns);
        let mut out: BTreeMap<OperatorId, Vec<InstanceMetrics>> = BTreeMap::new();
        for (&(op, _worker), acc) in &self.acc {
            out.entry(op).or_default().push(InstanceMetrics {
                records_in: acc.records_in,
                records_out: acc.records_out,
                useful_ns: acc.useful_ns.min(window_ns),
                window_ns,
                wait_input_ns: acc.spinning_ns,
                wait_output_ns: 0,
            });
        }
        self.acc.clear();
        self.open.clear();
        self.window_start_ns = now_ns;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(w: usize, op: usize, at: u64) -> TraceEvent {
        TraceEvent::ScheduleStart {
            worker: WorkerId(w),
            operator: OperatorId(op),
            at_ns: at,
        }
    }

    fn end(w: usize, op: usize, at: u64, rin: u64, rout: u64) -> TraceEvent {
        TraceEvent::ScheduleEnd {
            worker: WorkerId(w),
            operator: OperatorId(op),
            at_ns: at,
            records_in: rin,
            records_out: rout,
        }
    }

    #[test]
    fn useful_activations_accumulate() {
        let mut agg = TraceAggregator::new(0, true);
        agg.observe(start(0, 1, 100));
        agg.observe(end(0, 1, 400, 10, 20));
        agg.observe(start(0, 1, 500));
        agg.observe(end(0, 1, 800, 5, 10));
        let win = agg.take_window(1_000);
        let m = &win[&OperatorId(1)][0];
        assert_eq!(m.records_in, 15);
        assert_eq!(m.records_out, 30);
        assert_eq!(m.useful_ns, 600);
        assert_eq!(m.window_ns, 1_000);
    }

    #[test]
    fn spinning_filtered_by_modified_logger() {
        let mut agg = TraceAggregator::new(0, true);
        for i in 0..100u64 {
            agg.observe(start(0, 1, i * 10));
            agg.observe(end(0, 1, i * 10 + 9, 0, 0));
        }
        agg.observe(start(0, 1, 2_000));
        agg.observe(end(0, 1, 2_100, 7, 7));
        assert!(agg.stats().filtered_fraction() > 0.45);
        let win = agg.take_window(3_000);
        let m = &win[&OperatorId(1)][0];
        assert_eq!(m.useful_ns, 100);
        assert_eq!(m.records_in, 7);
        // Filtered spinning does not even count as wait.
        assert_eq!(m.wait_input_ns, 0);
    }

    #[test]
    fn spinning_counted_as_wait_when_unfiltered() {
        let mut agg = TraceAggregator::new(0, false);
        agg.observe(start(0, 1, 0));
        agg.observe(end(0, 1, 500, 0, 0));
        agg.observe(start(0, 1, 500));
        agg.observe(end(0, 1, 700, 3, 3));
        let win = agg.take_window(1_000);
        let m = &win[&OperatorId(1)][0];
        assert_eq!(m.useful_ns, 200);
        assert_eq!(m.wait_input_ns, 500);
    }

    #[test]
    fn per_worker_instances() {
        let mut agg = TraceAggregator::new(0, true);
        agg.observe(start(0, 1, 0));
        agg.observe(end(0, 1, 100, 1, 1));
        agg.observe(start(1, 1, 0));
        agg.observe(end(1, 1, 300, 2, 2));
        let win = agg.take_window(1_000);
        assert_eq!(win[&OperatorId(1)].len(), 2);
    }

    #[test]
    fn end_without_start_is_dropped() {
        let mut agg = TraceAggregator::new(0, true);
        agg.observe(end(0, 1, 100, 5, 5));
        assert!(agg.take_window(1_000).is_empty());
        assert_eq!(agg.stats().filtered_events, 1);
    }

    #[test]
    fn window_reset_clears_state() {
        let mut agg = TraceAggregator::new(0, true);
        agg.observe(start(0, 1, 0));
        agg.observe(end(0, 1, 100, 1, 1));
        let _ = agg.take_window(1_000);
        let win = agg.take_window(2_000);
        assert!(win.is_empty());
    }
}
