//! # ds2-metrics — instrumentation substrate for DS2 (paper §4.1)
//!
//! DS2 requires the stream processor to periodically report, per operator
//! instance: records processed, records produced, and useful time
//! (serialization + deserialization + processing) or, equivalently, waiting
//! time. This crate provides that machinery:
//!
//! * [`counters`] — per-instance local counters, both single-threaded
//!   ([`counters::InstanceCounters`]) and lock-free shared
//!   ([`counters::SharedCounters`]) variants;
//! * [`manager`] — the `MetricsManager` that gathers, aggregates and
//!   reports policy metrics in configurable intervals;
//! * [`trace`] — Timely-style raw event traces with the paper's
//!   "useful scheduling events only" filtering;
//! * [`repo`] — the metrics repository the Scaling Manager monitors
//!   (paper Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod manager;
pub mod repo;
pub mod trace;

pub use counters::{CounterTotals, InstanceCounters, SharedCounters, UsefulTime};
pub use manager::{MetricsManager, MetricsReporter, Report};
pub use repo::{MetricsRepository, SnapshotEntry};
pub use trace::{TraceAggregator, TraceEvent, TraceStats, WorkerId};
