//! Per-instance instrumentation counters (paper §4.1).
//!
//! Each parallel thread executing operator logic maintains local counters
//! for records read, records produced, (de)serialization duration,
//! processing duration, and waiting for input and output buffers. The
//! counters here are lock-free ([`SharedCounters`] uses relaxed atomics) so
//! the instrumentation cost stays in the nanosecond range — the overhead the
//! paper measures in Figure 10.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ds2_core::rates::InstanceMetrics;

/// Breakdown of useful time into the three §3.2 activities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsefulTime {
    /// Time spent deserializing input records, in nanoseconds.
    pub deserialization_ns: u64,
    /// Time spent in operator logic, in nanoseconds.
    pub processing_ns: u64,
    /// Time spent serializing output records, in nanoseconds.
    pub serialization_ns: u64,
}

impl UsefulTime {
    /// Total useful nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.deserialization_ns + self.processing_ns + self.serialization_ns
    }
}

/// Plain (single-threaded) instrumentation counters for one instance.
///
/// Used where the instance owns its counters (the simulator); the threaded
/// runtime uses [`SharedCounters`] instead.
#[derive(Debug, Clone, Default)]
pub struct InstanceCounters {
    records_in: u64,
    records_out: u64,
    useful: UsefulTime,
    wait_input_ns: u64,
    wait_output_ns: u64,
    window_start_ns: u64,
}

impl InstanceCounters {
    /// Creates counters with the window starting at `now_ns`.
    pub fn new(now_ns: u64) -> Self {
        Self {
            window_start_ns: now_ns,
            ..Default::default()
        }
    }

    /// Records `n` records pulled from the input.
    pub fn add_records_in(&mut self, n: u64) {
        self.records_in += n;
    }

    /// Records `n` records pushed to the output.
    pub fn add_records_out(&mut self, n: u64) {
        self.records_out += n;
    }

    /// Adds deserialization time.
    pub fn add_deserialization(&mut self, ns: u64) {
        self.useful.deserialization_ns += ns;
    }

    /// Adds processing time.
    pub fn add_processing(&mut self, ns: u64) {
        self.useful.processing_ns += ns;
    }

    /// Adds serialization time.
    pub fn add_serialization(&mut self, ns: u64) {
        self.useful.serialization_ns += ns;
    }

    /// Adds time spent waiting on an empty input.
    pub fn add_wait_input(&mut self, ns: u64) {
        self.wait_input_ns += ns;
    }

    /// Adds time spent waiting on a full output.
    pub fn add_wait_output(&mut self, ns: u64) {
        self.wait_output_ns += ns;
    }

    /// Current useful-time breakdown.
    pub fn useful(&self) -> UsefulTime {
        self.useful
    }

    /// Closes the window at `now_ns`, returning the model-facing metrics and
    /// resetting the counters for the next window.
    pub fn take_window(&mut self, now_ns: u64) -> InstanceMetrics {
        let window_ns = now_ns.saturating_sub(self.window_start_ns);
        let m = clamped_window(
            self.records_in,
            self.records_out,
            self.useful.total_ns(),
            window_ns,
            self.wait_input_ns,
            self.wait_output_ns,
        );
        *self = Self::new(now_ns);
        m
    }
}

/// Builds an [`InstanceMetrics`] window, clamping wall-clock measurements to
/// the model invariants `Wu <= W` and `Wu + waits <= W`.
///
/// Measurement intervals straddling the window boundary are credited
/// entirely to the window they end in, so raw useful/wait sums can exceed
/// the window by up to one interval; waits are scaled back proportionally.
fn clamped_window(
    records_in: u64,
    records_out: u64,
    useful_raw_ns: u64,
    window_ns: u64,
    wait_input_raw_ns: u64,
    wait_output_raw_ns: u64,
) -> InstanceMetrics {
    let useful_ns = useful_raw_ns.min(window_ns);
    let mut wait_input_ns = wait_input_raw_ns;
    let mut wait_output_ns = wait_output_raw_ns;
    let budget = window_ns - useful_ns;
    let total_wait = wait_input_ns.saturating_add(wait_output_ns);
    if total_wait > budget {
        wait_input_ns = (wait_input_ns as u128 * budget as u128 / total_wait as u128) as u64;
        wait_output_ns = (wait_output_ns as u128 * budget as u128 / total_wait as u128) as u64;
    }
    InstanceMetrics {
        records_in,
        records_out,
        useful_ns,
        window_ns,
        wait_input_ns,
        wait_output_ns,
    }
}

/// Lock-free counters shareable between an operator thread (writer) and the
/// metrics manager (reader).
///
/// All operations use `Ordering::Relaxed`: the counters are monotonic sums
/// whose cross-field consistency is only needed at window granularity, and
/// a window boundary that splits a single record's accounting across two
/// windows is harmless (the sums still converge).
#[derive(Debug, Default)]
pub struct SharedCounters {
    records_in: AtomicU64,
    records_out: AtomicU64,
    deserialization_ns: AtomicU64,
    processing_ns: AtomicU64,
    serialization_ns: AtomicU64,
    wait_input_ns: AtomicU64,
    wait_output_ns: AtomicU64,
    records_dropped: AtomicU64,
}

impl SharedCounters {
    /// Creates a zeroed, shareable counter set.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records `n` records pulled from the input.
    #[inline]
    pub fn add_records_in(&self, n: u64) {
        self.records_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` records pushed to the output.
    #[inline]
    pub fn add_records_out(&self, n: u64) {
        self.records_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds deserialization time.
    #[inline]
    pub fn add_deserialization(&self, ns: u64) {
        self.deserialization_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds processing time.
    #[inline]
    pub fn add_processing(&self, ns: u64) {
        self.processing_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds serialization time.
    #[inline]
    pub fn add_serialization(&self, ns: u64) {
        self.serialization_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds time spent waiting on an empty input.
    #[inline]
    pub fn add_wait_input(&self, ns: u64) {
        self.wait_input_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds time spent waiting on a full output.
    #[inline]
    pub fn add_wait_output(&self, ns: u64) {
        self.wait_output_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records `n` records dropped on the output path (a send whose receiver
    /// was gone). Zero in healthy runs; non-zero means degraded routing.
    #[inline]
    pub fn add_records_dropped(&self, n: u64) {
        self.records_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the cumulative totals (does not reset).
    pub fn totals(&self) -> CounterTotals {
        CounterTotals {
            records_in: self.records_in.load(Ordering::Relaxed),
            records_out: self.records_out.load(Ordering::Relaxed),
            useful_ns: self.deserialization_ns.load(Ordering::Relaxed)
                + self.processing_ns.load(Ordering::Relaxed)
                + self.serialization_ns.load(Ordering::Relaxed),
            wait_input_ns: self.wait_input_ns.load(Ordering::Relaxed),
            wait_output_ns: self.wait_output_ns.load(Ordering::Relaxed),
            records_dropped: self.records_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of [`SharedCounters`] cumulative totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterTotals {
    /// Cumulative records pulled from the input.
    pub records_in: u64,
    /// Cumulative records pushed to the output.
    pub records_out: u64,
    /// Cumulative useful nanoseconds.
    pub useful_ns: u64,
    /// Cumulative nanoseconds waiting on input.
    pub wait_input_ns: u64,
    /// Cumulative nanoseconds waiting on output.
    pub wait_output_ns: u64,
    /// Cumulative records dropped because an output receiver was gone.
    pub records_dropped: u64,
}

impl CounterTotals {
    /// Records dropped since an earlier reading `start` — the windowed
    /// companion of [`window_since`](Self::window_since) for the drop
    /// counter, which is reported per operator rather than per instance
    /// and therefore lives outside [`InstanceMetrics`].
    pub fn dropped_since(&self, start: &CounterTotals) -> u64 {
        self.records_dropped.saturating_sub(start.records_dropped)
    }

    /// Metrics for the window between an earlier reading `start` (taken at
    /// `start_ns`) and this reading (taken at `now_ns`).
    pub fn window_since(
        &self,
        start: &CounterTotals,
        start_ns: u64,
        now_ns: u64,
    ) -> InstanceMetrics {
        let window_ns = now_ns.saturating_sub(start_ns);
        clamped_window(
            self.records_in.saturating_sub(start.records_in),
            self.records_out.saturating_sub(start.records_out),
            self.useful_ns.saturating_sub(start.useful_ns),
            window_ns,
            self.wait_input_ns.saturating_sub(start.wait_input_ns),
            self.wait_output_ns.saturating_sub(start.wait_output_ns),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_time_totals() {
        let u = UsefulTime {
            deserialization_ns: 10,
            processing_ns: 20,
            serialization_ns: 30,
        };
        assert_eq!(u.total_ns(), 60);
    }

    #[test]
    fn instance_counters_window_roundtrip() {
        let mut c = InstanceCounters::new(1_000);
        c.add_records_in(10);
        c.add_records_out(20);
        c.add_deserialization(100);
        c.add_processing(200);
        c.add_serialization(50);
        c.add_wait_input(400);
        let m = c.take_window(2_000);
        assert_eq!(m.records_in, 10);
        assert_eq!(m.records_out, 20);
        assert_eq!(m.useful_ns, 350);
        assert_eq!(m.window_ns, 1_000);
        assert_eq!(m.wait_input_ns, 400);
        // Counters reset for the next window.
        let m2 = c.take_window(3_000);
        assert_eq!(m2.records_in, 0);
        assert_eq!(m2.useful_ns, 0);
        assert_eq!(m2.window_ns, 1_000);
    }

    #[test]
    fn take_window_clamps_useful_to_window() {
        // A window boundary race can make useful time appear to exceed the
        // window; the counters clamp to keep the model invariant Wu <= W.
        let mut c = InstanceCounters::new(0);
        c.add_processing(5_000);
        let m = c.take_window(1_000);
        assert_eq!(m.useful_ns, 1_000);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn take_window_clamps_excess_waits() {
        // Waits measured around window boundaries can exceed the non-useful
        // window time; both windowing paths must restore Wu + waits <= W.
        let mut c = InstanceCounters::new(0);
        c.add_processing(600);
        c.add_wait_input(700);
        let m = c.take_window(1_000);
        assert_eq!(m.useful_ns, 600);
        assert!(m.wait_input_ns <= 400);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
    }

    #[test]
    fn window_since_clamps_excess_waits() {
        let c = SharedCounters::new();
        c.add_processing(600);
        c.add_wait_input(500);
        c.add_wait_output(300);
        let m = c.totals().window_since(&CounterTotals::default(), 0, 1_000);
        assert_eq!(m.useful_ns, 600);
        assert!(m.wait_input_ns + m.wait_output_ns <= 400);
        // Proportional: input had 5/8 of the raw wait.
        assert!(m.wait_input_ns >= m.wait_output_ns);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
    }

    #[test]
    fn shared_counters_accumulate() {
        let c = SharedCounters::new();
        c.add_records_in(5);
        c.add_records_out(7);
        c.add_deserialization(10);
        c.add_processing(20);
        c.add_serialization(30);
        c.add_wait_input(100);
        c.add_wait_output(200);
        let t = c.totals();
        assert_eq!(t.records_in, 5);
        assert_eq!(t.records_out, 7);
        assert_eq!(t.useful_ns, 60);
        assert_eq!(t.wait_input_ns, 100);
        assert_eq!(t.wait_output_ns, 200);
    }

    #[test]
    fn window_since_diffs_totals() {
        let c = SharedCounters::new();
        c.add_records_in(100);
        c.add_processing(1_000);
        let start = c.totals();
        c.add_records_in(50);
        c.add_processing(500);
        c.add_wait_input(300);
        let end = c.totals();
        let m = end.window_since(&start, 10_000, 12_000);
        assert_eq!(m.records_in, 50);
        assert_eq!(m.useful_ns, 500);
        assert_eq!(m.wait_input_ns, 300);
        assert_eq!(m.window_ns, 2_000);
    }

    #[test]
    fn dropped_since_diffs_readings() {
        let c = SharedCounters::new();
        c.add_records_dropped(3);
        let start = c.totals();
        c.add_records_dropped(4);
        assert_eq!(c.totals().dropped_since(&start), 4);
        assert_eq!(
            start.dropped_since(&c.totals()),
            0,
            "saturates, never wraps"
        );
    }

    #[test]
    fn records_dropped_accumulates_separately() {
        let c = SharedCounters::new();
        c.add_records_out(10);
        c.add_records_dropped(3);
        let t = c.totals();
        assert_eq!(t.records_out, 10);
        assert_eq!(t.records_dropped, 3);
        // Drops are cumulative like every other counter, so windows diff.
        c.add_records_dropped(2);
        assert_eq!(c.totals().records_dropped, 5);
    }

    #[test]
    fn shared_counters_concurrent_writers() {
        let c = SharedCounters::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add_records_in(1);
                        c.add_processing(3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let t = c.totals();
        assert_eq!(t.records_in, 40_000);
        assert_eq!(t.useful_ns, 120_000);
    }
}
