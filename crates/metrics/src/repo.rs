//! The metrics repository of the DS2 architecture (paper Fig. 5).
//!
//! Instrumented jobs periodically push snapshots into the repository; the
//! Scaling Manager monitors it and invokes the policy when new metrics are
//! available. The repository keeps a bounded history so the manager can
//! aggregate several reporting intervals into one policy window.

use std::collections::VecDeque;

use ds2_core::snapshot::MetricsSnapshot;

/// A timestamped snapshot entry.
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// Time the snapshot was closed, in nanoseconds.
    pub at_ns: u64,
    /// The snapshot itself.
    pub snapshot: MetricsSnapshot,
}

/// Bounded history of metric snapshots.
#[derive(Debug)]
pub struct MetricsRepository {
    entries: VecDeque<SnapshotEntry>,
    capacity: usize,
    total_pushed: u64,
}

impl MetricsRepository {
    /// Creates a repository retaining up to `capacity` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "repository capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            total_pushed: 0,
        }
    }

    /// Pushes a snapshot, evicting the oldest when full.
    pub fn push(&mut self, at_ns: u64, snapshot: MetricsSnapshot) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(SnapshotEntry { at_ns, snapshot });
        self.total_pushed += 1;
    }

    /// Most recent snapshot, if any.
    pub fn latest(&self) -> Option<&SnapshotEntry> {
        self.entries.back()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no snapshot has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total snapshots ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Iterates over retained entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &SnapshotEntry> {
        self.entries.iter()
    }

    /// Merges the most recent `n` snapshots into one window.
    ///
    /// Per-operator instance metrics are merged element-wise when the
    /// operator kept the same parallelism across the merged snapshots;
    /// if the parallelism changed mid-window (a rescale happened), only the
    /// snapshots after the change are merged for that operator. Source rates
    /// are taken from the newest snapshot. Returns `None` when empty.
    pub fn merged_last(&self, n: usize) -> Option<MetricsSnapshot> {
        if self.entries.is_empty() || n == 0 {
            return None;
        }
        let take = n.min(self.entries.len());
        let window: Vec<&SnapshotEntry> = self.entries.iter().rev().take(take).collect();
        // `window[0]` is the newest.
        let newest = &window[0].snapshot;
        let mut merged = MetricsSnapshot::new();
        for (op, newest_metrics) in newest.operators() {
            let p = newest_metrics.parallelism();
            let mut acc = newest_metrics.clone();
            for entry in window.iter().skip(1) {
                match entry.snapshot.operator(op) {
                    Some(older) if older.parallelism() == p => {
                        for (dst, src) in acc.instances.iter_mut().zip(&older.instances) {
                            dst.merge(src);
                        }
                    }
                    // Parallelism changed (or operator missing): metrics
                    // before the change describe a different physical plan.
                    _ => break,
                }
            }
            merged.insert_operator(op, acc);
        }
        for (op, rate) in newest.source_rates() {
            merged.set_source_rate(op, rate);
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds2_core::graph::OperatorId;
    use ds2_core::rates::InstanceMetrics;

    fn snap(records: u64, p: usize) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.insert_instances(
            OperatorId(0),
            vec![
                InstanceMetrics {
                    records_in: records,
                    useful_ns: 100,
                    window_ns: 1000,
                    ..Default::default()
                };
                p
            ],
        );
        s.set_source_rate(OperatorId(0), records as f64);
        s
    }

    #[test]
    fn bounded_history_evicts_oldest() {
        let mut repo = MetricsRepository::new(2);
        repo.push(1, snap(1, 1));
        repo.push(2, snap(2, 1));
        repo.push(3, snap(3, 1));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.total_pushed(), 3);
        assert_eq!(repo.latest().unwrap().at_ns, 3);
        assert_eq!(repo.iter().next().unwrap().at_ns, 2);
    }

    #[test]
    fn merged_last_sums_counters() {
        let mut repo = MetricsRepository::new(8);
        repo.push(1, snap(10, 2));
        repo.push(2, snap(20, 2));
        repo.push(3, snap(30, 2));
        let merged = repo.merged_last(2).unwrap();
        let om = merged.operator(OperatorId(0)).unwrap();
        assert_eq!(om.instances[0].records_in, 50); // 20 + 30
        assert_eq!(om.instances[0].window_ns, 2000);
        // Newest source rate wins.
        assert_eq!(merged.source_rate(OperatorId(0)), Some(30.0));
    }

    #[test]
    fn merge_stops_at_parallelism_change() {
        let mut repo = MetricsRepository::new(8);
        repo.push(1, snap(10, 1)); // old parallelism
        repo.push(2, snap(20, 2)); // rescaled
        repo.push(3, snap(30, 2));
        let merged = repo.merged_last(3).unwrap();
        let om = merged.operator(OperatorId(0)).unwrap();
        // Only the two p=2 snapshots merge.
        assert_eq!(om.instances[0].records_in, 50);
        assert_eq!(om.parallelism(), 2);
    }

    #[test]
    fn merged_last_empty_is_none() {
        let repo = MetricsRepository::new(2);
        assert!(repo.merged_last(3).is_none());
        let mut repo = MetricsRepository::new(2);
        repo.push(1, snap(1, 1));
        assert!(repo.merged_last(0).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = MetricsRepository::new(0);
    }
}
