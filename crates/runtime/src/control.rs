//! The live control loop: a [`ScalingController`] driving a
//! [`RunningJob`](crate::engine::RunningJob) over wall-clock time — the
//! real-system counterpart of the simulator harness (paper Fig. 5).

use std::time::{Duration, Instant};

use ds2_core::controller::{ControllerVerdict, ScalingController};
use ds2_core::deployment::Deployment;
use ds2_core::error::Ds2Error;

use crate::engine::RunningJob;

/// Control-loop configuration.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Policy interval between snapshots.
    pub interval: Duration,
    /// Total run time.
    pub duration: Duration,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            duration: Duration::from_secs(10),
        }
    }
}

/// One control-loop event.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Time since the loop started.
    pub at: Duration,
    /// The plan applied, if the controller rescaled.
    pub rescaled_to: Option<Deployment>,
    /// Redeployment downtime, if a rescale happened.
    pub downtime: Option<Duration>,
    /// The typed failure, if an attempted rescale was aborted (e.g. a
    /// wedged worker blew the halt deadline). The loop stops on the first
    /// such error — the job is no longer running.
    pub error: Option<Ds2Error>,
}

/// Runs `controller` against `job` for the configured duration, applying
/// rescales through the engine's stop-the-world mechanism. Returns the
/// event log.
pub fn run_control_loop<R, C>(
    job: &mut RunningJob<R>,
    controller: &mut C,
    config: &ControlConfig,
) -> Vec<ControlEvent>
where
    R: Clone + Send + 'static,
    C: ScalingController,
{
    let start = Instant::now();
    let mut events = Vec::new();
    // Align the metrics window with the loop start.
    let _ = job.collect_snapshot();
    while start.elapsed() < config.duration {
        std::thread::sleep(config.interval);
        let snapshot = job.collect_snapshot();
        let now_ns = job.elapsed().as_nanos() as u64;
        let current = job.deployment().clone();
        match controller.on_metrics(now_ns, &snapshot, &current) {
            ControllerVerdict::NoAction => events.push(ControlEvent {
                at: start.elapsed(),
                rescaled_to: None,
                downtime: None,
                error: None,
            }),
            ControllerVerdict::Rescale(plan) => match job.rescale(plan.clone()) {
                Ok(downtime) => {
                    controller.on_deployed(job.elapsed().as_nanos() as u64, &plan);
                    // Discard metrics accumulated across the downtime.
                    let _ = job.collect_snapshot();
                    events.push(ControlEvent {
                        at: start.elapsed(),
                        rescaled_to: Some(plan),
                        downtime: Some(downtime),
                        error: None,
                    });
                }
                Err(e) => {
                    // The rescale aborted: the controller is NOT told the
                    // plan deployed, and with the job halted there is
                    // nothing left to control.
                    events.push(ControlEvent {
                        at: start.elapsed(),
                        rescaled_to: None,
                        downtime: None,
                        error: Some(e),
                    });
                    break;
                }
            },
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::logic::CostedLogic;
    use ds2_core::graph::GraphBuilder;
    use ds2_core::manager::{ManagerConfig, ScalingManager};

    /// End-to-end on real threads: a deliberately slow operator (2 ms per
    /// record => ~500 rec/s per instance) facing a 1200 rec/s source must
    /// be scaled up by DS2 to 3 instances.
    #[test]
    fn ds2_scales_live_job() {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let slow = b.operator("slow");
        b.connect(s, slow);
        let g = b.build().unwrap();

        let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
        spec.batch_size = 32;
        spec.source(s, 1_200.0, |n| n, |&r| r);
        spec.operator(
            slow,
            || {
                Box::new(CostedLogic::new(
                    Duration::from_millis(2),
                    |_r: u64, _out: &mut Vec<u64>| {},
                ))
            },
            |&r| r,
        );

        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        let mut manager = ScalingManager::new(
            g,
            ManagerConfig {
                warmup_intervals: 1,
                min_change: 0,
                ..Default::default()
            },
        );
        let events = run_control_loop(
            &mut job,
            &mut manager,
            &ControlConfig {
                interval: Duration::from_millis(500),
                duration: Duration::from_secs(6),
            },
        );
        let final_p = job.deployment().parallelism(OperatorId(1));
        job.shutdown();
        let rescales: Vec<_> = events.iter().filter(|e| e.rescaled_to.is_some()).collect();
        assert!(!rescales.is_empty(), "DS2 must act on the bottleneck");
        assert!(
            (3..=4).contains(&final_p),
            "expected ~3 instances for 1200/s at 500/s per instance, got {final_p}"
        );
    }

    use ds2_core::graph::OperatorId;
}
