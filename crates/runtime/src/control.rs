//! The live control loop: a [`ScalingController`] driving a
//! [`RunningJob`](crate::engine::RunningJob) over wall-clock time — the
//! real-system counterpart of the simulator harness (paper Fig. 5).
//!
//! The loop is *self-healing*: a failed rescale (wedged worker blowing the
//! halt deadline) or a worker panic no longer ends the run. Failures are
//! recorded as typed events, the job is redeployed from the last good
//! deployment plus the latest checkpoint, and the controller keeps being
//! driven — up to a bounded number of recoveries with exponential backoff,
//! after which the loop gives up with
//! [`Ds2Error::RecoveryExhausted`](ds2_core::error::Ds2Error).
//!
//! Ticks are scheduled against absolute deadlines (`start + k * interval`),
//! not relative sleeps, so time spent snapshotting, rescaling, or healing
//! does not stretch the policy interval. When one tick overruns, the loop
//! fires the latest missed deadline once and skips the rest — it never
//! bursts to catch up.

use std::time::{Duration, Instant};

use ds2_core::controller::{ControllerVerdict, ScalingController};
use ds2_core::deployment::Deployment;
use ds2_core::error::Ds2Error;
use ds2_core::snapshot::MetricsSnapshot;

use crate::engine::RunningJob;

/// Control-loop configuration.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Policy interval between snapshots.
    pub interval: Duration,
    /// Total run time.
    pub duration: Duration,
    /// Full redeploys the loop may perform after failed rescales before
    /// giving up. Instance-level panic restarts are budgeted separately
    /// (per instance, in
    /// [`SupervisionConfig`](crate::supervisor::SupervisionConfig)).
    pub max_recoveries: u32,
    /// Delay before the first redeploy after a failed rescale; doubles per
    /// recovery, capped at `interval`.
    pub recovery_backoff: Duration,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            duration: Duration::from_secs(10),
            max_recoveries: 3,
            recovery_backoff: Duration::from_millis(50),
        }
    }
}

/// One control-loop event.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Time since the loop started.
    pub at: Duration,
    /// The plan applied, if the controller rescaled.
    pub rescaled_to: Option<Deployment>,
    /// Redeployment downtime, if a rescale happened.
    pub downtime: Option<Duration>,
    /// The typed failure this event records, if any: a contained worker
    /// panic or wedge that was healed, an aborted rescale, or the final
    /// give-up.
    pub error: Option<Ds2Error>,
    /// `true` when the failure in `error` was recovered from (instance
    /// restarted or job redeployed) and the loop kept running.
    pub recovered: bool,
}

impl ControlEvent {
    fn tick(at: Duration) -> Self {
        Self {
            at,
            rescaled_to: None,
            downtime: None,
            error: None,
            recovered: false,
        }
    }
}

/// Runs `controller` against `job` for the configured duration, applying
/// rescales through the engine's stop-the-world mechanism and healing
/// worker failures as they surface. Returns the event log.
pub fn run_control_loop<R, C>(
    job: &mut RunningJob<R>,
    controller: &mut C,
    config: &ControlConfig,
) -> Vec<ControlEvent>
where
    R: Clone + Send + 'static,
    C: ScalingController,
{
    let start = Instant::now();
    let mut events = Vec::new();
    // One snapshot reused across every tick: `collect_snapshot_into`
    // recycles its operator slots, so the per-interval metrics path stops
    // allocating once the instance vectors have grown.
    let mut snapshot = MetricsSnapshot::new();
    // Align the metrics window with the loop start.
    job.collect_snapshot_into(&mut snapshot);
    let interval_ns = config.interval.as_nanos().max(1) as u64;
    let mut tick: u64 = 0;
    let mut recoveries: u32 = 0;
    loop {
        // Absolute-deadline schedule: tick k fires at start + k * interval.
        // If the previous tick overran, jump to the latest missed deadline
        // (fired late, once) instead of bursting through the backlog.
        tick += 1;
        let behind = (start.elapsed().as_nanos() as u64) / interval_ns;
        if behind > tick {
            tick = behind;
        }
        let deadline = Duration::from_nanos(interval_ns.saturating_mul(tick));
        if deadline > config.duration {
            break;
        }
        if let Some(wait) = (start + deadline).checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }

        let _ = job.maybe_checkpoint();

        // Heal contained worker failures before reading metrics, so the
        // snapshot reflects a fully deployed job.
        let heal = job.heal();
        for error in heal.healed {
            events.push(ControlEvent {
                error: Some(error),
                recovered: true,
                ..ControlEvent::tick(start.elapsed())
            });
        }
        if let Some(error) = heal.gave_up {
            events.push(ControlEvent {
                error: Some(error),
                ..ControlEvent::tick(start.elapsed())
            });
            break;
        }

        job.collect_snapshot_into(&mut snapshot);
        let now_ns = job.elapsed().as_nanos() as u64;
        let current = job.deployment().clone();
        match controller.on_metrics(now_ns, &snapshot, &current) {
            ControllerVerdict::NoAction => events.push(ControlEvent::tick(start.elapsed())),
            ControllerVerdict::Rescale(plan) => match job.rescale(plan.clone()) {
                Ok(downtime) => {
                    controller.on_deployed(job.elapsed().as_nanos() as u64, &plan);
                    // Discard metrics accumulated across the downtime.
                    job.collect_snapshot_into(&mut snapshot);
                    events.push(ControlEvent {
                        rescaled_to: Some(plan),
                        downtime: Some(downtime),
                        ..ControlEvent::tick(start.elapsed())
                    });
                }
                Err(e) => {
                    // The rescale aborted and the job is halted. The
                    // controller is NOT told the plan deployed — a
                    // verify-then-retry manager will re-issue it once the
                    // job is healthy again.
                    if recoveries >= config.max_recoveries {
                        events.push(ControlEvent {
                            error: Some(e),
                            ..ControlEvent::tick(start.elapsed())
                        });
                        events.push(ControlEvent {
                            error: Some(Ds2Error::RecoveryExhausted {
                                attempts: recoveries,
                            }),
                            ..ControlEvent::tick(start.elapsed())
                        });
                        break;
                    }
                    recoveries += 1;
                    let backoff = config
                        .recovery_backoff
                        .saturating_mul(1 << (recoveries - 1).min(16))
                        .min(config.interval);
                    std::thread::sleep(backoff);
                    job.recover();
                    // Discard the window spanning the outage.
                    job.collect_snapshot_into(&mut snapshot);
                    events.push(ControlEvent {
                        error: Some(e),
                        recovered: true,
                        ..ControlEvent::tick(start.elapsed())
                    });
                }
            },
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::logic::CostedLogic;
    use ds2_core::graph::{GraphBuilder, OperatorId};
    use ds2_core::manager::{ManagerConfig, ScalingManager};
    use ds2_core::snapshot::MetricsSnapshot;

    /// End-to-end on real threads: a deliberately slow operator (2 ms per
    /// record => ~500 rec/s per instance) facing a 1200 rec/s source must
    /// be scaled up by DS2 to 3 instances.
    #[test]
    fn ds2_scales_live_job() {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let slow = b.operator("slow");
        b.connect(s, slow);
        let g = b.build().unwrap();

        let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
        spec.batch_size = 32;
        spec.source(s, 1_200.0, |n| n, |&r| r);
        spec.operator(
            slow,
            || {
                Box::new(CostedLogic::new(
                    Duration::from_millis(2),
                    |_r: u64, _out: &mut Vec<u64>| {},
                ))
            },
            |&r| r,
        );

        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        let mut manager = ScalingManager::new(
            g,
            ManagerConfig {
                warmup_intervals: 1,
                min_change: 0,
                ..Default::default()
            },
        );
        let events = run_control_loop(
            &mut job,
            &mut manager,
            &ControlConfig {
                interval: Duration::from_millis(500),
                duration: Duration::from_secs(6),
                ..Default::default()
            },
        );
        let final_p = job.deployment().parallelism(OperatorId(1));
        job.shutdown();
        let rescales: Vec<_> = events.iter().filter(|e| e.rescaled_to.is_some()).collect();
        assert!(!rescales.is_empty(), "DS2 must act on the bottleneck");
        assert!(
            (3..=4).contains(&final_p),
            "expected ~3 instances for 1200/s at 500/s per instance, got {final_p}"
        );
    }

    /// A controller that burns real time inside `on_metrics` — with the old
    /// relative-sleep scheduling, that work time stretched every interval.
    struct SleepyController;

    impl ScalingController for SleepyController {
        fn name(&self) -> &str {
            "sleepy"
        }

        fn on_metrics(
            &mut self,
            _now_ns: u64,
            _snapshot: &MetricsSnapshot,
            _current: &Deployment,
        ) -> ControllerVerdict {
            std::thread::sleep(Duration::from_millis(40));
            ControllerVerdict::NoAction
        }
    }

    /// Interval drift pin: with a 100 ms interval over ~1.05 s and 40 ms of
    /// controller work per tick, absolute-deadline scheduling still fires
    /// ~10 ticks. The old `sleep(interval)`-after-work loop drifted to
    /// ~interval+work per tick (~7 events here).
    #[test]
    fn control_loop_does_not_drift_under_slow_ticks() {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let o = b.operator("op");
        b.connect(s, o);
        let g = b.build().unwrap();
        let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
        spec.source(s, 500.0, |n| n, |&r| r);
        spec.operator(
            o,
            || {
                Box::new(crate::logic::FnLogic::new(
                    |_r: u64, _out: &mut Vec<u64>| {},
                ))
            },
            |&r| r,
        );
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        let events = run_control_loop(
            &mut job,
            &mut SleepyController,
            &ControlConfig {
                interval: Duration::from_millis(100),
                duration: Duration::from_millis(1_050),
                ..Default::default()
            },
        );
        job.shutdown();
        assert!(
            (9..=10).contains(&events.len()),
            "expected ~10 undrifted ticks in 1.05s at 100ms, got {}",
            events.len()
        );
    }
}
