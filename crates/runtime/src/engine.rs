//! The threaded execution engine: one OS thread per operator instance,
//! bounded crossbeam channels between instances, hash partitioning on the
//! producer's key function, and stop-the-world rescaling with keyed state
//! migration — a miniature of the Flink mechanism §4.2 describes
//! (savepoint, halt, redeploy with new parallelism).
//!
//! Every instance maintains the §4.1 counters through
//! [`SharedCounters`]: records in/out, processing time, and input/output
//! wait time, measured with wall-clock precision around the blocking
//! channel operations.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use ds2_core::deployment::Deployment;
use ds2_core::graph::OperatorId;
use ds2_core::snapshot::MetricsSnapshot;
use ds2_metrics::counters::{CounterTotals, SharedCounters};

use crate::job::{JobSpec, KeyFn};
use crate::logic::{Logic, StateEntry};

/// Batches flowing through channels.
type Batch<R> = Vec<R>;

/// A route from one instance to all instances of one downstream operator.
struct OutputRoute<R> {
    senders: Vec<Sender<Batch<R>>>,
    key_fn: KeyFn<R>,
}

impl<R: Clone> OutputRoute<R> {
    /// Partitions `records` by key and sends the per-instance batches,
    /// accounting blocked time to `counters`.
    fn send_all(&self, records: &[R], counters: &SharedCounters) {
        if records.is_empty() || self.senders.is_empty() {
            return;
        }
        let p = self.senders.len();
        let mut buckets: Vec<Batch<R>> = vec![Vec::new(); p];
        for r in records {
            let k = (self.key_fn)(r) as usize % p;
            buckets[k].push(r.clone());
        }
        for (k, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let t0 = Instant::now();
            // A send error means the receiver is gone (shutdown under way):
            // drop the batch, the job is being torn down anyway.
            let _ = self.senders[k].send(bucket);
            counters.add_wait_output(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// One deployed instance.
struct InstanceHandle<R> {
    counters: Arc<SharedCounters>,
    last_totals: CounterTotals,
    join: JoinHandle<Option<Box<dyn Logic<R>>>>,
}

/// A running job: deployed threads plus the control-plane state.
pub struct RunningJob<R> {
    spec: JobSpec<R>,
    deployment: Deployment,
    instances: BTreeMap<OperatorId, Vec<InstanceHandle<R>>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    last_snapshot: Duration,
    rescales: u32,
}

impl<R: Clone + Send + 'static> RunningJob<R> {
    /// Deploys `spec` with the given initial parallelism.
    pub fn deploy(spec: JobSpec<R>, deployment: Deployment) -> Self {
        spec.validate();
        deployment
            .validate(&spec.graph)
            .expect("invalid deployment");
        let mut job = Self {
            spec,
            deployment,
            instances: BTreeMap::new(),
            stop: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            last_snapshot: Duration::ZERO,
            rescales: 0,
        };
        job.spawn_all(BTreeMap::new());
        job
    }

    /// Current deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Time since the job was first deployed.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Number of rescales performed.
    pub fn rescales(&self) -> u32 {
        self.rescales
    }

    /// Spawns all instances, restoring `state` (keyed entries per operator)
    /// into the new logic instances.
    fn spawn_all(&mut self, mut state: BTreeMap<OperatorId, Vec<StateEntry>>) {
        self.stop = Arc::new(AtomicBool::new(false));

        // Create input channels for every non-source instance.
        let mut rx: BTreeMap<OperatorId, Vec<Receiver<Batch<R>>>> = BTreeMap::new();
        let mut tx: BTreeMap<OperatorId, Vec<Sender<Batch<R>>>> = BTreeMap::new();
        for op in self.spec.graph.operators() {
            if self.spec.graph.is_source(op) {
                continue;
            }
            let p = self.deployment.parallelism(op);
            let mut rxs = Vec::with_capacity(p);
            let mut txs = Vec::with_capacity(p);
            for _ in 0..p {
                let (s, r) = bounded(self.spec.channel_capacity);
                txs.push(s);
                rxs.push(r);
            }
            rx.insert(op, rxs);
            tx.insert(op, txs);
        }

        let routes_for = |op: OperatorId, key_fn: &KeyFn<R>| -> Vec<OutputRoute<R>> {
            self.spec
                .graph
                .downstream_edges(op)
                .map(|e| OutputRoute {
                    senders: tx[&e.to].clone(),
                    key_fn: Arc::clone(key_fn),
                })
                .collect()
        };

        let mut instances: BTreeMap<OperatorId, Vec<InstanceHandle<R>>> = BTreeMap::new();

        // Spawn non-source operators first so their receivers exist before
        // sources start pushing.
        for op in self.spec.graph.operators() {
            if self.spec.graph.is_source(op) {
                continue;
            }
            let p = self.deployment.parallelism(op);
            let op_spec = self.spec.operators[&op].clone();
            let op_state = state.remove(&op).unwrap_or_default();
            // Partition restored state by key.
            let mut buckets: Vec<Vec<StateEntry>> = (0..p).map(|_| Vec::new()).collect();
            for (key, value) in op_state {
                buckets[key as usize % p].push((key, value));
            }
            let mut handles = Vec::with_capacity(p);
            let receivers = rx.remove(&op).expect("receivers created above");
            for (k, receiver) in receivers.into_iter().enumerate() {
                let mut logic = (op_spec.factory)();
                logic.restore_state(std::mem::take(&mut buckets[k]));
                let counters = SharedCounters::new();
                let routes = routes_for(op, &op_spec.key_fn);
                let c = Arc::clone(&counters);
                let join = std::thread::Builder::new()
                    .name(format!("{op}-{k}"))
                    .spawn(move || Some(worker_loop(logic, receiver, routes, c)))
                    .expect("spawn worker");
                handles.push(InstanceHandle {
                    counters,
                    last_totals: CounterTotals::default(),
                    join,
                });
            }
            instances.insert(op, handles);
        }

        // Spawn sources.
        for (&op, src) in &self.spec.sources {
            let p = self.deployment.parallelism(op);
            let mut handles = Vec::with_capacity(p);
            for k in 0..p {
                let counters = SharedCounters::new();
                let routes = routes_for(op, &src.key_fn);
                let c = Arc::clone(&counters);
                let stop = Arc::clone(&self.stop);
                let generate = Arc::clone(&src.generate);
                let rate = src.rate / p as f64;
                let batch = self.spec.batch_size;
                let join = std::thread::Builder::new()
                    .name(format!("{op}-src-{k}"))
                    .spawn(move || {
                        source_loop(generate, rate, batch, routes, c, stop);
                        None
                    })
                    .expect("spawn source");
                handles.push(InstanceHandle {
                    counters,
                    last_totals: CounterTotals::default(),
                    join,
                });
            }
            instances.insert(op, handles);
        }

        self.instances = instances;
    }

    /// Stops every thread (sources first, then the pipeline drains through
    /// channel disconnection) and returns the drained keyed state.
    fn halt(&mut self) -> BTreeMap<OperatorId, Vec<StateEntry>> {
        self.stop.store(true, Ordering::SeqCst);
        let mut state: BTreeMap<OperatorId, Vec<StateEntry>> = BTreeMap::new();
        // Join sources first: their senders drop, disconnecting downstream
        // receivers once in-flight batches are drained.
        let source_ids: Vec<OperatorId> = self.spec.graph.sources().to_vec();
        for op in source_ids {
            if let Some(handles) = self.instances.remove(&op) {
                for h in handles {
                    let _ = h.join.join().expect("source thread panicked");
                }
            }
        }
        // Then every downstream operator in topological order.
        let order: Vec<OperatorId> = self.spec.graph.topological_order().collect();
        for op in order {
            let Some(handles) = self.instances.remove(&op) else {
                continue;
            };
            let mut entries = Vec::new();
            for h in handles {
                if let Some(mut logic) = h.join.join().expect("worker thread panicked") {
                    entries.extend(logic.drain_state());
                }
            }
            state.insert(op, entries);
        }
        state
    }

    /// Stop-the-world rescale: halt, drain state, redeploy with `plan`.
    ///
    /// Returns the downtime (the paper's savepoint-and-restore latency).
    pub fn rescale(&mut self, plan: Deployment) -> Duration {
        plan.validate(&self.spec.graph).expect("invalid plan");
        let t0 = Instant::now();
        let state = self.halt();
        self.deployment = plan;
        self.spawn_all(state);
        self.rescales += 1;
        t0.elapsed()
    }

    /// Shuts the job down, returning the final drained state.
    pub fn shutdown(mut self) -> BTreeMap<OperatorId, Vec<StateEntry>> {
        self.halt()
    }

    /// Closes the instrumentation window and builds a metrics snapshot.
    pub fn collect_snapshot(&mut self) -> MetricsSnapshot {
        let now = self.epoch.elapsed();
        let window_start = self.last_snapshot;
        self.last_snapshot = now;
        let mut snap = MetricsSnapshot::new();
        for (&op, handles) in self.instances.iter_mut() {
            let mut metrics = Vec::with_capacity(handles.len());
            for h in handles.iter_mut() {
                let totals = h.counters.totals();
                metrics.push(totals.window_since(
                    &h.last_totals,
                    window_start.as_nanos() as u64,
                    now.as_nanos() as u64,
                ));
                h.last_totals = totals;
            }
            snap.insert_instances(op, metrics);
        }
        for (&op, src) in &self.spec.sources {
            snap.set_source_rate(op, src.rate);
        }
        snap
    }
}

/// Worker loop for a non-source instance. Returns the logic for state
/// migration once every upstream sender disconnected.
fn worker_loop<R: Clone + Send + 'static>(
    mut logic: Box<dyn Logic<R>>,
    rx: Receiver<Batch<R>>,
    routes: Vec<OutputRoute<R>>,
    counters: Arc<SharedCounters>,
) -> Box<dyn Logic<R>> {
    let mut out_buf: Vec<R> = Vec::new();
    loop {
        let t_wait = Instant::now();
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(batch) => {
                counters.add_wait_input(t_wait.elapsed().as_nanos() as u64);
                let n_in = batch.len() as u64;
                let t0 = Instant::now();
                for r in batch {
                    logic.process(r, &mut out_buf);
                }
                counters.add_processing(t0.elapsed().as_nanos() as u64);
                counters.add_records_in(n_in);
                let n_out = out_buf.len() as u64;
                for route in &routes {
                    route.send_all(&out_buf, &counters);
                }
                counters.add_records_out(n_out);
                out_buf.clear();
            }
            Err(RecvTimeoutError::Timeout) => {
                counters.add_wait_input(t_wait.elapsed().as_nanos() as u64);
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    logic
}

/// Source loop: rate-limited generation in batches.
fn source_loop<R: Clone + Send + 'static>(
    generate: crate::job::SourceFn<R>,
    rate: f64,
    batch_size: usize,
    routes: Vec<OutputRoute<R>>,
    counters: Arc<SharedCounters>,
    stop: Arc<AtomicBool>,
) {
    if rate <= 0.0 {
        return;
    }
    let interval = Duration::from_secs_f64(batch_size as f64 / rate);
    let mut seq = 0u64;
    let mut next = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        let batch: Vec<R> = (0..batch_size)
            .map(|_| {
                let r = generate(seq);
                seq += 1;
                r
            })
            .collect();
        counters.add_processing(t0.elapsed().as_nanos() as u64);
        for route in &routes {
            route.send_all(&batch, &counters);
        }
        counters.add_records_out(batch.len() as u64);

        next += interval;
        let now = Instant::now();
        if next > now {
            let sleep = next - now;
            counters.add_wait_input(sleep.as_nanos() as u64);
            std::thread::sleep(sleep);
        } else {
            // Falling behind (backpressure or overload): reset the clock so
            // the source does not try to "catch up" in a burst.
            next = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::FnLogic;
    use ds2_core::graph::GraphBuilder;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    type Shared = Arc<Mutex<HashMap<u64, u64>>>;

    /// A keyed counting logic with migratable state.
    struct CountLogic {
        counts: HashMap<u64, u64>,
        sink: Shared,
    }

    impl Logic<u64> for CountLogic {
        fn process(&mut self, record: u64, _out: &mut Vec<u64>) {
            *self.counts.entry(record).or_insert(0) += 1;
            *self.sink.lock().entry(record).or_insert(0) += 1;
        }

        fn drain_state(&mut self) -> Vec<StateEntry> {
            self.counts
                .drain()
                .map(|(k, v)| (k, Box::new(v) as Box<dyn std::any::Any + Send>))
                .collect()
        }

        fn restore_state(&mut self, entries: Vec<StateEntry>) {
            for (k, v) in entries {
                let v = *v.downcast::<u64>().expect("state is u64");
                *self.counts.entry(k).or_insert(0) += v;
            }
        }
    }

    fn pipeline(rate: f64) -> (JobSpec<u64>, OperatorId, OperatorId, OperatorId, Shared) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let m = b.operator("double");
        let c = b.operator("count");
        b.connect(s, m);
        b.connect(m, c);
        let g = b.build().unwrap();
        let sink: Shared = Arc::new(Mutex::new(HashMap::new()));
        let mut spec = JobSpec::new(g);
        spec.source(s, rate, |n| n % 64, |&r| r);
        spec.operator(
            m,
            || {
                Box::new(FnLogic::new(|r: u64, out: &mut Vec<u64>| {
                    out.push(r);
                    out.push(r);
                }))
            },
            |&r| r,
        );
        let sink2 = Arc::clone(&sink);
        spec.operator(
            c,
            move || {
                Box::new(CountLogic {
                    counts: HashMap::new(),
                    sink: Arc::clone(&sink2),
                })
            },
            |&r| r,
        );
        (spec, s, m, c, sink)
    }

    #[test]
    fn records_flow_end_to_end() {
        let (spec, _s, m, _c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 2));
        std::thread::sleep(Duration::from_millis(600));
        let snap = job.collect_snapshot();
        let state = job.shutdown();
        let total: u64 = sink.lock().values().sum();
        assert!(total > 5_000, "only {total} records reached the sink");
        // The doubling operator emits 2 records per input.
        let m_metrics = snap.operator(m).unwrap();
        let sel = m_metrics.total_records_out() as f64 / m_metrics.total_records_in() as f64;
        assert!((sel - 2.0).abs() < 0.01, "selectivity {sel}");
        // Count state drained on shutdown matches the sink totals.
        let drained: usize = state.values().map(Vec::len).sum();
        assert!(drained > 0);
    }

    #[test]
    fn snapshot_reports_all_instances() {
        let (spec, s, m, c, _sink) = pipeline(5_000.0);
        let g = spec.graph.clone();
        let mut d = Deployment::uniform(&g, 1);
        d.set(m, 3);
        let mut job = RunningJob::deploy(spec, d);
        std::thread::sleep(Duration::from_millis(300));
        let snap = job.collect_snapshot();
        assert_eq!(snap.operator(s).unwrap().parallelism(), 1);
        assert_eq!(snap.operator(m).unwrap().parallelism(), 3);
        assert_eq!(snap.operator(c).unwrap().parallelism(), 1);
        assert_eq!(snap.source_rate(s), Some(5_000.0));
        // Wu <= W for every instance.
        for (_, om) in snap.operators() {
            for i in &om.instances {
                assert!(i.validate().is_ok());
            }
        }
        job.shutdown();
    }

    #[test]
    fn rescale_preserves_counts() {
        let (spec, _s, _m, c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        std::thread::sleep(Duration::from_millis(400));
        let mut plan = job.deployment().clone();
        plan.set(c, 4);
        let downtime = job.rescale(plan);
        assert!(downtime < Duration::from_secs(5));
        assert_eq!(job.rescales(), 1);
        std::thread::sleep(Duration::from_millis(400));
        let mut state = job.shutdown();
        // Every record that reached the sink is still accounted for in the
        // migrated state: aggregate drained counts equal sink totals.
        let sink_total: u64 = sink.lock().values().sum();
        let mut drained_total = 0u64;
        for (_k, v) in state.remove(&c).unwrap_or_default() {
            drained_total += *v.downcast::<u64>().unwrap();
        }
        assert_eq!(
            drained_total, sink_total,
            "state lost or duplicated across rescale"
        );
    }

    /// State conservation through *up then down* rescales, including the
    /// scale-down case where the restored key space (64 keys) far exceeds
    /// the new instance count: every key's migrated count must equal its
    /// sink total — exactly the invariant an unrescaled run satisfies
    /// trivially (see `records_flow_end_to_end`).
    #[test]
    fn rescale_up_then_down_conserves_keyed_state() {
        let (spec, _s, _m, c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut d = Deployment::uniform(&g, 1);
        d.set(c, 2);
        let mut job = RunningJob::deploy(spec, d);
        std::thread::sleep(Duration::from_millis(300));

        // Scale up: 2 -> 5 instances; restored keys re-partition across
        // more instances than before.
        let mut plan = job.deployment().clone();
        plan.set(c, 5);
        job.rescale(plan);
        std::thread::sleep(Duration::from_millis(300));

        // Scale down: 5 -> 1 instance; all 64 restored keys must land on
        // the single remaining instance.
        let mut plan = job.deployment().clone();
        plan.set(c, 1);
        job.rescale(plan);
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(job.rescales(), 2);

        let mut state = job.shutdown();
        let mut drained: HashMap<u64, u64> = HashMap::new();
        for (k, v) in state.remove(&c).unwrap_or_default() {
            *drained.entry(k).or_insert(0) += *v.downcast::<u64>().unwrap();
        }
        let sink_counts = sink.lock().clone();
        assert!(
            sink_counts.keys().len() > 32,
            "expected a wide key space, got {}",
            sink_counts.keys().len()
        );
        // Per-key equality: nothing lost, nothing duplicated, across both
        // migrations.
        assert_eq!(
            drained, sink_counts,
            "keyed state diverged from sink totals across up+down rescale"
        );
    }

    #[test]
    fn rates_reflect_load() {
        let (spec, s, _m, _c, _sink) = pipeline(10_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 2));
        std::thread::sleep(Duration::from_millis(250));
        let _ = job.collect_snapshot();
        std::thread::sleep(Duration::from_millis(750));
        let snap = job.collect_snapshot();
        let src = snap.operator(s).unwrap();
        let out_rate = src.aggregate_observed_output_rate().unwrap();
        assert!(
            (out_rate - 10_000.0).abs() < 2_500.0,
            "source rate {out_rate} should be ~10k/s"
        );
        job.shutdown();
    }
}
