//! The threaded execution engine: one OS thread per operator instance,
//! bounded crossbeam channels between instances, hash partitioning on the
//! producer's key function, and stop-the-world rescaling with keyed state
//! migration — a miniature of the Flink mechanism §4.2 describes
//! (savepoint, halt, redeploy with new parallelism).
//!
//! Every instance maintains the §4.1 counters through
//! [`SharedCounters`]: records in/out, processing time, and input/output
//! wait time, measured with wall-clock precision around the blocking
//! channel operations.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use ds2_core::deployment::Deployment;
use ds2_core::error::Ds2Error;
use ds2_core::graph::OperatorId;
use ds2_core::snapshot::MetricsSnapshot;
use ds2_metrics::counters::{CounterTotals, SharedCounters};

use crate::job::{JobSpec, KeyFn};
use crate::logic::{Logic, StateEntry};

/// Batches flowing through channels.
type Batch<R> = Vec<R>;

/// A route from one instance to all instances of one downstream operator.
struct OutputRoute<R> {
    senders: Vec<Sender<Batch<R>>>,
    key_fn: KeyFn<R>,
}

impl<R: Clone> OutputRoute<R> {
    /// Partitions `records` by key and sends the per-instance batches,
    /// accounting blocked time to `counters`.
    fn send_all(&self, records: &[R], counters: &SharedCounters) {
        if records.is_empty() || self.senders.is_empty() {
            return;
        }
        let p = self.senders.len();
        let mut buckets: Vec<Batch<R>> = vec![Vec::new(); p];
        for r in records {
            let k = (self.key_fn)(r) as usize % p;
            buckets[k].push(r.clone());
        }
        for (k, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let t0 = Instant::now();
            // A send error means the receiver is gone (shutdown under way):
            // drop the batch, the job is being torn down anyway.
            let _ = self.senders[k].send(bucket);
            counters.add_wait_output(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// One deployed instance.
struct InstanceHandle<R> {
    counters: Arc<SharedCounters>,
    last_totals: CounterTotals,
    join: JoinHandle<Option<Box<dyn Logic<R>>>>,
}

/// A running job: deployed threads plus the control-plane state.
pub struct RunningJob<R> {
    spec: JobSpec<R>,
    deployment: Deployment,
    instances: BTreeMap<OperatorId, Vec<InstanceHandle<R>>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    last_snapshot: Duration,
    rescales: u32,
    /// State drained from instances that halted cleanly during a rescale
    /// that then timed out. Kept so [`shutdown`](Self::shutdown) still
    /// returns everything salvageable after an aborted rescale.
    salvaged: BTreeMap<OperatorId, Vec<StateEntry>>,
}

impl<R: Clone + Send + 'static> RunningJob<R> {
    /// Deploys `spec` with the given initial parallelism.
    pub fn deploy(spec: JobSpec<R>, deployment: Deployment) -> Self {
        spec.validate();
        deployment
            .validate(&spec.graph)
            .expect("invalid deployment");
        let mut job = Self {
            spec,
            deployment,
            instances: BTreeMap::new(),
            stop: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            last_snapshot: Duration::ZERO,
            rescales: 0,
            salvaged: BTreeMap::new(),
        };
        job.spawn_all(BTreeMap::new());
        job
    }

    /// Current deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Time since the job was first deployed.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Number of rescales performed.
    pub fn rescales(&self) -> u32 {
        self.rescales
    }

    /// Spawns all instances, restoring `state` (keyed entries per operator)
    /// into the new logic instances.
    fn spawn_all(&mut self, mut state: BTreeMap<OperatorId, Vec<StateEntry>>) {
        self.stop = Arc::new(AtomicBool::new(false));

        // Create input channels for every non-source instance.
        let mut rx: BTreeMap<OperatorId, Vec<Receiver<Batch<R>>>> = BTreeMap::new();
        let mut tx: BTreeMap<OperatorId, Vec<Sender<Batch<R>>>> = BTreeMap::new();
        for op in self.spec.graph.operators() {
            if self.spec.graph.is_source(op) {
                continue;
            }
            let p = self.deployment.parallelism(op);
            let mut rxs = Vec::with_capacity(p);
            let mut txs = Vec::with_capacity(p);
            for _ in 0..p {
                let (s, r) = bounded(self.spec.channel_capacity);
                txs.push(s);
                rxs.push(r);
            }
            rx.insert(op, rxs);
            tx.insert(op, txs);
        }

        let routes_for = |op: OperatorId, key_fn: &KeyFn<R>| -> Vec<OutputRoute<R>> {
            self.spec
                .graph
                .downstream_edges(op)
                .map(|e| OutputRoute {
                    senders: tx[&e.to].clone(),
                    key_fn: Arc::clone(key_fn),
                })
                .collect()
        };

        let mut instances: BTreeMap<OperatorId, Vec<InstanceHandle<R>>> = BTreeMap::new();

        // Spawn non-source operators first so their receivers exist before
        // sources start pushing.
        for op in self.spec.graph.operators() {
            if self.spec.graph.is_source(op) {
                continue;
            }
            let p = self.deployment.parallelism(op);
            let op_spec = self.spec.operators[&op].clone();
            let op_state = state.remove(&op).unwrap_or_default();
            // Partition restored state by key.
            let mut buckets: Vec<Vec<StateEntry>> = (0..p).map(|_| Vec::new()).collect();
            for (key, value) in op_state {
                buckets[key as usize % p].push((key, value));
            }
            let mut handles = Vec::with_capacity(p);
            let receivers = rx.remove(&op).expect("receivers created above");
            for (k, receiver) in receivers.into_iter().enumerate() {
                let mut logic = (op_spec.factory)();
                logic.restore_state(std::mem::take(&mut buckets[k]));
                let counters = SharedCounters::new();
                let routes = routes_for(op, &op_spec.key_fn);
                let c = Arc::clone(&counters);
                let join = std::thread::Builder::new()
                    .name(format!("{}-{k}", self.spec.graph.name(op)))
                    .spawn(move || Some(worker_loop(logic, receiver, routes, c)))
                    .expect("spawn worker");
                handles.push(InstanceHandle {
                    counters,
                    last_totals: CounterTotals::default(),
                    join,
                });
            }
            instances.insert(op, handles);
        }

        // Spawn sources.
        for (&op, src) in &self.spec.sources {
            let p = self.deployment.parallelism(op);
            let mut handles = Vec::with_capacity(p);
            for k in 0..p {
                let counters = SharedCounters::new();
                let routes = routes_for(op, &src.key_fn);
                let c = Arc::clone(&counters);
                let stop = Arc::clone(&self.stop);
                let generate = Arc::clone(&src.generate);
                let rate = src.rate / p as f64;
                let batch = self.spec.batch_size;
                let join = std::thread::Builder::new()
                    .name(format!("{}-src-{k}", self.spec.graph.name(op)))
                    .spawn(move || {
                        source_loop(generate, rate, batch, routes, c, stop);
                        None
                    })
                    .expect("spawn source");
                handles.push(InstanceHandle {
                    counters,
                    last_totals: CounterTotals::default(),
                    join,
                });
            }
            instances.insert(op, handles);
        }

        self.instances = instances;
    }

    /// Stops every thread (sources first, then the pipeline drains through
    /// channel disconnection) and returns the drained keyed state.
    fn halt(&mut self) -> BTreeMap<OperatorId, Vec<StateEntry>> {
        self.stop.store(true, Ordering::SeqCst);
        let mut state: BTreeMap<OperatorId, Vec<StateEntry>> = BTreeMap::new();
        // Join sources first: their senders drop, disconnecting downstream
        // receivers once in-flight batches are drained.
        let source_ids: Vec<OperatorId> = self.spec.graph.sources().to_vec();
        for op in source_ids {
            if let Some(handles) = self.instances.remove(&op) {
                for h in handles {
                    let _ = h.join.join().expect("source thread panicked");
                }
            }
        }
        // Then every downstream operator in topological order.
        let order: Vec<OperatorId> = self.spec.graph.topological_order().collect();
        for op in order {
            let Some(handles) = self.instances.remove(&op) else {
                continue;
            };
            let mut entries = Vec::new();
            for h in handles {
                if let Some(mut logic) = h.join.join().expect("worker thread panicked") {
                    entries.extend(logic.drain_state());
                }
            }
            state.insert(op, entries);
        }
        self.merge_salvaged(&mut state);
        state
    }

    /// Merges any stash from a previously aborted rescale into `state`.
    fn merge_salvaged(&mut self, state: &mut BTreeMap<OperatorId, Vec<StateEntry>>) {
        for (op, entries) in std::mem::take(&mut self.salvaged) {
            state.entry(op).or_default().extend(entries);
        }
    }

    /// Like [`halt`](Self::halt), but gives up after `deadline`: instances
    /// are joined as they finish (polling, since a wedged worker would
    /// block a plain `join`), and any instance still running at the
    /// deadline is abandoned — its thread detaches and its state is lost,
    /// exactly the cost a real savepoint timeout pays. State drained from
    /// the instances that did halt is stashed for [`shutdown`](Self::shutdown).
    fn halt_within(
        &mut self,
        deadline: Duration,
    ) -> Result<BTreeMap<OperatorId, Vec<StateEntry>>, Ds2Error> {
        self.stop.store(true, Ordering::SeqCst);
        let limit = Instant::now() + deadline;
        let mut state: BTreeMap<OperatorId, Vec<StateEntry>> = BTreeMap::new();
        loop {
            let mut pending = 0usize;
            for (&op, handles) in self.instances.iter_mut() {
                let mut remaining = Vec::new();
                for h in handles.drain(..) {
                    if h.join.is_finished() {
                        if let Some(mut logic) = h.join.join().expect("worker thread panicked") {
                            state.entry(op).or_default().extend(logic.drain_state());
                        }
                    } else {
                        remaining.push(h);
                    }
                }
                pending += remaining.len();
                *handles = remaining;
            }
            if pending == 0 {
                self.instances.clear();
                self.merge_salvaged(&mut state);
                return Ok(state);
            }
            if Instant::now() >= limit {
                let wedged: Vec<String> = self
                    .instances
                    .values()
                    .flatten()
                    .map(|h| h.join.thread().name().unwrap_or("<unnamed>").to_string())
                    .collect();
                self.instances.clear();
                for (op, entries) in state {
                    self.salvaged.entry(op).or_default().extend(entries);
                }
                return Err(Ds2Error::RescaleTimedOut(format!(
                    "{} instance(s) failed to halt within {:?}: {}",
                    wedged.len(),
                    deadline,
                    wedged.join(", ")
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stop-the-world rescale: halt, drain state, redeploy with `plan`.
    ///
    /// Returns the downtime (the paper's savepoint-and-restore latency).
    ///
    /// # Errors
    ///
    /// [`Ds2Error::InvalidDeployment`] if `plan` does not match the graph,
    /// or — with [`JobSpec::rescale_timeout`] set — [`Ds2Error::RescaleTimedOut`]
    /// if a worker fails to halt before the deadline. A timed-out rescale
    /// aborts the job: no new instances are deployed, the rescale counter
    /// is untouched, and the state salvaged from the workers that did halt
    /// is returned by the next [`shutdown`](Self::shutdown).
    pub fn rescale(&mut self, plan: Deployment) -> Result<Duration, Ds2Error> {
        plan.validate(&self.spec.graph)?;
        let t0 = Instant::now();
        let state = match self.spec.rescale_timeout {
            Some(deadline) => self.halt_within(deadline)?,
            None => self.halt(),
        };
        self.deployment = plan;
        self.spawn_all(state);
        self.rescales += 1;
        Ok(t0.elapsed())
    }

    /// Shuts the job down, returning the final drained state (including
    /// anything salvaged from an aborted rescale).
    pub fn shutdown(mut self) -> BTreeMap<OperatorId, Vec<StateEntry>> {
        self.halt()
    }

    /// Closes the instrumentation window and builds a metrics snapshot.
    pub fn collect_snapshot(&mut self) -> MetricsSnapshot {
        let now = self.epoch.elapsed();
        let window_start = self.last_snapshot;
        self.last_snapshot = now;
        let mut snap = MetricsSnapshot::new();
        for (&op, handles) in self.instances.iter_mut() {
            let mut metrics = Vec::with_capacity(handles.len());
            for h in handles.iter_mut() {
                let totals = h.counters.totals();
                metrics.push(totals.window_since(
                    &h.last_totals,
                    window_start.as_nanos() as u64,
                    now.as_nanos() as u64,
                ));
                h.last_totals = totals;
            }
            snap.insert_instances(op, metrics);
        }
        for (&op, src) in &self.spec.sources {
            snap.set_source_rate(op, src.rate);
        }
        snap
    }
}

/// Worker loop for a non-source instance. Returns the logic for state
/// migration once every upstream sender disconnected.
fn worker_loop<R: Clone + Send + 'static>(
    mut logic: Box<dyn Logic<R>>,
    rx: Receiver<Batch<R>>,
    routes: Vec<OutputRoute<R>>,
    counters: Arc<SharedCounters>,
) -> Box<dyn Logic<R>> {
    let mut out_buf: Vec<R> = Vec::new();
    loop {
        let t_wait = Instant::now();
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(batch) => {
                counters.add_wait_input(t_wait.elapsed().as_nanos() as u64);
                let n_in = batch.len() as u64;
                let t0 = Instant::now();
                for r in batch {
                    logic.process(r, &mut out_buf);
                }
                counters.add_processing(t0.elapsed().as_nanos() as u64);
                counters.add_records_in(n_in);
                let n_out = out_buf.len() as u64;
                for route in &routes {
                    route.send_all(&out_buf, &counters);
                }
                counters.add_records_out(n_out);
                out_buf.clear();
            }
            Err(RecvTimeoutError::Timeout) => {
                counters.add_wait_input(t_wait.elapsed().as_nanos() as u64);
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    logic
}

/// Source loop: rate-limited generation in batches.
fn source_loop<R: Clone + Send + 'static>(
    generate: crate::job::SourceFn<R>,
    rate: f64,
    batch_size: usize,
    routes: Vec<OutputRoute<R>>,
    counters: Arc<SharedCounters>,
    stop: Arc<AtomicBool>,
) {
    if rate <= 0.0 {
        return;
    }
    let interval = Duration::from_secs_f64(batch_size as f64 / rate);
    let mut seq = 0u64;
    let mut next = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        let batch: Vec<R> = (0..batch_size)
            .map(|_| {
                let r = generate(seq);
                seq += 1;
                r
            })
            .collect();
        counters.add_processing(t0.elapsed().as_nanos() as u64);
        for route in &routes {
            route.send_all(&batch, &counters);
        }
        counters.add_records_out(batch.len() as u64);

        next += interval;
        let now = Instant::now();
        if next > now {
            let sleep = next - now;
            counters.add_wait_input(sleep.as_nanos() as u64);
            std::thread::sleep(sleep);
        } else {
            // Falling behind (backpressure or overload): reset the clock so
            // the source does not try to "catch up" in a burst.
            next = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::FnLogic;
    use ds2_core::graph::GraphBuilder;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    type Shared = Arc<Mutex<HashMap<u64, u64>>>;

    /// A keyed counting logic with migratable state.
    struct CountLogic {
        counts: HashMap<u64, u64>,
        sink: Shared,
    }

    impl Logic<u64> for CountLogic {
        fn process(&mut self, record: u64, _out: &mut Vec<u64>) {
            *self.counts.entry(record).or_insert(0) += 1;
            *self.sink.lock().entry(record).or_insert(0) += 1;
        }

        fn drain_state(&mut self) -> Vec<StateEntry> {
            self.counts
                .drain()
                .map(|(k, v)| (k, Box::new(v) as Box<dyn std::any::Any + Send>))
                .collect()
        }

        fn restore_state(&mut self, entries: Vec<StateEntry>) {
            for (k, v) in entries {
                let v = *v.downcast::<u64>().expect("state is u64");
                *self.counts.entry(k).or_insert(0) += v;
            }
        }
    }

    fn pipeline(rate: f64) -> (JobSpec<u64>, OperatorId, OperatorId, OperatorId, Shared) {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let m = b.operator("double");
        let c = b.operator("count");
        b.connect(s, m);
        b.connect(m, c);
        let g = b.build().unwrap();
        let sink: Shared = Arc::new(Mutex::new(HashMap::new()));
        let mut spec = JobSpec::new(g);
        spec.source(s, rate, |n| n % 64, |&r| r);
        spec.operator(
            m,
            || {
                Box::new(FnLogic::new(|r: u64, out: &mut Vec<u64>| {
                    out.push(r);
                    out.push(r);
                }))
            },
            |&r| r,
        );
        let sink2 = Arc::clone(&sink);
        spec.operator(
            c,
            move || {
                Box::new(CountLogic {
                    counts: HashMap::new(),
                    sink: Arc::clone(&sink2),
                })
            },
            |&r| r,
        );
        (spec, s, m, c, sink)
    }

    #[test]
    fn records_flow_end_to_end() {
        let (spec, _s, m, _c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 2));
        std::thread::sleep(Duration::from_millis(600));
        let snap = job.collect_snapshot();
        let state = job.shutdown();
        let total: u64 = sink.lock().values().sum();
        assert!(total > 5_000, "only {total} records reached the sink");
        // The doubling operator emits 2 records per input.
        let m_metrics = snap.operator(m).unwrap();
        let sel = m_metrics.total_records_out() as f64 / m_metrics.total_records_in() as f64;
        assert!((sel - 2.0).abs() < 0.01, "selectivity {sel}");
        // Count state drained on shutdown matches the sink totals.
        let drained: usize = state.values().map(Vec::len).sum();
        assert!(drained > 0);
    }

    #[test]
    fn snapshot_reports_all_instances() {
        let (spec, s, m, c, _sink) = pipeline(5_000.0);
        let g = spec.graph.clone();
        let mut d = Deployment::uniform(&g, 1);
        d.set(m, 3);
        let mut job = RunningJob::deploy(spec, d);
        std::thread::sleep(Duration::from_millis(300));
        let snap = job.collect_snapshot();
        assert_eq!(snap.operator(s).unwrap().parallelism(), 1);
        assert_eq!(snap.operator(m).unwrap().parallelism(), 3);
        assert_eq!(snap.operator(c).unwrap().parallelism(), 1);
        assert_eq!(snap.source_rate(s), Some(5_000.0));
        // Wu <= W for every instance.
        for (_, om) in snap.operators() {
            for i in &om.instances {
                assert!(i.validate().is_ok());
            }
        }
        job.shutdown();
    }

    #[test]
    fn rescale_preserves_counts() {
        let (spec, _s, _m, c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        std::thread::sleep(Duration::from_millis(400));
        let mut plan = job.deployment().clone();
        plan.set(c, 4);
        let downtime = job.rescale(plan).expect("rescale");
        assert!(downtime < Duration::from_secs(5));
        assert_eq!(job.rescales(), 1);
        std::thread::sleep(Duration::from_millis(400));
        let mut state = job.shutdown();
        // Every record that reached the sink is still accounted for in the
        // migrated state: aggregate drained counts equal sink totals.
        let sink_total: u64 = sink.lock().values().sum();
        let mut drained_total = 0u64;
        for (_k, v) in state.remove(&c).unwrap_or_default() {
            drained_total += *v.downcast::<u64>().unwrap();
        }
        assert_eq!(
            drained_total, sink_total,
            "state lost or duplicated across rescale"
        );
    }

    /// State conservation through *up then down* rescales, including the
    /// scale-down case where the restored key space (64 keys) far exceeds
    /// the new instance count: every key's migrated count must equal its
    /// sink total — exactly the invariant an unrescaled run satisfies
    /// trivially (see `records_flow_end_to_end`).
    #[test]
    fn rescale_up_then_down_conserves_keyed_state() {
        let (spec, _s, _m, c, sink) = pipeline(20_000.0);
        let g = spec.graph.clone();
        let mut d = Deployment::uniform(&g, 1);
        d.set(c, 2);
        let mut job = RunningJob::deploy(spec, d);
        std::thread::sleep(Duration::from_millis(300));

        // Scale up: 2 -> 5 instances; restored keys re-partition across
        // more instances than before.
        let mut plan = job.deployment().clone();
        plan.set(c, 5);
        job.rescale(plan).expect("rescale up");
        std::thread::sleep(Duration::from_millis(300));

        // Scale down: 5 -> 1 instance; all 64 restored keys must land on
        // the single remaining instance.
        let mut plan = job.deployment().clone();
        plan.set(c, 1);
        job.rescale(plan).expect("rescale down");
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(job.rescales(), 2);

        let mut state = job.shutdown();
        let mut drained: HashMap<u64, u64> = HashMap::new();
        for (k, v) in state.remove(&c).unwrap_or_default() {
            *drained.entry(k).or_insert(0) += *v.downcast::<u64>().unwrap();
        }
        let sink_counts = sink.lock().clone();
        assert!(
            sink_counts.keys().len() > 32,
            "expected a wide key space, got {}",
            sink_counts.keys().len()
        );
        // Per-key equality: nothing lost, nothing duplicated, across both
        // migrations.
        assert_eq!(
            drained, sink_counts,
            "keyed state diverged from sink totals across up+down rescale"
        );
    }

    /// A worker wedged in user code must not hang the control plane: with
    /// a rescale deadline set, the rescale fails with the typed
    /// [`Ds2Error::RescaleTimedOut`], the deployment and rescale counter
    /// are untouched, and the keyed state drained from the workers that
    /// *did* halt survives through shutdown — nothing beyond the wedged
    /// instance's own state is lost.
    #[test]
    fn rescale_timeout_on_wedged_worker_salvages_state() {
        let mut b = GraphBuilder::new();
        let s = b.operator("src");
        let stall = b.operator("stall");
        let c = b.operator("count");
        b.connect(s, stall);
        b.connect(s, c);
        let g = b.build().unwrap();

        let sink: Shared = Arc::new(Mutex::new(HashMap::new()));
        let sink2 = Arc::clone(&sink);
        let mut spec: JobSpec<u64> = JobSpec::new(g.clone());
        // Large channel capacity so the wedged instance never backpressures
        // the source; the counting branch keeps flowing.
        spec.channel_capacity = 4096;
        spec.rescale_timeout = Some(Duration::from_millis(300));
        spec.source(s, 20_000.0, |n| n % 64, |&r| r);
        // Wedges on the first record: stuck in user code for an hour.
        spec.operator(
            stall,
            || {
                Box::new(FnLogic::new(|_r: u64, _out: &mut Vec<u64>| {
                    std::thread::sleep(Duration::from_secs(3600));
                }))
            },
            |&r| r,
        );
        spec.operator(
            c,
            move || {
                Box::new(CountLogic {
                    counts: HashMap::new(),
                    sink: Arc::clone(&sink2),
                })
            },
            |&r| r,
        );

        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 1));
        std::thread::sleep(Duration::from_millis(400));

        let mut plan = job.deployment().clone();
        plan.set(c, 2);
        let err = job.rescale(plan).expect_err("wedged worker must time out");
        assert!(
            matches!(err, Ds2Error::RescaleTimedOut(_)),
            "expected RescaleTimedOut, got {err:?}"
        );
        assert!(
            err.to_string().contains("stall"),
            "error names the wedged instance: {err}"
        );
        assert_eq!(job.rescales(), 0, "aborted rescale must not count");

        // The counting operator halted cleanly during the aborted rescale;
        // its salvaged state must come back intact on shutdown.
        let mut state = job.shutdown();
        let mut drained: HashMap<u64, u64> = HashMap::new();
        for (k, v) in state.remove(&c).unwrap_or_default() {
            *drained.entry(k).or_insert(0) += *v.downcast::<u64>().unwrap();
        }
        assert_eq!(
            drained,
            sink.lock().clone(),
            "state salvaged across the aborted rescale diverged from sink totals"
        );
    }

    #[test]
    fn rates_reflect_load() {
        let (spec, s, _m, _c, _sink) = pipeline(10_000.0);
        let g = spec.graph.clone();
        let mut job = RunningJob::deploy(spec, Deployment::uniform(&g, 2));
        std::thread::sleep(Duration::from_millis(250));
        let _ = job.collect_snapshot();
        std::thread::sleep(Duration::from_millis(750));
        let snap = job.collect_snapshot();
        let src = snap.operator(s).unwrap();
        let out_rate = src.aggregate_observed_output_rate().unwrap();
        assert!(
            (out_rate - 10_000.0).abs() < 2_500.0,
            "source rate {out_rate} should be ~10k/s"
        );
        job.shutdown();
    }
}
